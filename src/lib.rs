//! # predictive-prefetch
//!
//! A full reproduction of Vellanki & Chervenak, *A Cost-Benefit Scheme for
//! High Performance Predictive Prefetching* (SC 1999), as a Rust workspace.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`trace`] ([`prefetch_trace`]) — I/O trace model, formats, synthetic
//!   workload generators for the paper's four traces, trace statistics;
//! * [`cache`] ([`prefetch_cache`]) — LRU, the partitioned demand/prefetch
//!   buffer cache, online Mattson stack-distance estimation;
//! * [`tree`] ([`prefetch_tree`]) — the LZ prefetch tree with candidate
//!   enumeration and LRU node limiting;
//! * [`core`] ([`prefetch_core`]) — the paper's cost-benefit model
//!   (Eq. 1-14) and all eight prefetching policies;
//! * [`sim`] ([`prefetch_sim`]) — the trace-driven simulator, parallel
//!   sweeps, and the per-figure/table experiment reproductions.
//!
//! ## Quickstart
//!
//! ```
//! use predictive_prefetch::prelude::*;
//!
//! // Generate the paper's CAD-like workload and compare policies.
//! let trace = TraceKind::Cad.generate(20_000, 42);
//! let base = run_simulation(&trace, &SimConfig::new(1024, PolicySpec::NoPrefetch));
//! let tree = run_simulation(&trace, &SimConfig::new(1024, PolicySpec::Tree));
//! assert!(tree.metrics.miss_rate() <= base.metrics.miss_rate());
//! ```

pub use prefetch_cache as cache;
pub use prefetch_core as core;
pub use prefetch_disk as disk;
pub use prefetch_sim as sim;
pub use prefetch_telemetry as telemetry;
pub use prefetch_trace as trace;
pub use prefetch_tree as tree;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use prefetch_cache::{BufferCache, PrefetchMeta, StackDistanceEstimator};
    pub use prefetch_core::policy::{
        NextLimit, NoPrefetch, PerfectSelector, PeriodActivity, PrefetchPolicy, RefContext,
        RefKind, TreeChildren, TreeLvc, TreeNextLimit, TreePolicy, TreeThreshold, Victim,
    };
    pub use prefetch_core::{
        CostBenefitEngine, CostBenefitModel, EngineConfig, ModelConfig, Quarantine, RetryPolicy,
        SystemParams,
    };
    pub use prefetch_disk::{
        Completion, DiskArray, DiskArrayConfig, DiskFault, DiskStats, FaultPlan, Striping,
    };
    pub use prefetch_sim::experiments::{run_all, run_experiment, ExperimentOpts, TraceSet};
    pub use prefetch_sim::{
        cell_fingerprint, cell_status_record, run_cells_checkpointed, run_grid_checkpointed,
        run_simulation, run_simulation_named, run_source, run_source_guarded,
        run_source_guarded_with, CellOutcome, CellStatus, CheckpointJournal, DiskSummary,
        FaultConfig, HarnessOpts, IoSubsystem, JournalEntry, JsonlEventSink, NullObserver,
        PolicySpec, QueueDelayObserver, SimConfig, SimConfigError, SimEvent, SimMetrics,
        SimObserver, SimResult, Simulator, StallHistogramObserver, SweepError, SweepLog, SweepRun,
        VirtualClock,
    };
    pub use prefetch_telemetry::{Histogram, Phase, PhaseTimer, PhaseTimes};
    pub use prefetch_trace::io::{open_source, FileSource};
    pub use prefetch_trace::stats::{ReuseDistances, TraceStats};
    pub use prefetch_trace::synth::{SynthSource, TraceKind};
    pub use prefetch_trace::{BlockId, Trace, TraceCursor, TraceMeta, TraceRecord, TraceSource};
    pub use prefetch_tree::{PrefetchTree, TreeStats};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_flow() {
        let trace = TraceKind::Sitar.generate(2000, 1);
        let r = run_simulation(&trace, &SimConfig::new(256, PolicySpec::TreeNextLimit));
        assert_eq!(r.metrics.refs, 2000);
    }
}
