//! Simulation configuration: which policy, which cache size, which system
//! constants.

use prefetch_core::policy::{
    NextLimit, NoPrefetch, PerfectSelector, PeriodActivity, PrefetchPolicy, RefContext,
    TreeChildren, TreeLvc, TreeNextLimit, TreePolicy, TreeThreshold, Victim,
};
use prefetch_core::{EngineConfig, RetryPolicy, SystemParams};
use prefetch_disk::FaultPlan;
use serde::{Deserialize, Serialize};

/// Which prefetching policy to simulate (paper Section 9 terminology).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Demand fetching only.
    NoPrefetch,
    /// One-block-lookahead, prefetch partition capped at 10%.
    NextLimit,
    /// Cost-benefit tree prefetching (the paper's contribution).
    Tree,
    /// `tree` + `next-limit` combined.
    TreeNextLimit,
    /// `tree` + last-visited-child prefetching (Section 9.6).
    TreeLvc,
    /// Parametric baseline: prefetch children above this probability
    /// (Section 9.7, Curewitz et al.).
    TreeThreshold(f64),
    /// Parametric baseline: prefetch the top-k children (Section 9.7,
    /// Kroeger & Long).
    TreeChildren(usize),
    /// Oracle selector (Section 9.5).
    PerfectSelector,
    /// Extension beyond the paper: `tree` with order-1 re-anchoring after
    /// LZ resets (see `EngineConfig::reanchor_after_reset`), a step toward
    /// closing the tree↔perfect-selector gap of Section 9.5.
    TreeReanchor,
    /// Test-only fault injector for the harness: panics after `after`
    /// references, standing in for a policy bug so the sweep harness's
    /// panic isolation can be exercised deterministically.
    #[doc(hidden)]
    PanicProbe {
        /// References served before the probe panics.
        after: u64,
    },
}

impl PolicySpec {
    /// The four schemes of the paper's headline comparison (Figure 6).
    pub const HEADLINE: [PolicySpec; 4] = [
        PolicySpec::NoPrefetch,
        PolicySpec::NextLimit,
        PolicySpec::Tree,
        PolicySpec::TreeNextLimit,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            PolicySpec::NoPrefetch => "no-prefetch".into(),
            PolicySpec::NextLimit => "next-limit".into(),
            PolicySpec::Tree => "tree".into(),
            PolicySpec::TreeNextLimit => "tree-next-limit".into(),
            PolicySpec::TreeLvc => "tree-lvc".into(),
            PolicySpec::TreeThreshold(t) => format!("tree-threshold({t})"),
            PolicySpec::TreeChildren(k) => format!("tree-children({k})"),
            PolicySpec::PerfectSelector => "perfect-selector".into(),
            PolicySpec::TreeReanchor => "tree-reanchor".into(),
            PolicySpec::PanicProbe { after } => format!("panic-probe({after})"),
        }
    }

    /// Instantiate the policy.
    pub fn build(&self, params: SystemParams, engine: EngineConfig) -> Box<dyn PrefetchPolicy> {
        match *self {
            PolicySpec::NoPrefetch => Box::new(NoPrefetch),
            PolicySpec::NextLimit => Box::new(NextLimit::new()),
            PolicySpec::Tree => Box::new(TreePolicy::new(params, engine)),
            PolicySpec::TreeNextLimit => Box::new(TreeNextLimit::new(params, engine)),
            PolicySpec::TreeLvc => Box::new(TreeLvc::new(params, engine)),
            PolicySpec::TreeThreshold(t) => Box::new(TreeThreshold::new(t)),
            PolicySpec::TreeChildren(k) => Box::new(TreeChildren::new(k)),
            PolicySpec::PerfectSelector => Box::new(PerfectSelector::new()),
            PolicySpec::TreeReanchor => {
                let cfg = prefetch_core::EngineConfig { reanchor_after_reset: true, ..engine };
                Box::new(TreePolicy::new(params, cfg))
            }
            PolicySpec::PanicProbe { after } => Box::new(PanicProbePolicy { after, seen: 0 }),
        }
    }

    /// Whether the policy consumes the one-reference lookahead (only the
    /// oracle does; passing it to others is harmless but this lets tests
    /// assert the flow).
    pub fn uses_lookahead(&self) -> bool {
        matches!(self, PolicySpec::PerfectSelector)
    }
}

/// See [`PolicySpec::PanicProbe`]: a stand-in for a buggy policy.
#[derive(Debug)]
struct PanicProbePolicy {
    after: u64,
    seen: u64,
}

impl PrefetchPolicy for PanicProbePolicy {
    fn name(&self) -> &'static str {
        "panic-probe"
    }

    fn choose_demand_victim(&mut self, _cache: &prefetch_cache::BufferCache) -> Victim {
        Victim::DemandLru
    }

    fn after_reference(
        &mut self,
        _ctx: &RefContext,
        _cache: &mut prefetch_cache::BufferCache,
        _act: &mut PeriodActivity,
    ) {
        self.seen += 1;
        if self.seen >= self.after.max(1) {
            panic!("panic probe fired after {} references", self.seen);
        }
    }
}

/// Fault injection attached to a simulation run: the deterministic disk
/// fault schedule plus the retry pricing applied on the demand path.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seeded per-disk fault schedule (see `prefetch_disk::FaultPlan`).
    pub plan: FaultPlan,
    /// Retry / backoff pricing for failed demand reads.
    pub retry: RetryPolicy,
}

/// A [`SimConfig`] that cannot be simulated.
#[derive(Clone, Debug, PartialEq)]
pub enum SimConfigError {
    /// The disk array configuration is invalid.
    Disk(prefetch_disk::ConfigError),
    /// The fault plan is invalid (rate out of range, bad duration, ...).
    Fault(prefetch_disk::ConfigError),
    /// The retry policy is invalid.
    Retry(String),
    /// Faults were requested but no disk array is configured; faults are
    /// injected by the array, so there is nothing to inject them into.
    FaultsWithoutDisks,
    /// The cache must hold at least one block.
    ZeroCacheBlocks,
    /// A system timing constant is non-finite or negative.
    Params(String),
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimConfigError::Disk(e) => write!(f, "disk array: {e}"),
            SimConfigError::Fault(e) => write!(f, "fault plan: {e}"),
            SimConfigError::Retry(e) => write!(f, "retry policy: {e}"),
            SimConfigError::FaultsWithoutDisks => {
                write!(f, "fault injection requires a finite disk array (--disks N)")
            }
            SimConfigError::ZeroCacheBlocks => write!(f, "cache must hold at least one block"),
            SimConfigError::Params(e) => write!(f, "system parameters: {e}"),
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total buffers in the combined demand + prefetch cache.
    pub cache_blocks: usize,
    /// System timing constants.
    pub params: SystemParams,
    /// Cost-benefit engine tunables (tree policies only). Also sizes the
    /// simulator's period-start ring: [`crate::clock::VirtualClock::for_run`]
    /// covers `4 × cache_blocks / engine.max_per_period` periods, so a
    /// prefetch that stays resident-but-unreferenced for its plausible
    /// lifetime is always priced from its true issue time.
    pub engine: EngineConfig,
    /// The policy to run.
    pub policy: PolicySpec,
    /// Optional finite disk array. `None` reproduces the paper's
    /// infinite-disk assumption (Section 6.3); `Some` prices stalls with
    /// per-disk FIFO queueing — an extension (see the `disks` experiment).
    pub disks: Option<prefetch_disk::DiskArrayConfig>,
    /// Optional deterministic fault injection (requires `disks`). `None`
    /// reproduces the fault-free model bit for bit.
    pub faults: Option<FaultConfig>,
    /// Collect per-phase wall-clock profiling ([`crate::SimResult::phases`]).
    /// Off by default: the disabled path costs one branch per probe. The
    /// flag never changes simulated metrics and is deliberately excluded
    /// from the checkpoint fingerprint.
    pub profile: bool,
}

impl SimConfig {
    /// A configuration with paper-default constants.
    pub fn new(cache_blocks: usize, policy: PolicySpec) -> Self {
        SimConfig {
            cache_blocks,
            params: SystemParams::patterson(),
            engine: EngineConfig::default(),
            policy,
            disks: None,
            faults: None,
            profile: false,
        }
    }

    /// Collect per-phase profiling during the run.
    pub fn with_profiling(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Price I/O with a finite disk array of `num_disks` disks (paper-
    /// standard 15 ms service time, 64-block stripes).
    pub fn with_disks(mut self, num_disks: usize) -> Self {
        self.disks = Some(prefetch_disk::DiskArrayConfig::with_disks(num_disks));
        self
    }

    /// Inject faults with [`FaultPlan::uniform`] at `rate`, seeded by
    /// `seed`, scaled to the configured disks' service time, with the
    /// default retry policy. A rate of `0.0` yields an inactive plan that
    /// reproduces the fault-free run bit for bit.
    pub fn with_fault_rate(mut self, seed: u64, rate: f64) -> Self {
        let service_ms = self.disks.map_or(15.0, |d| d.service_ms);
        self.faults = Some(FaultConfig {
            plan: FaultPlan::uniform(seed, rate, service_ms),
            retry: RetryPolicy::default(),
        });
        self
    }

    /// Inject faults with a fully explicit [`FaultConfig`].
    pub fn with_fault_config(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Check the configuration for errors before running. `run_simulation`
    /// assumes a validated configuration; front ends (pfsim, experiments)
    /// call this and turn errors into nonzero exits instead of panics.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.cache_blocks == 0 {
            return Err(SimConfigError::ZeroCacheBlocks);
        }
        self.params.check().map_err(SimConfigError::Params)?;
        if let Some(d) = &self.disks {
            d.validate().map_err(SimConfigError::Disk)?;
        }
        if let Some(f) = &self.faults {
            f.plan.validate().map_err(SimConfigError::Fault)?;
            f.retry.check().map_err(SimConfigError::Retry)?;
            if self.disks.is_none() && f.plan.is_active() {
                return Err(SimConfigError::FaultsWithoutDisks);
            }
        }
        Ok(())
    }

    /// Override `T_cpu` (Figures 11-12 sweep).
    pub fn with_t_cpu(mut self, t_cpu: f64) -> Self {
        self.params.t_cpu = t_cpu;
        self
    }

    /// Limit the prefetch tree's node count (Figure 13).
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.engine.node_limit = limit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(PolicySpec::NoPrefetch.name(), "no-prefetch");
        assert_eq!(PolicySpec::TreeNextLimit.name(), "tree-next-limit");
        assert_eq!(PolicySpec::TreeThreshold(0.05).name(), "tree-threshold(0.05)");
        assert_eq!(PolicySpec::TreeChildren(3).name(), "tree-children(3)");
    }

    #[test]
    fn build_produces_matching_policies() {
        let p = SystemParams::patterson();
        let e = EngineConfig::default();
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.1),
            PolicySpec::TreeChildren(4),
            PolicySpec::PerfectSelector,
        ] {
            let policy = spec.build(p, e);
            // Parameterized names carry the parameter only in the spec.
            assert!(spec.name().starts_with(policy.name()));
        }
    }

    #[test]
    fn only_oracle_uses_lookahead() {
        assert!(PolicySpec::PerfectSelector.uses_lookahead());
        assert!(!PolicySpec::Tree.uses_lookahead());
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::new(512, PolicySpec::Tree).with_t_cpu(320.0).with_node_limit(4096);
        assert_eq!(c.cache_blocks, 512);
        assert_eq!(c.params.t_cpu, 320.0);
        assert_eq!(c.engine.node_limit, 4096);
    }

    #[test]
    fn fault_builder_scales_to_disk_service_time() {
        let c = SimConfig::new(64, PolicySpec::Tree).with_disks(4).with_fault_rate(7, 0.05);
        let f = c.faults.unwrap();
        assert_eq!(f.plan.seed, 7);
        assert!(f.plan.is_active());
        c.validate().unwrap();
    }

    #[test]
    fn faults_without_disks_fail_validation() {
        let c = SimConfig::new(64, PolicySpec::Tree).with_fault_rate(7, 0.05);
        assert_eq!(c.validate().unwrap_err(), SimConfigError::FaultsWithoutDisks);
        // An inactive plan is fine without disks — it cannot fire.
        let c = SimConfig::new(64, PolicySpec::Tree).with_fault_rate(7, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn bad_configs_produce_typed_errors() {
        let c = SimConfig { cache_blocks: 0, ..SimConfig::new(64, PolicySpec::Tree) };
        assert_eq!(c.validate().unwrap_err(), SimConfigError::ZeroCacheBlocks);

        let c = SimConfig::new(64, PolicySpec::Tree).with_disks(0);
        assert!(matches!(c.validate().unwrap_err(), SimConfigError::Disk(_)));

        let mut c = SimConfig::new(64, PolicySpec::Tree).with_disks(2).with_fault_rate(1, 0.1);
        c.faults.as_mut().unwrap().plan.transient_error_rate = 1.5;
        assert!(matches!(c.validate().unwrap_err(), SimConfigError::Fault(_)));

        let mut c = SimConfig::new(64, PolicySpec::Tree).with_disks(2).with_fault_rate(1, 0.1);
        c.faults.as_mut().unwrap().retry.backoff_base_ms = -1.0;
        assert!(matches!(c.validate().unwrap_err(), SimConfigError::Retry(_)));
        assert!(!format!("{}", c.validate().unwrap_err()).is_empty());
    }
}
