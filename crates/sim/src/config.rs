//! Simulation configuration: which policy, which cache size, which system
//! constants.

use prefetch_core::policy::{
    NextLimit, NoPrefetch, PerfectSelector, PrefetchPolicy, TreeChildren, TreeLvc, TreeNextLimit,
    TreePolicy, TreeThreshold,
};
use prefetch_core::{EngineConfig, SystemParams};
use serde::{Deserialize, Serialize};

/// Which prefetching policy to simulate (paper Section 9 terminology).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Demand fetching only.
    NoPrefetch,
    /// One-block-lookahead, prefetch partition capped at 10%.
    NextLimit,
    /// Cost-benefit tree prefetching (the paper's contribution).
    Tree,
    /// `tree` + `next-limit` combined.
    TreeNextLimit,
    /// `tree` + last-visited-child prefetching (Section 9.6).
    TreeLvc,
    /// Parametric baseline: prefetch children above this probability
    /// (Section 9.7, Curewitz et al.).
    TreeThreshold(f64),
    /// Parametric baseline: prefetch the top-k children (Section 9.7,
    /// Kroeger & Long).
    TreeChildren(usize),
    /// Oracle selector (Section 9.5).
    PerfectSelector,
    /// Extension beyond the paper: `tree` with order-1 re-anchoring after
    /// LZ resets (see `EngineConfig::reanchor_after_reset`), a step toward
    /// closing the tree↔perfect-selector gap of Section 9.5.
    TreeReanchor,
}

impl PolicySpec {
    /// The four schemes of the paper's headline comparison (Figure 6).
    pub const HEADLINE: [PolicySpec; 4] = [
        PolicySpec::NoPrefetch,
        PolicySpec::NextLimit,
        PolicySpec::Tree,
        PolicySpec::TreeNextLimit,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            PolicySpec::NoPrefetch => "no-prefetch".into(),
            PolicySpec::NextLimit => "next-limit".into(),
            PolicySpec::Tree => "tree".into(),
            PolicySpec::TreeNextLimit => "tree-next-limit".into(),
            PolicySpec::TreeLvc => "tree-lvc".into(),
            PolicySpec::TreeThreshold(t) => format!("tree-threshold({t})"),
            PolicySpec::TreeChildren(k) => format!("tree-children({k})"),
            PolicySpec::PerfectSelector => "perfect-selector".into(),
            PolicySpec::TreeReanchor => "tree-reanchor".into(),
        }
    }

    /// Instantiate the policy.
    pub fn build(&self, params: SystemParams, engine: EngineConfig) -> Box<dyn PrefetchPolicy> {
        match *self {
            PolicySpec::NoPrefetch => Box::new(NoPrefetch),
            PolicySpec::NextLimit => Box::new(NextLimit::new()),
            PolicySpec::Tree => Box::new(TreePolicy::new(params, engine)),
            PolicySpec::TreeNextLimit => Box::new(TreeNextLimit::new(params, engine)),
            PolicySpec::TreeLvc => Box::new(TreeLvc::new(params, engine)),
            PolicySpec::TreeThreshold(t) => Box::new(TreeThreshold::new(t)),
            PolicySpec::TreeChildren(k) => Box::new(TreeChildren::new(k)),
            PolicySpec::PerfectSelector => Box::new(PerfectSelector::new()),
            PolicySpec::TreeReanchor => {
                let cfg = prefetch_core::EngineConfig { reanchor_after_reset: true, ..engine };
                Box::new(TreePolicy::new(params, cfg))
            }
        }
    }

    /// Whether the policy consumes the one-reference lookahead (only the
    /// oracle does; passing it to others is harmless but this lets tests
    /// assert the flow).
    pub fn uses_lookahead(&self) -> bool {
        matches!(self, PolicySpec::PerfectSelector)
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total buffers in the combined demand + prefetch cache.
    pub cache_blocks: usize,
    /// System timing constants.
    pub params: SystemParams,
    /// Cost-benefit engine tunables (tree policies only).
    pub engine: EngineConfig,
    /// The policy to run.
    pub policy: PolicySpec,
    /// Optional finite disk array. `None` reproduces the paper's
    /// infinite-disk assumption (Section 6.3); `Some` prices stalls with
    /// per-disk FIFO queueing — an extension (see the `disks` experiment).
    pub disks: Option<prefetch_disk::DiskArrayConfig>,
}

impl SimConfig {
    /// A configuration with paper-default constants.
    pub fn new(cache_blocks: usize, policy: PolicySpec) -> Self {
        SimConfig {
            cache_blocks,
            params: SystemParams::patterson(),
            engine: EngineConfig::default(),
            policy,
            disks: None,
        }
    }

    /// Price I/O with a finite disk array of `num_disks` disks (paper-
    /// standard 15 ms service time, 64-block stripes).
    pub fn with_disks(mut self, num_disks: usize) -> Self {
        self.disks = Some(prefetch_disk::DiskArrayConfig::with_disks(num_disks));
        self
    }

    /// Override `T_cpu` (Figures 11-12 sweep).
    pub fn with_t_cpu(mut self, t_cpu: f64) -> Self {
        self.params.t_cpu = t_cpu;
        self
    }

    /// Limit the prefetch tree's node count (Figure 13).
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.engine.node_limit = limit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(PolicySpec::NoPrefetch.name(), "no-prefetch");
        assert_eq!(PolicySpec::TreeNextLimit.name(), "tree-next-limit");
        assert_eq!(PolicySpec::TreeThreshold(0.05).name(), "tree-threshold(0.05)");
        assert_eq!(PolicySpec::TreeChildren(3).name(), "tree-children(3)");
    }

    #[test]
    fn build_produces_matching_policies() {
        let p = SystemParams::patterson();
        let e = EngineConfig::default();
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.1),
            PolicySpec::TreeChildren(4),
            PolicySpec::PerfectSelector,
        ] {
            let policy = spec.build(p, e);
            // Parameterized names carry the parameter only in the spec.
            assert!(spec.name().starts_with(policy.name()));
        }
    }

    #[test]
    fn only_oracle_uses_lookahead() {
        assert!(PolicySpec::PerfectSelector.uses_lookahead());
        assert!(!PolicySpec::Tree.uses_lookahead());
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::new(512, PolicySpec::Tree).with_t_cpu(320.0).with_node_limit(4096);
        assert_eq!(c.cache_blocks, 512);
        assert_eq!(c.params.t_cpu, 320.0);
        assert_eq!(c.engine.node_limit, 4096);
    }
}
