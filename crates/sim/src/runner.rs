//! The simulation driver loop.
//!
//! Per reference: look the block up in the partitioned cache (demand hits
//! touch, prefetch hits migrate — Figure 2), demand-fetch on a miss with a
//! policy-chosen victim, then hand the completed reference to the policy,
//! which updates its predictor and issues prefetches (Section 7). A
//! virtual clock follows the Section 3 timing model as an extension
//! (the paper itself reports only rates).

use crate::config::SimConfig;
use crate::metrics::SimMetrics;
use prefetch_cache::buffer_cache::RefOutcome;
use prefetch_cache::BufferCache;
use prefetch_core::policy::{apply_victim, PeriodActivity, RefContext, RefKind};
use prefetch_trace::Trace;
use serde::{Deserialize, Serialize};

/// Result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced it.
    pub config: SimConfig,
    /// Trace name (from metadata).
    pub trace: String,
    /// Collected metrics.
    pub metrics: SimMetrics,
}

/// Ring buffer mapping recent access periods to virtual start times, used
/// to price partially-overlapped prefetch hits.
struct PeriodClock {
    starts: Vec<f64>,
    head: usize,
}

impl PeriodClock {
    const LEN: usize = 512;

    fn new() -> Self {
        PeriodClock { starts: vec![0.0; Self::LEN], head: 0 }
    }

    fn record(&mut self, period: u64, now_ms: f64) {
        debug_assert_eq!(period as usize % Self::LEN, self.head % Self::LEN);
        self.starts[period as usize % Self::LEN] = now_ms;
        self.head = (period as usize + 1) % Self::LEN;
    }

    /// Virtual start time of `period`, or `None` if it scrolled out.
    fn start_of(&self, period: u64, current_period: u64) -> Option<f64> {
        if current_period.saturating_sub(period) >= Self::LEN as u64 {
            return None;
        }
        Some(self.starts[period as usize % Self::LEN])
    }
}

/// Run `trace` under `config` and collect metrics.
pub fn run_simulation(trace: &Trace, config: &SimConfig) -> SimResult {
    let mut policy = config.policy.build(config.params, config.engine);
    let mut cache = BufferCache::new(config.cache_blocks);
    let mut metrics = SimMetrics::default();
    let p = &config.params;
    let mut clock = PeriodClock::new();
    let mut now_ms = 0.0f64;

    // Optional finite disk array (extension; `None` = the paper's
    // infinite-disk assumption). Prefetch completion times are tracked per
    // block so partially-overlapped prefetch hits stall correctly.
    // Configuration errors surface through `SimConfig::validate`; reaching
    // this expect means a front end skipped validation.
    let mut disks = config.disks.map(|d| {
        match config.faults {
            Some(f) if f.plan.is_active() => prefetch_disk::DiskArray::with_faults(d, f.plan),
            _ => prefetch_disk::DiskArray::new(d),
        }
        .expect("invalid SimConfig (run SimConfig::validate first)")
    });
    let retry = config.faults.map(|f| f.retry).unwrap_or_default();
    let faults_active = disks.as_ref().is_some_and(|a| a.fault_plan().is_some());
    let mut prefetch_completion: std::collections::HashMap<u64, f64> =
        std::collections::HashMap::new();

    let records = trace.records();
    let mut act = PeriodActivity::default();
    for (i, rec) in records.iter().enumerate() {
        let period = i as u64;
        clock.record(period, now_ms);
        metrics.refs += 1;

        let outcome = cache.reference(rec.block);
        let kind = match outcome {
            RefOutcome::DemandHit => {
                metrics.demand_hits += 1;
                RefKind::DemandHit
            }
            RefOutcome::PrefetchHit(meta) => {
                metrics.prefetch_hits += 1;
                // Stall for whatever part of the prefetch I/O has not yet
                // completed (Figure 5, access period 3).
                let completes = if disks.is_some() {
                    prefetch_completion.remove(&rec.block.0)
                } else {
                    clock
                        .start_of(meta.issued_at, period)
                        .map(|issue_start| issue_start + p.t_driver + p.t_disk)
                };
                if let Some(completes) = completes {
                    let stall = (completes - now_ms).max(0.0);
                    now_ms += stall;
                    metrics.stall_ms += stall;
                }
                RefKind::PrefetchHit
            }
            RefOutcome::Miss => {
                metrics.misses += 1;
                if cache.is_full() {
                    let victim = policy.choose_demand_victim(&cache);
                    if apply_victim(victim, &mut cache) {
                        metrics.prefetch_evictions += 1;
                    }
                }
                cache.insert_demand(rec.block);
                // Full demand-fetch stall (Figure 3a); with a finite array
                // the fetch may additionally queue behind earlier I/O.
                // Under fault injection a failed read retries with
                // exponential backoff in virtual time; when the budget runs
                // out the read is priced with the give-up penalty instead
                // of looping forever.
                let stall = match &mut disks {
                    Some(array) => {
                        let mut attempts = 0u32;
                        let mut submit_at = now_ms + p.t_driver;
                        let completion = loop {
                            match array.submit(rec.block, submit_at) {
                                Ok(c) => {
                                    if faults_active {
                                        policy.note_read_success(rec.block);
                                    }
                                    break c.completion_ms;
                                }
                                Err(fault) => {
                                    attempts += 1;
                                    metrics.demand_faults += 1;
                                    if retry.should_retry(attempts) {
                                        metrics.demand_retries += 1;
                                        let backoff = retry.backoff_ms(attempts);
                                        metrics.retry_backoff_ms += backoff;
                                        submit_at = fault.retry_at_ms().max(submit_at) + backoff;
                                    } else {
                                        metrics.demand_read_failures += 1;
                                        break fault.retry_at_ms().max(submit_at)
                                            + retry.give_up_penalty_ms;
                                    }
                                }
                            }
                        };
                        completion - now_ms
                    }
                    None => p.t_driver + p.t_disk,
                };
                now_ms += stall;
                metrics.stall_ms += stall;
                RefKind::Miss
            }
        };

        let ctx = RefContext {
            block: rec.block,
            kind,
            next_block: records.get(i + 1).map(|r| r.block),
            period,
        };
        // Reuse the block-list allocation across periods.
        let mut blocks = std::mem::take(&mut act.prefetched_blocks);
        blocks.clear();
        act = PeriodActivity { prefetched_blocks: blocks, ..PeriodActivity::default() };
        policy.after_reference(&ctx, &mut cache, &mut act);
        absorb(&mut metrics, &act, kind);

        // Queue this period's prefetch I/O on the array. A faulted
        // prefetch is treated as a priced mispredict: the buffer is
        // released immediately (no retries compete with demand traffic),
        // the initiation overhead stays charged via `prefetches_issued`,
        // and repeat offenders are quarantined by the policy so the
        // Section 7 loop stops re-issuing them.
        if let Some(array) = &mut disks {
            for (j, &b) in act.prefetched_blocks.iter().enumerate() {
                let issue = now_ms + (j + 1) as f64 * p.t_driver;
                match array.submit(b, issue) {
                    Ok(c) => {
                        prefetch_completion.insert(b.0, c.completion_ms);
                    }
                    Err(_) => {
                        metrics.prefetch_faults += 1;
                        cache.cancel_prefetch(b);
                        prefetch_completion.remove(&b.0);
                        if policy.note_prefetch_fault(b) {
                            metrics.blocks_quarantined += 1;
                        }
                    }
                }
            }
        }

        // Advance the virtual clock by the period's foreground work
        // (Figure 3): the cache read, the prefetch initiations, and the
        // computation until the next request.
        now_ms += p.t_hit + act.prefetches_issued as f64 * p.t_driver + p.t_cpu;

        debug_assert!(cache.len() <= cache.capacity());
    }
    metrics.elapsed_ms = now_ms;
    if let Some(array) = &disks {
        let s = array.stats();
        metrics.disk_queue_ms = s.queue_ms;
        metrics.disk_queued_requests = s.queued_requests;
        metrics.disk_mean_utilization = s.mean_utilization();
        metrics.disk_slowed_requests = s.slowed_requests;
    }
    metrics.check_invariants();
    SimResult { config: *config, trace: trace.meta().name.clone(), metrics }
}

fn absorb(m: &mut SimMetrics, act: &PeriodActivity, kind: RefKind) {
    m.prefetches_issued += act.prefetches_issued as u64;
    m.prefetch_probability_sum += act.prefetch_probability_sum;
    m.candidates_considered += act.candidates_considered as u64;
    m.candidates_already_cached += act.candidates_already_cached as u64;
    m.candidates_quarantined += act.candidates_quarantined as u64;
    m.prefetch_evictions += act.prefetch_evictions as u64;
    m.demand_evictions_for_prefetch += act.demand_evictions_for_prefetch as u64;
    if act.predictable {
        m.predictable += 1;
        if kind == RefKind::Miss {
            m.predictable_missed += 1;
        }
    }
    if let Some(repeat) = act.lvc_repeat {
        m.lvc_opportunities += 1;
        if repeat {
            m.lvc_repeats += 1;
        }
    }
    if let Some(cached) = act.lvc_already_cached {
        if cached {
            m.lvc_cached += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use prefetch_trace::synth::TraceKind;
    use prefetch_trace::Trace;

    #[test]
    fn no_prefetch_on_a_loop_bigger_than_cache_always_misses() {
        // Cyclic access over N+1 blocks through an N-block LRU: pathological
        // 100% miss rate (the classic LRU worst case).
        let blocks: Vec<u64> = (0..50).flat_map(|_| 0..9u64).collect();
        let trace = Trace::from_blocks(blocks);
        let r = run_simulation(&trace, &SimConfig::new(8, PolicySpec::NoPrefetch));
        assert!((r.metrics.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_prefetch_on_a_fitting_loop_only_cold_misses() {
        let blocks: Vec<u64> = (0..50).flat_map(|_| 0..8u64).collect();
        let trace = Trace::from_blocks(blocks);
        let r = run_simulation(&trace, &SimConfig::new(16, PolicySpec::NoPrefetch));
        assert_eq!(r.metrics.misses, 8);
        assert_eq!(r.metrics.prefetches_issued, 0);
        assert_eq!(r.metrics.prefetch_hits, 0);
    }

    #[test]
    fn next_limit_absorbs_sequential_misses() {
        let trace = Trace::from_blocks(0u64..2000);
        let base = run_simulation(&trace, &SimConfig::new(64, PolicySpec::NoPrefetch));
        let nl = run_simulation(&trace, &SimConfig::new(64, PolicySpec::NextLimit));
        assert!((base.metrics.miss_rate() - 1.0).abs() < 1e-12);
        assert!(
            nl.metrics.miss_rate() < 0.6,
            "next-limit should absorb a sequential stream: {}",
            nl.metrics.miss_rate()
        );
        assert!(nl.metrics.prefetch_hits > 0);
    }

    #[test]
    fn tree_learns_a_repeated_scattered_pattern() {
        // Scattered (non-sequential) repeating pattern, longer than the
        // cache: no-prefetch ~100% misses; tree should recover much of it.
        let pattern: Vec<u64> = vec![5, 900, 17, 333, 72, 1001, 4, 256, 610, 48, 81, 777];
        let blocks: Vec<u64> = (0..300).flat_map(|_| pattern.clone()).collect();
        let trace = Trace::from_blocks(blocks);
        let base = run_simulation(&trace, &SimConfig::new(8, PolicySpec::NoPrefetch));
        let tree = run_simulation(&trace, &SimConfig::new(8, PolicySpec::Tree));
        assert!((base.metrics.miss_rate() - 1.0).abs() < 1e-9);
        assert!(
            tree.metrics.miss_rate() < 0.7 * base.metrics.miss_rate(),
            "tree {} vs base {}",
            tree.metrics.miss_rate(),
            base.metrics.miss_rate()
        );
    }

    #[test]
    fn all_policies_satisfy_invariants_on_all_traces() {
        for kind in TraceKind::ALL {
            let trace = kind.generate(4000, 3);
            for spec in [
                PolicySpec::NoPrefetch,
                PolicySpec::NextLimit,
                PolicySpec::Tree,
                PolicySpec::TreeNextLimit,
                PolicySpec::TreeLvc,
                PolicySpec::TreeThreshold(0.05),
                PolicySpec::TreeChildren(3),
                PolicySpec::PerfectSelector,
            ] {
                let r = run_simulation(&trace, &SimConfig::new(256, spec));
                // check_invariants already ran inside; spot-check a few.
                assert_eq!(r.metrics.refs, 4000, "{kind} {spec:?}");
                assert!(r.metrics.elapsed_ms > 0.0);
            }
        }
    }

    #[test]
    fn perfect_selector_beats_tree_on_predictable_workload() {
        let trace = TraceKind::Cad.generate(30_000, 7);
        let tree = run_simulation(&trace, &SimConfig::new(512, PolicySpec::Tree));
        let oracle = run_simulation(&trace, &SimConfig::new(512, PolicySpec::PerfectSelector));
        assert!(
            oracle.metrics.miss_rate() <= tree.metrics.miss_rate() + 0.02,
            "oracle {} vs tree {}",
            oracle.metrics.miss_rate(),
            tree.metrics.miss_rate()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let trace = TraceKind::Snake.generate(5000, 11);
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&trace, &cfg);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn zero_fault_rate_reproduces_the_fault_free_run_bit_for_bit() {
        let trace = TraceKind::Cad.generate(6000, 5);
        for spec in [PolicySpec::NoPrefetch, PolicySpec::Tree, PolicySpec::TreeNextLimit] {
            let plain = SimConfig::new(256, spec).with_disks(4);
            let faulted = plain.with_fault_rate(99, 0.0);
            faulted.validate().unwrap();
            let a = run_simulation(&trace, &plain);
            let b = run_simulation(&trace, &faulted);
            assert_eq!(a.metrics, b.metrics, "{spec:?}");
            assert_eq!(b.metrics.total_faults(), 0);
        }
    }

    #[test]
    fn faulted_runs_are_deterministic_and_count_faults() {
        let trace = TraceKind::Snake.generate(6000, 11);
        let cfg =
            SimConfig::new(128, PolicySpec::TreeNextLimit).with_disks(2).with_fault_rate(7, 0.08);
        cfg.validate().unwrap();
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&trace, &cfg);
        assert_eq!(a.metrics, b.metrics);
        assert!(a.metrics.demand_faults > 0, "no demand faults at rate 0.08");
        assert!(a.metrics.demand_retries > 0, "faults never retried");
        assert!(a.metrics.retry_backoff_ms > 0.0, "retries never backed off");
        assert!(a.metrics.prefetch_faults > 0, "no prefetch faults at rate 0.08");
    }

    #[test]
    fn all_policies_survive_heavy_faults() {
        let trace = TraceKind::Cad.generate(4000, 3);
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.05),
            PolicySpec::TreeChildren(3),
            PolicySpec::PerfectSelector,
        ] {
            let cfg = SimConfig::new(256, spec).with_disks(4).with_fault_rate(13, 0.25);
            cfg.validate().unwrap();
            let r = run_simulation(&trace, &cfg);
            assert_eq!(r.metrics.refs, 4000, "{spec:?}");
            assert!(r.metrics.demand_faults > 0, "{spec:?} saw no faults at rate 0.25");
        }
    }

    #[test]
    fn faults_slow_the_run_down() {
        let trace = TraceKind::Snake.generate(8000, 2);
        let plain = SimConfig::new(128, PolicySpec::Tree).with_disks(2);
        let faulted = plain.with_fault_rate(5, 0.15);
        let a = run_simulation(&trace, &plain);
        let b = run_simulation(&trace, &faulted);
        assert!(
            b.metrics.elapsed_ms > a.metrics.elapsed_ms,
            "faults should cost virtual time: {} vs {}",
            b.metrics.elapsed_ms,
            a.metrics.elapsed_ms
        );
    }

    #[test]
    fn repeat_prefetch_faults_quarantine_blocks() {
        // At a very high fault rate the tree policy's prefetches fail
        // repeatedly; the quarantine must engage and be visible in the
        // counters.
        let trace = TraceKind::Cad.generate(8000, 9);
        let cfg =
            SimConfig::new(256, PolicySpec::TreeNextLimit).with_disks(1).with_fault_rate(3, 0.5);
        let r = run_simulation(&trace, &cfg);
        assert!(r.metrics.prefetch_faults > 0);
        assert!(
            r.metrics.blocks_quarantined > 0,
            "no block crossed the quarantine threshold under 50% faults"
        );
    }
}
