//! Batch front ends over the decomposed [`crate::simulator::Simulator`].
//!
//! [`run_simulation`] keeps the original materialized-trace signature;
//! [`run_source`] drives any streaming [`TraceSource`] in memory
//! independent of trace length. Both feed the same simulator core, so
//! their metrics are bit-identical for identical record streams.

use crate::config::SimConfig;
use crate::metrics::SimMetrics;
use crate::simulator::Simulator;
use prefetch_telemetry::PhaseTimes;
use prefetch_trace::io::TraceIoError;
use prefetch_trace::{Trace, TraceSource};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced it.
    pub config: SimConfig,
    /// Trace name (from metadata). Shared, not cloned, across the cells
    /// of a sweep.
    pub trace: Arc<str>,
    /// Collected metrics.
    pub metrics: SimMetrics,
    /// Malformed records the trace reader skipped (lossy file sources
    /// only; always zero for in-memory and synthetic traces). Nonzero
    /// means the metrics describe a *shorter* stream than the file holds.
    pub skipped_records: u64,
    /// Wall-clock profile of the run's five phases (all zero unless
    /// `config.profile` — or the harness's profiling flag — was set).
    /// Real time, not virtual: excluded from metric comparisons.
    pub phases: PhaseTimes,
}

/// Run `trace` under `config` and collect metrics.
pub fn run_simulation(trace: &Trace, config: &SimConfig) -> SimResult {
    run_simulation_named(trace, Arc::from(trace.meta().name.as_str()), config)
}

/// [`run_simulation`] with the trace's name supplied by the caller, so a
/// sweep can share one allocation across thousands of cells.
pub fn run_simulation_named(trace: &Trace, name: Arc<str>, config: &SimConfig) -> SimResult {
    let mut source = trace.source();
    let mut metrics = SimMetrics::default();
    let phases =
        Simulator::run(&mut source, config, &mut metrics).expect("in-memory sources cannot fail");
    metrics.check_invariants();
    SimResult { config: *config, trace: name, metrics, skipped_records: 0, phases }
}

/// Run a streaming source under `config`. The source is consumed to its
/// end; rewind it first if it has already been read. Fails only if the
/// source does (synthetic and in-memory sources never do).
pub fn run_source<S: TraceSource>(
    source: &mut S,
    config: &SimConfig,
) -> Result<SimResult, TraceIoError> {
    let mut metrics = SimMetrics::default();
    let phases = Simulator::run(source, config, &mut metrics)?;
    metrics.check_invariants();
    // Read the name after the run: file sources may refine their metadata
    // while streaming.
    Ok(SimResult {
        config: *config,
        trace: Arc::from(source.meta().name.as_str()),
        metrics,
        skipped_records: source.skipped(),
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use prefetch_trace::synth::TraceKind;
    use prefetch_trace::Trace;

    #[test]
    fn no_prefetch_on_a_loop_bigger_than_cache_always_misses() {
        // Cyclic access over N+1 blocks through an N-block LRU: pathological
        // 100% miss rate (the classic LRU worst case).
        let blocks: Vec<u64> = (0..50).flat_map(|_| 0..9u64).collect();
        let trace = Trace::from_blocks(blocks);
        let r = run_simulation(&trace, &SimConfig::new(8, PolicySpec::NoPrefetch));
        assert!((r.metrics.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_prefetch_on_a_fitting_loop_only_cold_misses() {
        let blocks: Vec<u64> = (0..50).flat_map(|_| 0..8u64).collect();
        let trace = Trace::from_blocks(blocks);
        let r = run_simulation(&trace, &SimConfig::new(16, PolicySpec::NoPrefetch));
        assert_eq!(r.metrics.misses, 8);
        assert_eq!(r.metrics.prefetches_issued, 0);
        assert_eq!(r.metrics.prefetch_hits, 0);
    }

    #[test]
    fn next_limit_absorbs_sequential_misses() {
        let trace = Trace::from_blocks(0u64..2000);
        let base = run_simulation(&trace, &SimConfig::new(64, PolicySpec::NoPrefetch));
        let nl = run_simulation(&trace, &SimConfig::new(64, PolicySpec::NextLimit));
        assert!((base.metrics.miss_rate() - 1.0).abs() < 1e-12);
        assert!(
            nl.metrics.miss_rate() < 0.6,
            "next-limit should absorb a sequential stream: {}",
            nl.metrics.miss_rate()
        );
        assert!(nl.metrics.prefetch_hits > 0);
    }

    #[test]
    fn tree_learns_a_repeated_scattered_pattern() {
        // Scattered (non-sequential) repeating pattern, longer than the
        // cache: no-prefetch ~100% misses; tree should recover much of it.
        let pattern: Vec<u64> = vec![5, 900, 17, 333, 72, 1001, 4, 256, 610, 48, 81, 777];
        let blocks: Vec<u64> = (0..300).flat_map(|_| pattern.clone()).collect();
        let trace = Trace::from_blocks(blocks);
        let base = run_simulation(&trace, &SimConfig::new(8, PolicySpec::NoPrefetch));
        let tree = run_simulation(&trace, &SimConfig::new(8, PolicySpec::Tree));
        assert!((base.metrics.miss_rate() - 1.0).abs() < 1e-9);
        assert!(
            tree.metrics.miss_rate() < 0.7 * base.metrics.miss_rate(),
            "tree {} vs base {}",
            tree.metrics.miss_rate(),
            base.metrics.miss_rate()
        );
    }

    #[test]
    fn all_policies_satisfy_invariants_on_all_traces() {
        for kind in TraceKind::ALL {
            let trace = kind.generate(4000, 3);
            for spec in [
                PolicySpec::NoPrefetch,
                PolicySpec::NextLimit,
                PolicySpec::Tree,
                PolicySpec::TreeNextLimit,
                PolicySpec::TreeLvc,
                PolicySpec::TreeThreshold(0.05),
                PolicySpec::TreeChildren(3),
                PolicySpec::PerfectSelector,
            ] {
                let r = run_simulation(&trace, &SimConfig::new(256, spec));
                // check_invariants already ran inside; spot-check a few.
                assert_eq!(r.metrics.refs, 4000, "{kind} {spec:?}");
                assert!(r.metrics.elapsed_ms > 0.0);
            }
        }
    }

    #[test]
    fn perfect_selector_beats_tree_on_predictable_workload() {
        let trace = TraceKind::Cad.generate(30_000, 7);
        let tree = run_simulation(&trace, &SimConfig::new(512, PolicySpec::Tree));
        let oracle = run_simulation(&trace, &SimConfig::new(512, PolicySpec::PerfectSelector));
        assert!(
            oracle.metrics.miss_rate() <= tree.metrics.miss_rate() + 0.02,
            "oracle {} vs tree {}",
            oracle.metrics.miss_rate(),
            tree.metrics.miss_rate()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let trace = TraceKind::Snake.generate(5000, 11);
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&trace, &cfg);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn streaming_source_matches_materialized_run() {
        // The same synthetic stream, materialized vs streamed, must
        // produce bit-identical metrics (the constant-memory guarantee
        // costs nothing in fidelity).
        let refs = 5000;
        let seed = 11;
        for kind in TraceKind::ALL {
            let trace = kind.generate(refs, seed);
            let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
            let batch = run_simulation(&trace, &cfg);
            let mut stream = kind.stream(refs, seed);
            let streamed = run_source(&mut stream, &cfg).unwrap();
            assert_eq!(batch.metrics, streamed.metrics, "{kind}");
            assert_eq!(batch.trace, streamed.trace, "{kind}");
        }
    }

    #[test]
    fn run_simulation_named_shares_the_name_allocation() {
        let trace = TraceKind::Cad.generate(1000, 2);
        let name: Arc<str> = Arc::from(trace.meta().name.as_str());
        let r = run_simulation_named(&trace, name.clone(), &SimConfig::new(64, PolicySpec::Tree));
        assert!(Arc::ptr_eq(&r.trace, &name));
    }

    #[test]
    fn zero_fault_rate_reproduces_the_fault_free_run_bit_for_bit() {
        let trace = TraceKind::Cad.generate(6000, 5);
        for spec in [PolicySpec::NoPrefetch, PolicySpec::Tree, PolicySpec::TreeNextLimit] {
            let plain = SimConfig::new(256, spec).with_disks(4);
            let faulted = plain.with_fault_rate(99, 0.0);
            faulted.validate().unwrap();
            let a = run_simulation(&trace, &plain);
            let b = run_simulation(&trace, &faulted);
            assert_eq!(a.metrics, b.metrics, "{spec:?}");
            assert_eq!(b.metrics.total_faults(), 0);
        }
    }

    #[test]
    fn faulted_runs_are_deterministic_and_count_faults() {
        let trace = TraceKind::Snake.generate(6000, 11);
        let cfg =
            SimConfig::new(128, PolicySpec::TreeNextLimit).with_disks(2).with_fault_rate(7, 0.08);
        cfg.validate().unwrap();
        let a = run_simulation(&trace, &cfg);
        let b = run_simulation(&trace, &cfg);
        assert_eq!(a.metrics, b.metrics);
        assert!(a.metrics.demand_faults > 0, "no demand faults at rate 0.08");
        assert!(a.metrics.demand_retries > 0, "faults never retried");
        assert!(a.metrics.retry_backoff_ms > 0.0, "retries never backed off");
        assert!(a.metrics.prefetch_faults > 0, "no prefetch faults at rate 0.08");
    }

    #[test]
    fn all_policies_survive_heavy_faults() {
        let trace = TraceKind::Cad.generate(4000, 3);
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.05),
            PolicySpec::TreeChildren(3),
            PolicySpec::PerfectSelector,
        ] {
            let cfg = SimConfig::new(256, spec).with_disks(4).with_fault_rate(13, 0.25);
            cfg.validate().unwrap();
            let r = run_simulation(&trace, &cfg);
            assert_eq!(r.metrics.refs, 4000, "{spec:?}");
            assert!(r.metrics.demand_faults > 0, "{spec:?} saw no faults at rate 0.25");
        }
    }

    #[test]
    fn faults_slow_the_run_down() {
        let trace = TraceKind::Snake.generate(8000, 2);
        let plain = SimConfig::new(128, PolicySpec::Tree).with_disks(2);
        let faulted = plain.with_fault_rate(5, 0.15);
        let a = run_simulation(&trace, &plain);
        let b = run_simulation(&trace, &faulted);
        assert!(
            b.metrics.elapsed_ms > a.metrics.elapsed_ms,
            "faults should cost virtual time: {} vs {}",
            b.metrics.elapsed_ms,
            a.metrics.elapsed_ms
        );
    }

    #[test]
    fn repeat_prefetch_faults_quarantine_blocks() {
        // At a very high fault rate the tree policy's prefetches fail
        // repeatedly; the quarantine must engage and be visible in the
        // counters.
        let trace = TraceKind::Cad.generate(8000, 9);
        let cfg =
            SimConfig::new(256, PolicySpec::TreeNextLimit).with_disks(1).with_fault_rate(3, 0.5);
        let r = run_simulation(&trace, &cfg);
        assert!(r.metrics.prefetch_faults > 0);
        assert!(
            r.metrics.blocks_quarantined > 0,
            "no block crossed the quarantine threshold under 50% faults"
        );
    }
}
