//! # prefetch-sim
//!
//! Trace-driven simulator for the SC'99 cost-benefit prefetching study:
//! the driver loop that feeds a trace through a partitioned
//! [`prefetch_cache::BufferCache`] under a [`prefetch_core::policy`]
//! policy, the metrics the paper reports, rayon-parallel parameter sweeps,
//! and the experiment implementations that regenerate every table and
//! figure of the paper's evaluation (Section 9).
//!
//! ## Quick example
//!
//! ```
//! use prefetch_sim::{PolicySpec, SimConfig, run_simulation};
//! use prefetch_trace::synth::TraceKind;
//!
//! let trace = TraceKind::Cad.generate(20_000, 42);
//! let cfg = SimConfig::new(1024, PolicySpec::TreeNextLimit);
//! let result = run_simulation(&trace, &cfg);
//! assert!(result.metrics.miss_rate() < 1.0);
//! ```

pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod experiments;
pub mod harness;
pub mod instrument;
pub mod io_subsystem;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod runner;
pub mod simulator;
pub mod sweep;

pub use checkpoint::{cell_fingerprint, CheckpointError, CheckpointJournal, JournalEntry};
pub use clock::VirtualClock;
pub use config::{FaultConfig, PolicySpec, SimConfig, SimConfigError};
pub use harness::{
    cell_status_record, run_cells_checkpointed, run_grid_checkpointed, run_source_guarded,
    run_source_guarded_snapshot, run_source_guarded_with, CellOutcome, CellStatus, DeadlineGuard,
    HarnessOpts, SweepError, SweepLog, SweepRun, SweepSummary,
};
pub use instrument::{JsonlEventSink, QueueDelayObserver, StallHistogramObserver};
pub use io_subsystem::IoSubsystem;
pub use metrics::SimMetrics;
pub use observer::{DiskSummary, NullObserver, SimEvent, SimObserver};
pub use runner::{run_simulation, run_simulation_named, run_source, SimResult};
pub use simulator::Simulator;
pub use sweep::{run_cells, SweepCell};
