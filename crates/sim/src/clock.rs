//! The simulation's virtual clock.
//!
//! [`VirtualClock`] owns virtual time (`now_ms`) and a ring of recent
//! access-period start times, used to price partially-overlapped prefetch
//! hits under the paper's infinite-disk model (Figure 5: a prefetch hit
//! stalls for whatever part of its I/O has not yet completed).
//!
//! ## Ring sizing and the scroll-out fallback
//!
//! The ring is finite, so a prefetch referenced very long after it was
//! issued can find its issue period scrolled out. The old implementation
//! silently priced such hits at **zero stall** — an optimistic bug. Two
//! defenses replace it:
//!
//! * the ring is sized from the configuration (see
//!   [`VirtualClock::for_run`]): a prefetched block must survive in the
//!   prefetch partition until referenced, so with a cache of `C` blocks
//!   and at most `m` prefetches issued per period, a hit on a prefetch
//!   issued more than about `C / m` periods ago is rare — the ring covers
//!   four times that, clamped to `[512, 65536]`;
//! * a lookup that still scrolls out is priced against the **oldest
//!   retained period start**. Start times are monotone, so that start is
//!   an upper bound on the true issue start and the resulting stall is a
//!   conservative (never optimistic) bound on the true stall. In any
//!   normal configuration the clock has advanced far past one I/O time
//!   over a full ring of periods, so the fallback stall collapses to zero
//!   and metrics are unchanged; it differs only where the old code was
//!   wrong.

/// Virtual time plus a ring of recent access-period start times.
#[derive(Clone, Debug)]
pub struct VirtualClock {
    now_ms: f64,
    starts: Vec<f64>,
    current_period: u64,
}

impl VirtualClock {
    /// Smallest ring ever used (the old fixed size).
    pub const MIN_RING: usize = 512;
    /// Largest ring: sizing beyond this costs memory per simulator for
    /// periods no real configuration can keep a prefetch alive across.
    pub const MAX_RING: usize = 1 << 16;

    /// A clock at time zero with an explicit ring length (rounded up to a
    /// power of two and clamped to `[MIN_RING, MAX_RING]`).
    pub fn new(ring_len: usize) -> Self {
        let len = ring_len.next_power_of_two().clamp(Self::MIN_RING, Self::MAX_RING);
        VirtualClock { now_ms: 0.0, starts: vec![0.0; len], current_period: 0 }
    }

    /// A clock sized for a run: the ring covers `4 * cache_blocks /
    /// max_per_period` periods — four times the span a prefetched block
    /// can plausibly stay resident-but-unreferenced (see module docs).
    pub fn for_run(cache_blocks: usize, max_per_period: u32) -> Self {
        Self::new(4 * cache_blocks / max_per_period.max(1) as usize)
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> f64 {
        self.now_ms
    }

    /// Number of period starts retained.
    pub fn ring_len(&self) -> usize {
        self.starts.len()
    }

    /// Advance virtual time by `ms`.
    pub fn advance(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0, "time cannot run backwards ({ms})");
        self.now_ms += ms;
    }

    /// Mark the start of access period `period` at the current time.
    /// Periods must begin in increasing order.
    pub fn begin_period(&mut self, period: u64) {
        debug_assert!(
            period == 0 || period > self.current_period,
            "periods must begin in order ({period} after {})",
            self.current_period
        );
        let len = self.starts.len() as u64;
        self.starts[(period % len) as usize] = self.now_ms;
        self.current_period = period;
    }

    /// Virtual start time of `period`. A period that scrolled out of the
    /// ring is priced as the oldest retained start — a conservative upper
    /// bound (module docs).
    pub fn start_of(&self, period: u64) -> f64 {
        let len = self.starts.len() as u64;
        let lookup = if self.current_period.saturating_sub(period) >= len {
            // current_period >= len here, so this cannot underflow.
            self.current_period + 1 - len
        } else {
            period
        };
        self.starts[(lookup % len) as usize]
    }

    /// Stall a prefetch hit must absorb: the prefetch was issued at the
    /// start of period `issued_at` (plus `t_io` of driver + disk time);
    /// whatever has not completed by now is stalled for (Figure 5).
    pub fn prefetch_stall(&self, issued_at: u64, t_io: f64) -> f64 {
        (self.start_of(issued_at) + t_io - self.now_ms).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_len_is_clamped_power_of_two() {
        assert_eq!(VirtualClock::new(0).ring_len(), VirtualClock::MIN_RING);
        assert_eq!(VirtualClock::new(513).ring_len(), 1024);
        assert_eq!(VirtualClock::new(1 << 20).ring_len(), VirtualClock::MAX_RING);
    }

    #[test]
    fn for_run_scales_with_cache_and_issue_rate() {
        // 8192-block cache, 4 prefetches/period → 8192 periods of cover.
        assert_eq!(VirtualClock::for_run(8192, 4).ring_len(), 8192);
        // Small cache: clamped to the minimum.
        assert_eq!(VirtualClock::for_run(64, 64).ring_len(), VirtualClock::MIN_RING);
        // Degenerate max_per_period never divides by zero.
        assert!(VirtualClock::for_run(1024, 0).ring_len() >= VirtualClock::MIN_RING);
    }

    #[test]
    fn tracks_period_starts_and_stalls() {
        let mut c = VirtualClock::new(512);
        c.begin_period(0);
        c.advance(10.0);
        c.begin_period(1);
        assert_eq!(c.start_of(0), 0.0);
        assert_eq!(c.start_of(1), 10.0);
        // Prefetch issued in period 0 with 15 ms of I/O: 5 ms remain.
        assert_eq!(c.prefetch_stall(0, 15.0), 5.0);
        // Fully overlapped: no stall, never negative.
        assert_eq!(c.prefetch_stall(0, 3.0), 0.0);
    }

    /// Regression: the old 512-entry `PeriodClock` returned `None` for a
    /// period that scrolled out of the ring, and the runner priced that as
    /// **zero stall** — a prefetch hit referenced more than 512 periods
    /// after issue was silently free. The fallback must price it against
    /// the oldest retained start instead (a nonzero, conservative stall
    /// when the clock has not advanced past the I/O time).
    #[test]
    fn scrolled_out_period_is_not_priced_as_free() {
        let mut c = VirtualClock::new(512);
        for period in 0..600 {
            c.begin_period(period);
            // The clock barely advances: all retained starts stay near 0,
            // so the prefetch I/O is genuinely still outstanding.
            c.advance(0.001);
        }
        // Period 0 scrolled out (600 - 0 >= 512). With t_io = 15 ms and
        // now ≈ 0.6 ms the true stall is ≈ 14.4 ms; the old code said 0.
        let stall = c.prefetch_stall(0, 15.0);
        assert!(stall > 14.0, "scrolled-out prefetch priced as free: stall={stall}");
        // And the bound is conservative: not more than the full I/O.
        assert!(stall <= 15.0);
    }

    #[test]
    fn scrolled_out_fallback_collapses_to_zero_in_normal_runs() {
        // When each period advances time by more than t_io/ring_len, the
        // oldest retained start is far enough in the past that the
        // fallback stall is zero — matching the old behaviour exactly.
        let mut c = VirtualClock::new(512);
        for period in 0..600 {
            c.begin_period(period);
            c.advance(1.0); // 512 retained periods ≫ 15 ms of I/O
        }
        assert_eq!(c.prefetch_stall(0, 15.0), 0.0);
    }
}
