//! Rayon-parallel parameter sweeps.
//!
//! Every figure of the paper is a sweep over (trace × policy × cache size)
//! or (trace × policy × T_cpu) cells; each cell is an independent
//! simulation, so the sweep is embarrassingly parallel. Per the HPC
//! guidance, each cell carries its own deterministic inputs — results are
//! identical regardless of thread count or schedule.

use crate::config::SimConfig;
use crate::harness::SweepError;
use crate::runner::{run_simulation_named, SimResult};
use prefetch_trace::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One shared name allocation per trace: every cell of a sweep clones an
/// `Arc` pointer instead of the name string (and `SimConfig` is `Copy`),
/// so the per-cell setup cost is allocation-free.
fn shared_names(traces: &[Trace]) -> Vec<Arc<str>> {
    traces.iter().map(|t| Arc::from(t.meta().name.as_str())).collect()
}

/// One point of a sweep: a configuration plus its result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepCell {
    /// Index of the trace within the sweep's trace list.
    pub trace_index: usize,
    /// The run's result (carries config, trace name and metrics).
    pub result: SimResult,
}

/// Run every (trace, config) combination in parallel, preserving input
/// order in the output.
pub fn run_grid(traces: &[Trace], configs: &[SimConfig]) -> Vec<SweepCell> {
    let names = shared_names(traces);
    let cells: Vec<(usize, SimConfig)> = traces
        .iter()
        .enumerate()
        .flat_map(|(ti, _)| configs.iter().map(move |c| (ti, *c)))
        .collect();
    cells
        .into_par_iter()
        .map(|(trace_index, config)| SweepCell {
            trace_index,
            result: run_simulation_named(&traces[trace_index], names[trace_index].clone(), &config),
        })
        .collect()
}

/// Run an explicit list of (trace index, config) cells in parallel.
///
/// A cell naming a trace index outside `traces` is a caller bug, reported
/// as [`SweepError::BadTraceIndex`] before any cell runs (it used to be a
/// mid-sweep panic). For panic isolation, deadlines, and crash-safe
/// resume on top of this, see [`crate::harness::run_cells_checkpointed`].
pub fn run_cells(
    traces: &[Trace],
    cells: &[(usize, SimConfig)],
) -> Result<Vec<SweepCell>, SweepError> {
    if let Some(&(index, _)) = cells.iter().find(|&&(ti, _)| ti >= traces.len()) {
        return Err(SweepError::BadTraceIndex { index, traces: traces.len() });
    }
    let names = shared_names(traces);
    Ok(cells
        .par_iter()
        .map(|&(trace_index, config)| SweepCell {
            trace_index,
            result: run_simulation_named(&traces[trace_index], names[trace_index].clone(), &config),
        })
        .collect())
}

/// The cache sizes (in blocks) the paper sweeps in its figures.
pub const PAPER_CACHE_SIZES: [usize; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// The `T_cpu` values (ms) of the Section 9.2.3 sweep (20-640 ms), extended
/// downward: with the printed Eq. 6 and Patterson constants, `T_stall` is
/// identically zero once `T_cpu > T_disk = 15 ms`, so the paper's own range
/// cannot vary the model — the rise-then-plateau of Figure 11 lives below
/// 15 ms (see EXPERIMENTS.md).
pub const PAPER_T_CPU_VALUES: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use crate::runner::run_simulation;
    use prefetch_trace::synth::TraceKind;

    #[test]
    fn grid_preserves_order_and_matches_serial_runs() {
        let traces = vec![TraceKind::Cad.generate(2000, 1), TraceKind::Sitar.generate(2000, 1)];
        let configs =
            vec![SimConfig::new(64, PolicySpec::NoPrefetch), SimConfig::new(64, PolicySpec::Tree)];
        let grid = run_grid(&traces, &configs);
        assert_eq!(grid.len(), 4);
        // Order: (t0,c0), (t0,c1), (t1,c0), (t1,c1).
        assert_eq!(grid[0].trace_index, 0);
        assert_eq!(grid[3].trace_index, 1);
        // Parallel result equals serial result.
        let serial = run_simulation(&traces[0], &configs[1]);
        assert_eq!(grid[1].result.metrics, serial.metrics);
    }

    #[test]
    fn run_cells_executes_exact_list() {
        let traces = vec![TraceKind::Cad.generate(1000, 2)];
        let cells = vec![
            (0usize, SimConfig::new(32, PolicySpec::NextLimit)),
            (0usize, SimConfig::new(64, PolicySpec::NextLimit)),
        ];
        let out = run_cells(&traces, &cells).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].result.config.cache_blocks, 32);
        assert_eq!(out[1].result.config.cache_blocks, 64);
    }

    #[test]
    fn cells_of_one_trace_share_the_name_allocation() {
        let traces = vec![TraceKind::Snake.generate(500, 4)];
        let configs = vec![
            SimConfig::new(32, PolicySpec::NoPrefetch),
            SimConfig::new(64, PolicySpec::NextLimit),
            SimConfig::new(128, PolicySpec::Tree),
        ];
        let grid = run_grid(&traces, &configs);
        assert!(Arc::ptr_eq(&grid[0].result.trace, &grid[1].result.trace));
        assert!(Arc::ptr_eq(&grid[0].result.trace, &grid[2].result.trace));
        assert_eq!(&*grid[0].result.trace, "snake");
    }

    #[test]
    fn bad_trace_index_is_a_typed_error() {
        let traces = vec![TraceKind::Cad.generate(100, 3)];
        let err =
            run_cells(&traces, &[(1, SimConfig::new(32, PolicySpec::NoPrefetch))]).unwrap_err();
        assert_eq!(err, SweepError::BadTraceIndex { index: 1, traces: 1 });
    }
}
