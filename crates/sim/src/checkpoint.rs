//! Crash-safe sweep checkpointing.
//!
//! A [`CheckpointJournal`] records every completed sweep cell as one JSONL
//! line in `<dir>/journal.jsonl`. Cells are keyed by a deterministic
//! [`cell_fingerprint`] over the trace identity (name, seed, length) and
//! the *complete* [`SimConfig`], so a relaunched run recomputes the same
//! fingerprints, restores every journaled cell without re-simulating it,
//! and re-executes only the missing ones — yielding a bit-identical grid
//! (see `crate::harness`).
//!
//! Durability is write-then-rename: the whole journal is written to a
//! sibling `journal.jsonl.tmp`, fsync'd, and atomically renamed over the
//! live file, so a crash at any instant leaves either the previous journal
//! or the new one — never a torn file. Loading is lenient anyway: a
//! corrupt or truncated line (e.g. from a different filesystem's rename
//! semantics) is skipped, and its cell simply re-runs.
//!
//! Floating-point metrics are encoded as IEEE-754 bit patterns
//! ([`f64::to_bits`]) rather than decimal text, so a resumed cell restores
//! *exactly* the value the original run produced.

use crate::config::{FaultConfig, PolicySpec, SimConfig};
use crate::metrics::SimMetrics;
use prefetch_trace::Trace;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal line-format version; bumped on any encoding change so stale
/// journals are ignored rather than misread.
pub const JOURNAL_VERSION: u64 = 1;

/// Fingerprint-schema version, folded into every fingerprint: bump it when
/// the set of hashed fields changes and every old journal entry silently
/// misses (re-runs) instead of aliasing a different configuration.
const FINGERPRINT_VERSION: u64 = 1;

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// The stable FNV-1a fingerprint hasher, hoisted to `prefetch-hash` so the
/// tree/cache crates can share it; the alias keeps the call sites short.
use prefetch_hash::Fnv64 as Fnv;

fn hash_policy(h: &mut Fnv, policy: &PolicySpec) {
    match *policy {
        PolicySpec::NoPrefetch => h.u64(0),
        PolicySpec::NextLimit => h.u64(1),
        PolicySpec::Tree => h.u64(2),
        PolicySpec::TreeNextLimit => h.u64(3),
        PolicySpec::TreeLvc => h.u64(4),
        PolicySpec::TreeThreshold(t) => {
            h.u64(5);
            h.f64(t);
        }
        PolicySpec::TreeChildren(k) => {
            h.u64(6);
            h.usize(k);
        }
        PolicySpec::PerfectSelector => h.u64(7),
        PolicySpec::TreeReanchor => h.u64(8),
        PolicySpec::PanicProbe { after } => {
            h.u64(9);
            h.u64(after);
        }
    }
}

// `config.profile` is deliberately NOT hashed: profiling measures wall
// clock without touching simulated metrics, so a profiled cell must hit
// the same checkpoint fingerprint as the plain run it restores.
fn hash_config(h: &mut Fnv, config: &SimConfig) {
    h.usize(config.cache_blocks);

    let p = &config.params;
    h.f64(p.t_hit);
    h.f64(p.t_driver);
    h.f64(p.t_disk);
    h.f64(p.t_cpu);

    let e = &config.engine;
    h.u64(u64::from(e.model.x));
    h.f64(e.model.s_alpha);
    h.f64(e.model.s_initial);
    h.u64(u64::from(e.max_depth));
    h.u64(u64::from(e.max_per_period));
    h.u64(u64::from(e.max_considered_per_period));
    h.f64(e.min_probability);
    h.f64(e.stack_decay);
    h.usize(e.node_limit);
    h.bool(e.freeze_at_node_limit);
    h.bool(e.reanchor_after_reset);

    hash_policy(h, &config.policy);

    match &config.disks {
        None => h.u64(0),
        Some(d) => {
            h.u64(1);
            h.usize(d.num_disks);
            h.f64(d.service_ms);
            match d.striping {
                prefetch_disk::Striping::RoundRobin { stripe_unit } => {
                    h.u64(0);
                    h.u64(stripe_unit);
                }
                prefetch_disk::Striping::Hashed => h.u64(1),
            }
        }
    }

    match &config.faults {
        None => h.u64(0),
        Some(FaultConfig { plan, retry }) => {
            h.u64(1);
            h.u64(plan.seed);
            h.f64(plan.transient_error_rate);
            h.f64(plan.slow_episode_rate);
            h.f64(plan.slow_factor);
            h.f64(plan.slow_episode_ms);
            h.f64(plan.unavailable_rate);
            h.f64(plan.unavailable_ms);
            h.u64(u64::from(retry.max_attempts));
            h.f64(retry.backoff_base_ms);
            h.f64(retry.backoff_cap_ms);
            h.f64(retry.give_up_penalty_ms);
        }
    }
}

/// Deterministic identity of one sweep cell, from the trace's identity
/// (name, generator seed, record count) and every field of its config.
/// Stable across runs, platforms, and thread schedules — the journal key.
pub fn cell_fingerprint(trace: &Trace, config: &SimConfig) -> u64 {
    fingerprint_parts(&trace.meta().name, trace.meta().seed, trace.len() as u64, config)
}

/// [`cell_fingerprint`] from the trace's identifying parts, for callers
/// that stream a source instead of holding a materialized [`Trace`].
pub fn fingerprint_parts(name: &str, seed: Option<u64>, records: u64, config: &SimConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(FINGERPRINT_VERSION);
    h.str(name);
    h.opt(seed);
    h.u64(records);
    hash_config(&mut h, config);
    h.finish()
}

// ---------------------------------------------------------------------------
// Metric codec: positional u64 words, floats as IEEE-754 bits
// ---------------------------------------------------------------------------

/// Number of [`SimMetrics`] fields; a journal entry whose metric array has
/// a different length was written by a different `SimMetrics` layout and
/// is ignored (the cell re-runs).
const METRIC_WORDS: usize = 28;

fn metrics_to_words(m: &SimMetrics) -> [u64; METRIC_WORDS] {
    [
        m.refs,
        m.demand_hits,
        m.prefetch_hits,
        m.misses,
        m.prefetches_issued,
        m.candidates_considered,
        m.candidates_already_cached,
        m.prefetch_evictions,
        m.demand_evictions_for_prefetch,
        m.prefetch_probability_sum.to_bits(),
        m.predictable,
        m.predictable_missed,
        m.lvc_opportunities,
        m.lvc_repeats,
        m.lvc_cached,
        m.elapsed_ms.to_bits(),
        m.stall_ms.to_bits(),
        m.disk_queue_ms.to_bits(),
        m.disk_queued_requests,
        m.disk_mean_utilization.to_bits(),
        m.demand_faults,
        m.demand_retries,
        m.demand_read_failures,
        m.retry_backoff_ms.to_bits(),
        m.prefetch_faults,
        m.blocks_quarantined,
        m.candidates_quarantined,
        m.disk_slowed_requests,
    ]
}

fn metrics_from_words(words: &[u64]) -> Option<SimMetrics> {
    if words.len() != METRIC_WORDS {
        return None;
    }
    Some(SimMetrics {
        refs: words[0],
        demand_hits: words[1],
        prefetch_hits: words[2],
        misses: words[3],
        prefetches_issued: words[4],
        candidates_considered: words[5],
        candidates_already_cached: words[6],
        prefetch_evictions: words[7],
        demand_evictions_for_prefetch: words[8],
        prefetch_probability_sum: f64::from_bits(words[9]),
        predictable: words[10],
        predictable_missed: words[11],
        lvc_opportunities: words[12],
        lvc_repeats: words[13],
        lvc_cached: words[14],
        elapsed_ms: f64::from_bits(words[15]),
        stall_ms: f64::from_bits(words[16]),
        disk_queue_ms: f64::from_bits(words[17]),
        disk_queued_requests: words[18],
        disk_mean_utilization: f64::from_bits(words[19]),
        demand_faults: words[20],
        demand_retries: words[21],
        demand_read_failures: words[22],
        retry_backoff_ms: f64::from_bits(words[23]),
        prefetch_faults: words[24],
        blocks_quarantined: words[25],
        candidates_quarantined: words[26],
        disk_slowed_requests: words[27],
    })
}

// ---------------------------------------------------------------------------
// JSONL codec (hand-rolled: the vendored serde stubs are inert)
// ---------------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// `"key":` position *of the key itself* (first occurrence; every numeric
/// key precedes the only free-form string, the trailing trace name, so the
/// first occurrence is always the real key).
fn field_start<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(&line[at + needle.len()..])
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let rest = field_start(line, key)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let rest = field_start(line, key)?.strip_prefix('"')?;
    // Scan to the closing quote, honouring escapes.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    unescape_json(&rest[..end?])
}

fn u64_array_field(line: &str, key: &str) -> Option<Vec<u64>> {
    let rest = field_start(line, key)?.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|n| n.trim().parse().ok()).collect()
}

// ---------------------------------------------------------------------------
// Journal entries
// ---------------------------------------------------------------------------

/// One journaled cell: everything needed to reconstruct its
/// [`crate::runner::SimResult`] besides the config (which the resuming run
/// recomputes and verifies via the fingerprint).
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Trace name, for human inspection of the journal.
    pub trace: String,
    /// Malformed records the trace reader skipped during the original run.
    pub skipped_records: u64,
    /// The run's full metrics, bit-exact.
    pub metrics: SimMetrics,
}

fn entry_to_line(fingerprint: u64, entry: &JournalEntry) -> String {
    let words = metrics_to_words(&entry.metrics);
    let mut m = String::with_capacity(words.len() * 8);
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            m.push(',');
        }
        m.push_str(&w.to_string());
    }
    format!(
        "{{\"v\":{JOURNAL_VERSION},\"fp\":\"{fingerprint:016x}\",\"skipped\":{},\"m\":[{m}],\"trace\":\"{}\"}}",
        entry.skipped_records,
        escape_json(&entry.trace),
    )
}

fn entry_from_line(line: &str) -> Option<(u64, JournalEntry)> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    if u64_field(line, "v")? != JOURNAL_VERSION {
        return None;
    }
    let fingerprint = u64::from_str_radix(&str_field(line, "fp")?, 16).ok()?;
    let skipped_records = u64_field(line, "skipped")?;
    let metrics = metrics_from_words(&u64_array_field(line, "m")?)?;
    let trace = str_field(line, "trace")?;
    Some((fingerprint, JournalEntry { trace, skipped_records, metrics }))
}

// ---------------------------------------------------------------------------
// The journal
// ---------------------------------------------------------------------------

/// A checkpoint I/O failure. Carries the path and a rendered cause; the
/// harness treats it as degradation (run without checkpointing), never as
/// a reason to lose simulation work.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointError {
    /// The file or directory the operation touched.
    pub path: PathBuf,
    /// Rendered I/O error.
    pub message: String,
}

impl CheckpointError {
    fn new(path: &Path, err: &std::io::Error) -> Self {
        CheckpointError { path: path.to_path_buf(), message: err.to_string() }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint journal {}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for CheckpointError {}

#[derive(Debug, Default)]
struct JournalState {
    /// Fingerprint → entry, for O(1) resume lookups.
    entries: HashMap<u64, JournalEntry>,
    /// Every well-formed line, keyed by fingerprint. A flush writes these
    /// sorted by fingerprint, so the file bytes depend only on *which*
    /// cells completed — never on the thread schedule that completed them.
    lines: Vec<(u64, String)>,
    /// Records appended since the last durable flush.
    dirty: usize,
}

/// Crash-safe journal of completed sweep cells (see the module docs).
///
/// Thread-safe: `record`/`lookup` take `&self` so rayon workers can share
/// one journal.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    tmp_path: PathBuf,
    flush_every: usize,
    state: Mutex<JournalState>,
}

impl CheckpointJournal {
    /// Open (creating `dir` if needed) the journal at
    /// `dir/`[`JOURNAL_FILE`], loading any entries a previous run left
    /// behind. Corrupt or torn lines are dropped silently — their cells
    /// re-run. A durable flush happens automatically every `flush_every`
    /// records (and on [`CheckpointJournal::flush`]).
    pub fn open(dir: &Path, flush_every: usize) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| CheckpointError::new(dir, &e))?;
        let path = dir.join(JOURNAL_FILE);
        let mut state = JournalState::default();
        match fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    if let Some((fp, entry)) = entry_from_line(line) {
                        // Last write wins, but keep one line per fingerprint.
                        if state.entries.insert(fp, entry).is_none() {
                            state.lines.push((fp, line.to_string()));
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(CheckpointError::new(&path, &e)),
        }
        let tmp_path = dir.join(format!("{JOURNAL_FILE}.tmp"));
        Ok(CheckpointJournal {
            path,
            tmp_path,
            flush_every: flush_every.max(1),
            state: Mutex::new(state),
        })
    }

    /// Number of entries restored from disk at open time.
    pub fn loaded(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// The journal file this journal persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The entry for `fingerprint`, if a previous (or this) run completed
    /// that cell.
    pub fn lookup(&self, fingerprint: u64) -> Option<JournalEntry> {
        self.state.lock().unwrap().entries.get(&fingerprint).cloned()
    }

    /// Record a completed cell; durably flushed at the configured cadence.
    pub fn record(&self, fingerprint: u64, entry: JournalEntry) -> Result<(), CheckpointError> {
        let flush_now = {
            let mut state = self.state.lock().unwrap();
            if state.entries.insert(fingerprint, entry.clone()).is_none() {
                state.lines.push((fingerprint, entry_to_line(fingerprint, &entry)));
                state.dirty += 1;
            }
            state.dirty >= self.flush_every
        };
        if flush_now {
            self.flush()?;
        }
        Ok(())
    }

    /// Durably persist every recorded entry: write the full journal to a
    /// temporary sibling, fsync it, and atomically rename it over the live
    /// file ([`prefetch_wal::atomic::replace_file`], the same discipline
    /// the WAL checkpoints use), so a crash mid-flush can never tear the
    /// journal.
    pub fn flush(&self) -> Result<(), CheckpointError> {
        let text = {
            let mut state = self.state.lock().unwrap();
            if state.dirty == 0 {
                return Ok(());
            }
            state.dirty = 0;
            // Fingerprint order makes the file bytes schedule-independent:
            // an N-thread sweep and a sequential one flush identical files.
            state.lines.sort_unstable_by_key(|&(fp, _)| fp);
            let mut text = String::new();
            for (_, line) in &state.lines {
                text.push_str(line);
                text.push('\n');
            }
            text
        };
        prefetch_wal::atomic::replace_file(&self.tmp_path, &self.path, text.as_bytes())
            .map_err(|e| CheckpointError::new(&self.path, &e))
    }
}

impl Drop for CheckpointJournal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_trace::synth::TraceKind;

    fn sample_metrics() -> SimMetrics {
        SimMetrics {
            refs: 100,
            demand_hits: 50,
            prefetch_hits: 20,
            misses: 30,
            prefetches_issued: 40,
            prefetch_probability_sum: 0.1 + 0.2, // deliberately non-representable
            elapsed_ms: 1234.567,
            stall_ms: 89.0125,
            ..SimMetrics::default()
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prefetch-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let trace = TraceKind::Cad.generate(500, 7);
        let cfg = SimConfig::new(64, PolicySpec::Tree);
        let fp = cell_fingerprint(&trace, &cfg);
        assert_eq!(fp, cell_fingerprint(&trace, &cfg), "not deterministic");

        // Every identity component must matter.
        assert_ne!(fp, cell_fingerprint(&trace, &SimConfig::new(65, PolicySpec::Tree)));
        assert_ne!(fp, cell_fingerprint(&trace, &SimConfig::new(64, PolicySpec::TreeLvc)));
        assert_ne!(fp, cell_fingerprint(&trace, &cfg.with_t_cpu(51.0)));
        assert_ne!(fp, cell_fingerprint(&trace, &cfg.with_node_limit(10)));
        assert_ne!(fp, cell_fingerprint(&trace, &cfg.with_disks(4)));
        assert_ne!(fp, cell_fingerprint(&trace, &cfg.with_disks(4).with_fault_rate(1, 0.1)));
        let mut frozen = cfg.with_node_limit(10);
        frozen.engine.freeze_at_node_limit = true;
        assert_ne!(
            cell_fingerprint(&trace, &cfg.with_node_limit(10)),
            cell_fingerprint(&trace, &frozen)
        );

        let other = TraceKind::Cad.generate(501, 7);
        assert_ne!(fp, cell_fingerprint(&other, &cfg), "trace length ignored");
        let reseeded = TraceKind::Cad.generate(500, 8);
        assert_ne!(fp, cell_fingerprint(&reseeded, &cfg), "trace seed ignored");
    }

    #[test]
    fn parameterized_policies_hash_their_parameter() {
        let trace = TraceKind::Sitar.generate(100, 1);
        let a = cell_fingerprint(&trace, &SimConfig::new(64, PolicySpec::TreeThreshold(0.05)));
        let b = cell_fingerprint(&trace, &SimConfig::new(64, PolicySpec::TreeThreshold(0.06)));
        assert_ne!(a, b);
        let a = cell_fingerprint(&trace, &SimConfig::new(64, PolicySpec::TreeChildren(2)));
        let b = cell_fingerprint(&trace, &SimConfig::new(64, PolicySpec::TreeChildren(3)));
        assert_ne!(a, b);
    }

    #[test]
    fn entry_round_trips_bit_exactly_through_the_line_codec() {
        let entry = JournalEntry {
            trace: "weird \"name\"\\with\nescapes".into(),
            skipped_records: 17,
            metrics: sample_metrics(),
        };
        let line = entry_to_line(0xdead_beef_0bad_f00d, &entry);
        let (fp, back) = entry_from_line(&line).expect("round trip");
        assert_eq!(fp, 0xdead_beef_0bad_f00d);
        assert_eq!(back, entry);
        // Bit-exactness of the floats, not approximate equality.
        assert_eq!(
            back.metrics.prefetch_probability_sum.to_bits(),
            entry.metrics.prefetch_probability_sum.to_bits()
        );
    }

    #[test]
    fn corrupt_lines_are_rejected_not_misread() {
        let entry =
            JournalEntry { trace: "cad".into(), skipped_records: 0, metrics: sample_metrics() };
        let line = entry_to_line(42, &entry);
        assert!(entry_from_line("").is_none());
        assert!(entry_from_line("not json").is_none());
        assert!(entry_from_line(&line[..line.len() / 2]).is_none(), "torn line accepted");
        let wrong_version = line.replacen("\"v\":1", "\"v\":999", 1);
        assert!(entry_from_line(&wrong_version).is_none());
        // A metric array of the wrong arity means a different layout.
        let short = line.replacen(",\"m\":[", ",\"m\":[1,2,3],\"old\":[", 1);
        assert!(entry_from_line(&short).is_none());
    }

    #[test]
    fn journal_persists_and_reloads_across_instances() {
        let dir = tmp_dir("reload");
        let entry =
            JournalEntry { trace: "cad".into(), skipped_records: 3, metrics: sample_metrics() };
        {
            let j = CheckpointJournal::open(&dir, 100).unwrap();
            assert_eq!(j.loaded(), 0);
            j.record(1, entry.clone()).unwrap();
            j.record(2, JournalEntry { trace: "snake".into(), ..entry.clone() }).unwrap();
            j.flush().unwrap();
        }
        let j = CheckpointJournal::open(&dir, 100).unwrap();
        assert_eq!(j.loaded(), 2);
        assert_eq!(j.lookup(1), Some(entry));
        assert_eq!(j.lookup(2).unwrap().trace, "snake");
        assert_eq!(j.lookup(3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_flush_hits_disk_without_an_explicit_flush() {
        let dir = tmp_dir("periodic");
        let entry =
            JournalEntry { trace: "cad".into(), skipped_records: 0, metrics: sample_metrics() };
        let j = CheckpointJournal::open(&dir, 2).unwrap();
        j.record(1, entry.clone()).unwrap();
        j.record(2, entry.clone()).unwrap(); // second record crosses flush_every=2
        let on_disk = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(on_disk.lines().count(), 2);
        drop(j);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_the_rest_survive() {
        let dir = tmp_dir("torn");
        let entry =
            JournalEntry { trace: "cad".into(), skipped_records: 0, metrics: sample_metrics() };
        {
            let j = CheckpointJournal::open(&dir, 100).unwrap();
            j.record(1, entry.clone()).unwrap();
            j.record(2, entry.clone()).unwrap();
            j.flush().unwrap();
        }
        // Simulate a crash that tore the last line in half.
        let path = dir.join(JOURNAL_FILE);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 30]).unwrap();

        let j = CheckpointJournal::open(&dir, 100).unwrap();
        assert_eq!(j.loaded(), 1, "torn journal should keep exactly the intact lines");
        assert_eq!(j.lookup(1), Some(entry));
        assert_eq!(j.lookup(2), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_fingerprints_keep_one_line() {
        let dir = tmp_dir("dup");
        let entry =
            JournalEntry { trace: "cad".into(), skipped_records: 0, metrics: sample_metrics() };
        let j = CheckpointJournal::open(&dir, 1).unwrap();
        j.record(7, entry.clone()).unwrap();
        j.record(7, entry).unwrap();
        let on_disk = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(on_disk.lines().count(), 1);
        drop(j);
        let _ = fs::remove_dir_all(&dir);
    }
}
