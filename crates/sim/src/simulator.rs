//! The decomposed simulation core.
//!
//! [`Simulator`] composes a [`VirtualClock`] (time and period starts), an
//! [`IoSubsystem`] (disk pricing, faults, retries) and a policy-driven
//! cache, advancing one access period per [`Simulator::step`] and
//! narrating everything through [`SimObserver`] events. It consumes
//! records one at a time, so driving it from a streaming
//! [`TraceSource`] gives paper-scale runs (the original cello trace is
//! 3.5 M references) in memory independent of trace length; a one-record
//! lookahead buffer preserves the `RefContext::next_block` oracle input
//! exactly as the materialized path provides it.

use crate::clock::VirtualClock;
use crate::config::SimConfig;
use crate::io_subsystem::IoSubsystem;
use crate::observer::{SimEvent, SimObserver};
use prefetch_cache::buffer_cache::RefOutcome;
use prefetch_cache::BufferCache;
use prefetch_core::policy::{apply_victim, PeriodActivity, PrefetchPolicy, RefContext, RefKind};
use prefetch_telemetry::{Phase, PhaseTimer, PhaseTimes};
use prefetch_trace::io::TraceIoError;
use prefetch_trace::{BlockId, TraceRecord, TraceSource};

/// One simulation run in progress: feed it records with
/// [`Simulator::step`], then [`Simulator::finish`].
pub struct Simulator {
    config: SimConfig,
    policy: Box<dyn PrefetchPolicy>,
    cache: BufferCache,
    clock: VirtualClock,
    io: IoSubsystem,
    period: u64,
    act: PeriodActivity,
    faulted: Vec<BlockId>,
    /// Simulator-side phase probes (cache ops, I/O submission); the
    /// policy's engine keeps its own timer for the predictor phases.
    timer: PhaseTimer,
}

impl Simulator {
    /// Set up a run under `config`.
    ///
    /// # Panics
    /// Panics on an invalid configuration; front ends must run
    /// [`SimConfig::validate`] first.
    pub fn new(config: &SimConfig) -> Self {
        let mut policy = config.policy.build(config.params, config.engine);
        if config.profile {
            policy.enable_profiling();
        }
        Simulator {
            policy,
            cache: BufferCache::new(config.cache_blocks),
            clock: VirtualClock::for_run(config.cache_blocks, config.engine.max_per_period),
            io: IoSubsystem::from_config(config),
            period: 0,
            act: PeriodActivity::default(),
            faulted: Vec::new(),
            timer: PhaseTimer::new(config.profile),
            config: *config,
        }
    }

    /// Access periods completed so far.
    pub fn periods(&self) -> u64 {
        self.period
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The policy's prefetch tree, if the configured policy keeps one
    /// (`--save-tree` snapshots it at end of run).
    pub fn tree(&self) -> Option<&prefetch_tree::PrefetchTree> {
        self.policy.tree()
    }

    /// Warm-start the policy from a restored `pftree-snap/v1` tree before
    /// the first step. Returns `false` (dropping the tree) when the
    /// configured policy keeps no tree.
    pub fn install_tree(&mut self, tree: prefetch_tree::PrefetchTree) -> bool {
        self.policy.install_tree(tree)
    }

    /// The policy's predicted-vs-realized calibration accumulators, if the
    /// configured policy tracks them (the cost-benefit engine does).
    pub fn calibration(&self) -> Option<&prefetch_core::CalibrationTracker> {
        self.policy.calibration()
    }

    /// Process one reference: serve it from the cache (demand hits touch,
    /// prefetch hits migrate — Figure 2), demand-fetch on a miss with a
    /// policy-chosen victim, hand the completed reference to the policy,
    /// and queue its prefetches (Section 7). `next_block` is the
    /// one-reference lookahead consumed by the `PerfectSelector` oracle.
    pub fn step<O: SimObserver + ?Sized>(
        &mut self,
        rec: TraceRecord,
        next_block: Option<BlockId>,
        obs: &mut O,
    ) {
        let period = self.period;
        self.clock.begin_period(period);
        let p = &self.config.params;

        let mut evicted_prefetch = false;
        let tok = self.timer.begin();
        let outcome = self.cache.reference(rec.block);
        self.timer.end(Phase::CacheOps, tok);
        let (kind, stall_ms) = match outcome {
            RefOutcome::DemandHit => (RefKind::DemandHit, 0.0),
            RefOutcome::PrefetchHit(meta) => {
                // Stall for whatever part of the prefetch I/O has not yet
                // completed (Figure 5, access period 3).
                let stall = self.io.prefetch_hit_stall(rec.block, meta.issued_at, &self.clock, p);
                (RefKind::PrefetchHit, stall)
            }
            RefOutcome::Miss => {
                if self.cache.is_full() {
                    // Victim *choice* is the policy's cost-benefit work
                    // (charged by its own timer); applying it is ours.
                    let victim = self.policy.choose_demand_victim(&self.cache);
                    let tok = self.timer.begin();
                    if apply_victim(victim, &mut self.cache) {
                        evicted_prefetch = true;
                    }
                    self.timer.end(Phase::CacheOps, tok);
                }
                let tok = self.timer.begin();
                self.cache.insert_demand(rec.block);
                self.timer.end(Phase::CacheOps, tok);
                let tok = self.timer.begin();
                let fetch = self
                    .io
                    .demand_fetch(rec.block, period, &self.clock, p, &mut |e| obs.on_event(&e));
                self.timer.end(Phase::IoSubmission, tok);
                if fetch.read_succeeded && self.io.faults_active() {
                    self.policy.note_read_success(rec.block);
                }
                (RefKind::Miss, fetch.stall_ms)
            }
        };
        self.clock.advance(stall_ms);
        obs.on_event(&SimEvent::Reference {
            period,
            record: rec,
            kind,
            stall_ms,
            evicted_prefetch,
        });

        // Let engine-backed policies realize the calibration counterparts
        // of their earlier predictions before the next prefetch round.
        self.policy.observe_served(rec.block, kind, stall_ms);

        let ctx = RefContext { block: rec.block, kind, next_block, period };
        // Reuse the block-list allocation across periods.
        let mut blocks = std::mem::take(&mut self.act.prefetched_blocks);
        blocks.clear();
        self.act = PeriodActivity { prefetched_blocks: blocks, ..PeriodActivity::default() };
        self.policy.after_reference(&ctx, &mut self.cache, &mut self.act);
        obs.on_event(&SimEvent::Period { period, kind, activity: &self.act });

        // Queue this period's prefetch I/O. A faulted prefetch is treated
        // as a priced mispredict: the buffer is released immediately (no
        // retries compete with demand traffic), the initiation overhead
        // stays charged via `prefetches_issued`, and repeat offenders are
        // quarantined by the policy so the Section 7 loop stops
        // re-issuing them.
        self.faulted.clear();
        let tok = self.timer.begin();
        self.io.submit_prefetches(
            &self.act.prefetched_blocks,
            period,
            self.clock.now(),
            p.t_driver,
            &mut self.faulted,
            &mut |e| obs.on_event(&e),
        );
        self.timer.end(Phase::IoSubmission, tok);
        for i in 0..self.faulted.len() {
            let b = self.faulted[i];
            self.cache.cancel_prefetch(b);
            let quarantined = self.policy.note_prefetch_fault(b);
            obs.on_event(&SimEvent::PrefetchFault { period, block: b, quarantined });
        }

        // Advance the virtual clock by the period's foreground work
        // (Figure 3): the cache read, the prefetch initiations, and the
        // computation until the next request.
        self.clock.advance(p.t_hit + self.act.prefetches_issued as f64 * p.t_driver + p.t_cpu);

        debug_assert!(self.cache.len() <= self.cache.capacity());
        self.period += 1;
    }

    /// End the run: emits [`SimEvent::End`] with the elapsed virtual time
    /// and the disk summary, and returns the per-phase profile (all zero
    /// unless the config enabled profiling).
    pub fn finish<O: SimObserver + ?Sized>(self, obs: &mut O) -> PhaseTimes {
        obs.on_event(&SimEvent::End { elapsed_ms: self.clock.now(), disk: self.io.summary() });
        let mut times = self.timer.times();
        times.merge(&self.policy.phase_times());
        times
    }

    /// Drive a whole [`TraceSource`] through a run, narrating to `obs`;
    /// returns the per-phase profile (zero without `config.profile`).
    /// Buffers exactly one record of lookahead (for the oracle's
    /// `next_block`); memory use is the source's, independent of length.
    pub fn run<S, O>(
        source: &mut S,
        config: &SimConfig,
        obs: &mut O,
    ) -> Result<PhaseTimes, TraceIoError>
    where
        S: TraceSource,
        O: SimObserver + ?Sized,
    {
        let mut sim = Simulator::new(config);
        let mut pending = source.next_record()?;
        while let Some(rec) = pending {
            let next = source.next_record()?;
            sim.step(rec, next.map(|r| r.block), obs);
            pending = next;
        }
        Ok(sim.finish(obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use crate::metrics::SimMetrics;
    use crate::observer::NullObserver;
    use prefetch_trace::synth::TraceKind;

    #[test]
    fn step_by_step_matches_the_batch_driver() {
        let trace = TraceKind::Snake.generate(3000, 5);
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let batch = crate::runner::run_simulation(&trace, &cfg);

        let mut metrics = SimMetrics::default();
        let mut sim = Simulator::new(&cfg);
        let records = trace.records();
        for (i, rec) in records.iter().enumerate() {
            sim.step(*rec, records.get(i + 1).map(|r| r.block), &mut metrics);
        }
        assert_eq!(sim.periods(), 3000);
        sim.finish(&mut metrics);
        metrics.check_invariants();
        assert_eq!(metrics, batch.metrics);
    }

    #[test]
    fn null_observer_runs_the_same_simulation() {
        let trace = TraceKind::Cad.generate(2000, 3);
        let cfg = SimConfig::new(256, PolicySpec::Tree).with_disks(2).with_fault_rate(7, 0.1);
        cfg.validate().unwrap();
        let mut source = trace.source();
        Simulator::run(&mut source, &cfg, &mut NullObserver).unwrap();
    }

    #[test]
    fn profiling_reports_phases_without_changing_metrics() {
        let trace = TraceKind::Snake.generate(2000, 5);
        let plain = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let profiled = SimConfig { profile: true, ..plain };
        let mut m1 = SimMetrics::default();
        let mut m2 = SimMetrics::default();
        let t1 = Simulator::run(&mut trace.source(), &plain, &mut m1).unwrap();
        let t2 = Simulator::run(&mut trace.source(), &profiled, &mut m2).unwrap();
        assert_eq!(m1, m2, "profiling must not perturb simulated metrics");
        assert!(t1.is_zero(), "NullTelemetry path must not accumulate time");
        assert!(!t2.is_zero(), "profiled run must report phase times");
        assert!(t2.get(prefetch_telemetry::Phase::TreeUpdate) > 0);
        assert!(t2.get(prefetch_telemetry::Phase::CacheOps) > 0);
    }

    #[test]
    fn observer_pair_sees_identical_streams() {
        let trace = TraceKind::Sitar.generate(2000, 8);
        let cfg = SimConfig::new(128, PolicySpec::NextLimit);
        let mut pair = (SimMetrics::default(), SimMetrics::default());
        let mut source = trace.source();
        Simulator::run(&mut source, &cfg, &mut pair).unwrap();
        assert_eq!(pair.0, pair.1);
        assert_eq!(pair.0.refs, 2000);
    }
}
