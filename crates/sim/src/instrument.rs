//! Telemetry observers: distribution-aware instrumentation over the
//! [`crate::observer::SimEvent`] stream.
//!
//! The paper's results are distributional (stall behavior across traces
//! and policies), yet [`crate::SimMetrics`] only keeps scalar totals.
//! These observers fold the same event stream into
//! [`prefetch_telemetry::Histogram`]s — per-reference stall, demand-fetch
//! latency, disk queue delay, prefetch depth — and, for offline analysis,
//! [`JsonlEventSink`] streams every event as one JSON object per line.
//! All of them compose with the metrics observer through the tuple
//! fan-out impls, so one pass over the trace feeds everything.
//!
//! Latencies are recorded in **integer microseconds** (virtual-time
//! milliseconds × 1000, rounded): sub-millisecond stalls like `t_hit`
//! stay resolvable while the histogram's 6.25% relative quantization
//! holds at every magnitude.

use crate::observer::{SimEvent, SimObserver};
use prefetch_core::policy::RefKind;
use prefetch_telemetry::Histogram;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Virtual-time milliseconds → integer microseconds (clamped at zero).
#[inline]
pub fn ms_to_us(ms: f64) -> u64 {
    (ms * 1000.0).round().max(0.0) as u64
}

/// Stall and prefetch-depth distributions of one run.
///
/// * `stall_us` — the stall absorbed by **every** reference (hits record
///   0 µs, so quantiles are over the full reference stream);
/// * `demand_fetch_us` — the demand-fetch latency of miss-path
///   references only (queueing, retries, and give-up penalties included);
/// * `prefetch_depth` — prefetches issued per *prefetching* access
///   period (periods that issued none are excluded, so the median
///   describes burst size rather than collapsing to zero).
#[derive(Clone, Debug, Default)]
pub struct StallHistogramObserver {
    /// Per-reference stall (µs), all references.
    pub stall_us: Histogram,
    /// Demand-fetch latency (µs), misses only.
    pub demand_fetch_us: Histogram,
    /// Prefetches issued per prefetching period.
    pub prefetch_depth: Histogram,
}

impl StallHistogramObserver {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimObserver for StallHistogramObserver {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match *event {
            SimEvent::Reference { kind, stall_ms, .. } => {
                self.stall_us.record(ms_to_us(stall_ms));
                if kind == RefKind::Miss {
                    self.demand_fetch_us.record(ms_to_us(stall_ms));
                }
            }
            SimEvent::Period { activity, .. } if activity.prefetches_issued > 0 => {
                self.prefetch_depth.record(u64::from(activity.prefetches_issued));
            }
            _ => {}
        }
    }
}

/// Disk queue-delay distributions, split by read purpose. Built from
/// [`SimEvent::DiskRead`], which the infinite disk also emits (with zero
/// queueing), so the observer works on every configuration.
#[derive(Clone, Debug, Default)]
pub struct QueueDelayObserver {
    /// Queue delay of demand reads (µs).
    pub demand_queue_us: Histogram,
    /// Queue delay of prefetch reads (µs).
    pub prefetch_queue_us: Histogram,
}

impl QueueDelayObserver {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimObserver for QueueDelayObserver {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        if let SimEvent::DiskRead { prefetch, queue_ms, .. } = *event {
            if prefetch {
                self.prefetch_queue_us.record(ms_to_us(queue_ms));
            } else {
                self.demand_queue_us.record(ms_to_us(queue_ms));
            }
        }
    }
}

/// Streams every [`SimEvent`] as one JSON object per line (hand-rolled:
/// the vendored serde derives are inert). Write errors are captured on
/// first occurrence and surfaced by [`JsonlEventSink::finish`]; the
/// simulation itself never aborts over a full disk.
pub struct JsonlEventSink {
    writer: BufWriter<File>,
    error: Option<io::Error>,
}

impl JsonlEventSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlEventSink { writer: BufWriter::new(File::create(path)?), error: None })
    }

    /// Flush and report the first write error, if any.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }
}

fn kind_name(kind: RefKind) -> &'static str {
    match kind {
        RefKind::DemandHit => "demand_hit",
        RefKind::PrefetchHit => "prefetch_hit",
        RefKind::Miss => "miss",
    }
}

impl SimObserver for JsonlEventSink {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        let line = match *event {
            SimEvent::Reference { period, record, kind, stall_ms, evicted_prefetch } => format!(
                "{{\"type\":\"reference\",\"period\":{period},\"block\":{},\"kind\":\"{}\",\
                 \"stall_ms\":{stall_ms},\"evicted_prefetch\":{evicted_prefetch}}}",
                record.block.0,
                kind_name(kind),
            ),
            SimEvent::DemandFault { period, block, attempt, retried, backoff_ms } => format!(
                "{{\"type\":\"demand_fault\",\"period\":{period},\"block\":{},\
                 \"attempt\":{attempt},\"retried\":{retried},\"backoff_ms\":{backoff_ms}}}",
                block.0,
            ),
            SimEvent::DemandGiveUp { period, block, penalty_ms } => format!(
                "{{\"type\":\"demand_give_up\",\"period\":{period},\"block\":{},\
                 \"penalty_ms\":{penalty_ms}}}",
                block.0,
            ),
            SimEvent::DiskRead { period, block, prefetch, queue_ms } => format!(
                "{{\"type\":\"disk_read\",\"period\":{period},\"block\":{},\
                 \"prefetch\":{prefetch},\"queue_ms\":{queue_ms}}}",
                block.0,
            ),
            SimEvent::PrefetchFault { period, block, quarantined } => format!(
                "{{\"type\":\"prefetch_fault\",\"period\":{period},\"block\":{},\
                 \"quarantined\":{quarantined}}}",
                block.0,
            ),
            SimEvent::Period { period, kind, activity } => format!(
                "{{\"type\":\"period\",\"period\":{period},\"kind\":\"{}\",\
                 \"prefetches_issued\":{},\"candidates_considered\":{},\
                 \"prefetch_evictions\":{},\"predictable\":{}}}",
                kind_name(kind),
                activity.prefetches_issued,
                activity.candidates_considered,
                activity.prefetch_evictions,
                activity.predictable,
            ),
            SimEvent::End { elapsed_ms, disk } => match disk {
                Some(d) => format!(
                    "{{\"type\":\"end\",\"elapsed_ms\":{elapsed_ms},\"disk_queue_ms\":{},\
                     \"disk_queued_requests\":{}}}",
                    d.queue_ms, d.queued_requests,
                ),
                None => format!("{{\"type\":\"end\",\"elapsed_ms\":{elapsed_ms}}}"),
            },
        };
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicySpec, SimConfig};
    use crate::metrics::SimMetrics;
    use crate::simulator::Simulator;
    use prefetch_trace::synth::TraceKind;

    fn run_instrumented(
        cfg: &SimConfig,
    ) -> (SimMetrics, StallHistogramObserver, QueueDelayObserver) {
        let trace = TraceKind::Snake.generate(3000, 5);
        let mut obs =
            (SimMetrics::default(), StallHistogramObserver::new(), QueueDelayObserver::new());
        Simulator::run(&mut trace.source(), cfg, &mut obs).unwrap();
        (obs.0, obs.1, obs.2)
    }

    #[test]
    fn stall_histogram_covers_every_reference() {
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let (metrics, stalls, _) = run_instrumented(&cfg);
        assert_eq!(stalls.stall_us.count(), metrics.refs);
        assert_eq!(stalls.demand_fetch_us.count(), metrics.misses);
        // Sum of recorded stalls (µs) tracks the scalar total (ms) within
        // rounding: one reference rounds by at most half a microsecond.
        let sum_ms = stalls.stall_us.sum() / 1000.0;
        assert!(
            (sum_ms - metrics.stall_ms).abs() <= 0.0005 * metrics.refs as f64,
            "histogram sum {sum_ms} vs scalar {}",
            metrics.stall_ms
        );
        assert!(stalls.stall_us.p99() >= stalls.stall_us.p50());
    }

    #[test]
    fn prefetch_depth_counts_only_prefetching_periods() {
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let (metrics, stalls, _) = run_instrumented(&cfg);
        assert!(stalls.prefetch_depth.count() > 0, "snake under tree-next-limit prefetches");
        assert!(stalls.prefetch_depth.count() <= metrics.refs);
        assert!(stalls.prefetch_depth.min() >= 1, "zero-prefetch periods are excluded");
        assert_eq!(stalls.prefetch_depth.sum() as u64, metrics.prefetches_issued);
    }

    #[test]
    fn queue_delay_observer_counts_every_disk_read() {
        // Finite 1-disk array on the CAD trace: prefetch bursts contend
        // for the single disk, so some delays are nonzero.
        let trace = TraceKind::Cad.generate(3000, 5);
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit).with_disks(1);
        let mut obs =
            (SimMetrics::default(), StallHistogramObserver::new(), QueueDelayObserver::new());
        Simulator::run(&mut trace.source(), &cfg, &mut obs).unwrap();
        let (metrics, _, queues) = (obs.0, obs.1, obs.2);
        assert_eq!(queues.demand_queue_us.count(), metrics.misses);
        assert!(queues.prefetch_queue_us.count() > 0);
        assert!(metrics.disk_queued_requests > 0, "CAD on one disk must queue");
        assert!(
            queues.demand_queue_us.max() > 0 || queues.prefetch_queue_us.max() > 0,
            "queueing must show up in the delay histograms"
        );

        // Infinite disk: same counts, all delays zero.
        let cfg = SimConfig::new(128, PolicySpec::TreeNextLimit);
        let (metrics, _, queues) = run_instrumented(&cfg);
        assert_eq!(queues.demand_queue_us.count(), metrics.misses);
        assert_eq!(queues.demand_queue_us.max(), 0);
        assert_eq!(queues.prefetch_queue_us.max(), 0);
    }

    #[test]
    fn instrumentation_does_not_perturb_metrics() {
        let trace = TraceKind::Cad.generate(3000, 7);
        let cfg = SimConfig::new(256, PolicySpec::Tree).with_disks(2).with_fault_rate(3, 0.05);
        cfg.validate().unwrap();
        let mut plain = SimMetrics::default();
        Simulator::run(&mut trace.source(), &cfg, &mut plain).unwrap();
        let mut fat = (
            SimMetrics::default(),
            StallHistogramObserver::new(),
            QueueDelayObserver::new(),
            SimMetrics::default(),
        );
        Simulator::run(&mut trace.source(), &cfg, &mut fat).unwrap();
        assert_eq!(plain, fat.0);
        assert_eq!(plain, fat.3, "fan-out order must not affect folding");
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("pf-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let trace = TraceKind::Snake.generate(500, 3);
        let cfg = SimConfig::new(64, PolicySpec::TreeNextLimit).with_disks(2);
        let mut obs = (SimMetrics::default(), JsonlEventSink::create(&path).unwrap());
        Simulator::run(&mut trace.source(), &cfg, &mut obs).unwrap();
        let (metrics, sink) = obs;
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        let refs = lines.iter().filter(|l| l.contains("\"type\":\"reference\"")).count();
        assert_eq!(refs as u64, metrics.refs);
        let ends = lines.iter().filter(|l| l.contains("\"type\":\"end\"")).count();
        assert_eq!(ends, 1);
        let reads = lines.iter().filter(|l| l.contains("\"type\":\"disk_read\"")).count();
        assert!(reads > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fan_out_order_matches_emission_order() {
        // Satellite check: a tuple observer delivers each event to every
        // member before the next event arrives, and the per-member stream
        // follows the documented emission order (faults → DiskRead →
        // Reference → Period → prefetch DiskReads/faults → End).
        #[derive(Default)]
        struct Recorder {
            tags: Vec<&'static str>,
        }
        impl SimObserver for Recorder {
            fn on_event(&mut self, event: &SimEvent<'_>) {
                self.tags.push(match event {
                    SimEvent::Reference { .. } => "ref",
                    SimEvent::DemandFault { .. } => "dfault",
                    SimEvent::DemandGiveUp { .. } => "giveup",
                    SimEvent::DiskRead { prefetch: false, .. } => "dread",
                    SimEvent::DiskRead { prefetch: true, .. } => "pread",
                    SimEvent::PrefetchFault { .. } => "pfault",
                    SimEvent::Period { .. } => "period",
                    SimEvent::End { .. } => "end",
                });
            }
        }
        let trace = TraceKind::Snake.generate(800, 3);
        let cfg = SimConfig::new(64, PolicySpec::TreeNextLimit).with_disks(1);
        let mut obs = (Recorder::default(), Recorder::default(), Recorder::default());
        Simulator::run(&mut trace.source(), &cfg, &mut obs).unwrap();
        assert_eq!(obs.0.tags, obs.1.tags, "every member sees the identical stream");
        assert_eq!(obs.1.tags, obs.2.tags);
        let tags = &obs.0.tags;
        assert_eq!(*tags.last().unwrap(), "end");
        // Emission order within a reference: any demand DiskRead directly
        // precedes its Reference; every Reference is followed by its
        // Period before the next Reference.
        for (i, t) in tags.iter().enumerate() {
            match *t {
                "dread" => assert_eq!(tags[i + 1], "ref", "demand read must precede its reference"),
                "ref" => {
                    let next = tags[i + 1];
                    assert_eq!(next, "period", "reference must be followed by its period");
                }
                "pread" | "pfault" => {
                    // Prefetch activity belongs between a Period and the
                    // next reference's events.
                    let prev_period = tags[..i].iter().rev().any(|t| *t == "period");
                    assert!(prev_period, "prefetch activity before any period");
                }
                _ => {}
            }
        }
    }
}
