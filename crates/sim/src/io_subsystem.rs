//! The simulator's I/O path.
//!
//! [`IoSubsystem`] unifies the paper's infinite-disk assumption (every I/O
//! takes `t_driver + t_disk`, Section 6.3) with the finite
//! [`prefetch_disk::DiskArray`] extension (per-disk FIFO queueing and
//! deterministic fault injection) behind one interface, so the simulator
//! loop no longer branches on the disk model. All fault, retry, and
//! quarantine-submission logic lives here, as does the per-run map of
//! outstanding prefetch completion times.

use crate::clock::VirtualClock;
use crate::config::SimConfig;
use crate::observer::{DiskSummary, SimEvent};
use prefetch_core::{RetryPolicy, SystemParams};
use prefetch_hash::FxHashMap;
use prefetch_trace::BlockId;

/// Outcome of a demand fetch.
#[derive(Clone, Copy, Debug)]
pub struct DemandFetch {
    /// Stall charged to the referencing process (ms), measured from the
    /// current clock time to the fetch's completion — includes queueing,
    /// retry backoff, and any give-up penalty.
    pub stall_ms: f64,
    /// Whether the disk read ultimately succeeded (always `true` without
    /// fault injection). Drives the policy's fault-quarantine decay.
    pub read_succeeded: bool,
}

/// The disk model behind the simulator.
pub enum IoSubsystem {
    /// The paper's infinite-disk assumption: no queueing, no faults;
    /// prefetch overlap is priced from the issue period's start time.
    Infinite,
    /// Finite disk array with optional deterministic fault injection
    /// (boxed: the array state dwarfs the dataless `Infinite` variant,
    /// and there is exactly one subsystem per run).
    Finite(Box<FiniteIo>),
}

/// State of the finite-array path.
pub struct FiniteIo {
    /// The array pricing queueing (and injecting faults).
    pub array: prefetch_disk::DiskArray,
    /// Retry / backoff pricing for faulted demand reads.
    pub retry: RetryPolicy,
    /// Whether the array actually injects faults (retry and quarantine
    /// bookkeeping engage only then).
    pub faults_active: bool,
    /// Completion time of each outstanding prefetch, by block.
    pub prefetch_completion: FxHashMap<u64, f64>,
}

impl IoSubsystem {
    /// Build the subsystem a configuration asks for.
    ///
    /// # Panics
    /// Panics on an invalid disk/fault configuration; front ends must run
    /// [`SimConfig::validate`] first.
    pub fn from_config(config: &SimConfig) -> Self {
        match config.disks {
            None => IoSubsystem::Infinite,
            Some(d) => {
                let array = match config.faults {
                    Some(f) if f.plan.is_active() => {
                        prefetch_disk::DiskArray::with_faults(d, f.plan)
                    }
                    _ => prefetch_disk::DiskArray::new(d),
                }
                .expect("invalid SimConfig (run SimConfig::validate first)");
                let faults_active = array.fault_plan().is_some();
                IoSubsystem::Finite(Box::new(FiniteIo {
                    array,
                    retry: config.faults.map(|f| f.retry).unwrap_or_default(),
                    faults_active,
                    prefetch_completion: FxHashMap::default(),
                }))
            }
        }
    }

    /// Whether fault injection is live on this subsystem.
    pub fn faults_active(&self) -> bool {
        matches!(self, IoSubsystem::Finite(f) if f.faults_active)
    }

    /// Demand-fetch `block` at the clock's current time; returns the
    /// stall (Figure 3a). With a finite array the fetch may queue behind
    /// earlier I/O; under fault injection a failed read retries with
    /// exponential backoff in virtual time, and when the budget runs out
    /// it is priced with the give-up penalty instead of looping forever.
    /// Fault attempts are narrated through `emit`.
    pub fn demand_fetch(
        &mut self,
        block: BlockId,
        period: u64,
        clock: &VirtualClock,
        p: &SystemParams,
        emit: &mut dyn FnMut(SimEvent<'_>),
    ) -> DemandFetch {
        match self {
            IoSubsystem::Infinite => {
                emit(SimEvent::DiskRead { period, block, prefetch: false, queue_ms: 0.0 });
                DemandFetch { stall_ms: p.t_driver + p.t_disk, read_succeeded: true }
            }
            IoSubsystem::Finite(io) => {
                let now_ms = clock.now();
                let mut attempts = 0u32;
                let mut submit_at = now_ms + p.t_driver;
                let mut read_succeeded = false;
                let completion = loop {
                    match io.array.submit(block, submit_at) {
                        Ok(c) => {
                            read_succeeded = true;
                            emit(SimEvent::DiskRead {
                                period,
                                block,
                                prefetch: false,
                                queue_ms: c.start_ms - submit_at,
                            });
                            break c.completion_ms;
                        }
                        Err(fault) => {
                            attempts += 1;
                            if io.retry.should_retry(attempts) {
                                let backoff = io.retry.backoff_ms(attempts);
                                emit(SimEvent::DemandFault {
                                    period,
                                    block,
                                    attempt: attempts,
                                    retried: true,
                                    backoff_ms: backoff,
                                });
                                submit_at = fault.retry_at_ms().max(submit_at) + backoff;
                            } else {
                                emit(SimEvent::DemandFault {
                                    period,
                                    block,
                                    attempt: attempts,
                                    retried: false,
                                    backoff_ms: 0.0,
                                });
                                emit(SimEvent::DemandGiveUp {
                                    period,
                                    block,
                                    penalty_ms: io.retry.give_up_penalty_ms,
                                });
                                break fault.retry_at_ms().max(submit_at)
                                    + io.retry.give_up_penalty_ms;
                            }
                        }
                    }
                };
                DemandFetch { stall_ms: completion - now_ms, read_succeeded }
            }
        }
    }

    /// Stall a prefetch hit must absorb (Figure 5, access period 3): the
    /// part of the prefetch I/O that has not completed yet. On the
    /// infinite disk this is priced from the issue period's start time;
    /// on a finite array from the tracked completion time (consumed here).
    pub fn prefetch_hit_stall(
        &mut self,
        block: BlockId,
        issued_at: u64,
        clock: &VirtualClock,
        p: &SystemParams,
    ) -> f64 {
        match self {
            IoSubsystem::Infinite => clock.prefetch_stall(issued_at, p.t_driver + p.t_disk),
            IoSubsystem::Finite(io) => io
                .prefetch_completion
                .remove(&block.0)
                .map(|completes| (completes - clock.now()).max(0.0))
                .unwrap_or(0.0),
        }
    }

    /// Queue one access period's prefetch I/O. Each submission is spaced
    /// one `t_driver` after the previous (initiation order). Blocks whose
    /// submission faulted are appended to `faulted` for the caller to
    /// release and (maybe) quarantine — a faulted prefetch is a priced
    /// mispredict: no retries compete with demand traffic. Successful
    /// submissions are narrated through `emit` as prefetch
    /// [`SimEvent::DiskRead`]s.
    pub fn submit_prefetches(
        &mut self,
        blocks: &[BlockId],
        period: u64,
        now_ms: f64,
        t_driver: f64,
        faulted: &mut Vec<BlockId>,
        emit: &mut dyn FnMut(SimEvent<'_>),
    ) {
        match self {
            IoSubsystem::Infinite => {
                for &b in blocks {
                    emit(SimEvent::DiskRead { period, block: b, prefetch: true, queue_ms: 0.0 });
                }
            }
            IoSubsystem::Finite(io) => {
                for (j, &b) in blocks.iter().enumerate() {
                    let issue = now_ms + (j + 1) as f64 * t_driver;
                    match io.array.submit(b, issue) {
                        Ok(c) => {
                            io.prefetch_completion.insert(b.0, c.completion_ms);
                            emit(SimEvent::DiskRead {
                                period,
                                block: b,
                                prefetch: true,
                                queue_ms: c.start_ms - issue,
                            });
                        }
                        Err(_) => {
                            io.prefetch_completion.remove(&b.0);
                            faulted.push(b);
                        }
                    }
                }
            }
        }
    }

    /// End-of-run disk statistics (`None` on the infinite disk).
    pub fn summary(&self) -> Option<DiskSummary> {
        match self {
            IoSubsystem::Infinite => None,
            IoSubsystem::Finite(io) => {
                let s = io.array.stats();
                Some(DiskSummary {
                    queue_ms: s.queue_ms,
                    queued_requests: s.queued_requests,
                    mean_utilization: s.mean_utilization(),
                    slowed_requests: s.slowed_requests,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;

    #[test]
    fn infinite_disk_prices_the_full_fetch() {
        let cfg = SimConfig::new(64, PolicySpec::NoPrefetch);
        let mut io = IoSubsystem::from_config(&cfg);
        assert!(!io.faults_active());
        let clock = VirtualClock::new(512);
        let mut events = 0usize;
        let f = io.demand_fetch(BlockId(1), 0, &clock, &cfg.params, &mut |e| {
            assert!(
                matches!(e, SimEvent::DiskRead { prefetch: false, queue_ms, .. } if queue_ms == 0.0)
            );
            events += 1;
        });
        assert!((f.stall_ms - (cfg.params.t_driver + cfg.params.t_disk)).abs() < 1e-12);
        assert!(f.read_succeeded);
        assert_eq!(events, 1, "the successful read is narrated");
        assert!(io.summary().is_none());
    }

    #[test]
    fn finite_array_reports_summary_and_queues() {
        let cfg = SimConfig::new(64, PolicySpec::NoPrefetch).with_disks(1);
        cfg.validate().unwrap();
        let mut io = IoSubsystem::from_config(&cfg);
        let clock = VirtualClock::new(512);
        // Two back-to-back fetches on one disk: the second queues.
        let a = io.demand_fetch(BlockId(1), 0, &clock, &cfg.params, &mut |_| {});
        let b = io.demand_fetch(BlockId(2), 1, &clock, &cfg.params, &mut |_| {});
        assert!(b.stall_ms > a.stall_ms);
        let s = io.summary().unwrap();
        assert_eq!(s.queued_requests, 1);
    }

    #[test]
    fn prefetch_completions_are_consumed_once() {
        let cfg = SimConfig::new(64, PolicySpec::NoPrefetch).with_disks(4);
        cfg.validate().unwrap();
        let mut io = IoSubsystem::from_config(&cfg);
        let clock = VirtualClock::new(512);
        let mut faulted = Vec::new();
        let mut reads = 0usize;
        io.submit_prefetches(
            &[BlockId(7)],
            0,
            clock.now(),
            cfg.params.t_driver,
            &mut faulted,
            &mut |e| {
                assert!(matches!(e, SimEvent::DiskRead { prefetch: true, .. }));
                reads += 1;
            },
        );
        assert!(faulted.is_empty());
        assert_eq!(reads, 1);
        let first = io.prefetch_hit_stall(BlockId(7), 0, &clock, &cfg.params);
        assert!(first > 0.0, "outstanding prefetch must stall");
        // Consumed: a second lookup finds nothing outstanding.
        let second = io.prefetch_hit_stall(BlockId(7), 0, &clock, &cfg.params);
        assert_eq!(second, 0.0);
    }
}
