//! Simulation event stream.
//!
//! The decomposed [`crate::simulator::Simulator`] does not count anything
//! itself: it narrates the run as a stream of [`SimEvent`]s and any
//! [`SimObserver`] folds them into whatever it wants. [`SimMetrics`] is
//! simply the default observer — every counter the paper's tables and
//! figures need is reconstructed from the events — and [`NullObserver`]
//! discards them (useful for timing the bare simulator).

use crate::metrics::SimMetrics;
use prefetch_core::policy::{PeriodActivity, RefKind};
use prefetch_trace::{BlockId, TraceRecord};

/// Per-disk-array statistics reported once at the end of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskSummary {
    /// Total request queueing delay (ms).
    pub queue_ms: f64,
    /// Requests that found their disk busy.
    pub queued_requests: u64,
    /// Mean disk utilization over the run.
    pub mean_utilization: f64,
    /// Requests a slow-disk episode stretched.
    pub slowed_requests: u64,
}

/// One step of a simulation run, in emission order:
///
/// per reference — zero or more [`SimEvent::DemandFault`] (one per faulted
/// attempt), at most one [`SimEvent::DemandGiveUp`], at most one demand
/// [`SimEvent::DiskRead`] (miss path, successful read), then
/// [`SimEvent::Reference`], then [`SimEvent::Period`] (the policy's
/// activity), then zero or more prefetch [`SimEvent::DiskRead`]s (one per
/// submitted prefetch) interleaved before zero or more
/// [`SimEvent::PrefetchFault`]s; finally one [`SimEvent::End`].
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent<'a> {
    /// A reference was served.
    Reference {
        /// Access period (monotone reference index).
        period: u64,
        /// The trace record referenced.
        record: TraceRecord,
        /// How the cache served it.
        kind: RefKind,
        /// CPU stall absorbed by this reference (ms): the unfinished part
        /// of a prefetch, or the full demand fetch (including retry
        /// backoff and give-up penalties under faults).
        stall_ms: f64,
        /// Whether the demand fetch evicted a prefetched block to make
        /// room (miss path only).
        evicted_prefetch: bool,
    },
    /// A demand read attempt hit an injected disk fault.
    DemandFault {
        /// Access period of the demanding reference.
        period: u64,
        /// The block being read.
        block: BlockId,
        /// 1-based faulted-attempt counter for this read.
        attempt: u32,
        /// Whether the read will be retried (`false`: the retry budget is
        /// exhausted and a [`SimEvent::DemandGiveUp`] follows).
        retried: bool,
        /// Exponential backoff charged before the retry (ms); zero when
        /// not retried.
        backoff_ms: f64,
    },
    /// A faulted demand read exhausted its retry budget and was priced
    /// with the give-up penalty.
    DemandGiveUp {
        /// Access period of the demanding reference.
        period: u64,
        /// The block whose read was abandoned.
        block: BlockId,
        /// Penalty charged in place of the read (ms).
        penalty_ms: f64,
    },
    /// A prefetch submission faulted: the buffer is released and the block
    /// may be quarantined (a priced mispredict).
    PrefetchFault {
        /// Access period that issued the prefetch.
        period: u64,
        /// The block whose prefetch faulted.
        block: BlockId,
        /// Whether this fault pushed the block over the policy's
        /// quarantine threshold.
        quarantined: bool,
    },
    /// A disk read was successfully submitted and priced. Emitted for
    /// both demand fetches (miss path) and prefetch submissions, on the
    /// infinite disk (queue delay 0) and finite arrays alike — the
    /// telemetry observers build queue-delay histograms from it.
    DiskRead {
        /// Access period that caused the read.
        period: u64,
        /// The block read.
        block: BlockId,
        /// `true` for a prefetch submission, `false` for a demand fetch.
        prefetch: bool,
        /// Time the request waited behind earlier I/O before its disk
        /// started servicing it (ms).
        queue_ms: f64,
    },
    /// The policy finished an access period; `activity` is what it did.
    Period {
        /// The access period just completed.
        period: u64,
        /// How the period's reference was served.
        kind: RefKind,
        /// The policy's prefetch decisions and predictor observations.
        activity: &'a PeriodActivity,
    },
    /// The run is over.
    End {
        /// Total virtual time (ms).
        elapsed_ms: f64,
        /// Disk statistics, when a finite array was configured.
        disk: Option<DiskSummary>,
    },
}

/// Consumes the event stream of a simulation run.
pub trait SimObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &SimEvent<'_>);
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    fn on_event(&mut self, _event: &SimEvent<'_>) {}
}

/// A mutable reference observes on behalf of its target, so observers can
/// be composed without moving them (e.g. `&mut dyn SimObserver`).
impl<T: SimObserver + ?Sized> SimObserver for &mut T {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        (**self).on_event(event);
    }
}

/// `None` discards events, `Some` forwards — optional instrumentation
/// composes into tuples without boxing.
impl<T: SimObserver> SimObserver for Option<T> {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        if let Some(obs) = self {
            obs.on_event(event);
        }
    }
}

/// Forward events to every member of a tuple, leftmost first, so metrics +
/// histograms + an event sink can run in one pass. Fan-out order within a
/// tuple matches the documented [`SimEvent`] emission order trivially:
/// each member sees the full stream in order.
macro_rules! impl_observer_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: SimObserver),+> SimObserver for ($($name,)+) {
            fn on_event(&mut self, event: &SimEvent<'_>) {
                $(self.$idx.on_event(event);)+
            }
        }
    };
}

impl_observer_tuple!(A: 0, B: 1);
impl_observer_tuple!(A: 0, B: 1, C: 2);
impl_observer_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_observer_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_observer_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl SimObserver for SimMetrics {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match *event {
            SimEvent::Reference { kind, stall_ms, evicted_prefetch, .. } => {
                self.refs += 1;
                match kind {
                    RefKind::DemandHit => self.demand_hits += 1,
                    RefKind::PrefetchHit => self.prefetch_hits += 1,
                    RefKind::Miss => self.misses += 1,
                }
                self.stall_ms += stall_ms;
                if evicted_prefetch {
                    self.prefetch_evictions += 1;
                }
            }
            SimEvent::DemandFault { retried, backoff_ms, .. } => {
                self.demand_faults += 1;
                if retried {
                    self.demand_retries += 1;
                    self.retry_backoff_ms += backoff_ms;
                }
            }
            SimEvent::DemandGiveUp { .. } => self.demand_read_failures += 1,
            // Queue delay is already folded into stalls and the disk
            // summary; the scalar metrics ignore the per-read event (the
            // histogram observers consume it), keeping instrumented runs
            // bit-identical.
            SimEvent::DiskRead { .. } => {}
            SimEvent::PrefetchFault { quarantined, .. } => {
                self.prefetch_faults += 1;
                if quarantined {
                    self.blocks_quarantined += 1;
                }
            }
            SimEvent::Period { kind, activity: act, .. } => {
                self.prefetches_issued += act.prefetches_issued as u64;
                self.prefetch_probability_sum += act.prefetch_probability_sum;
                self.candidates_considered += act.candidates_considered as u64;
                self.candidates_already_cached += act.candidates_already_cached as u64;
                self.candidates_quarantined += act.candidates_quarantined as u64;
                self.prefetch_evictions += act.prefetch_evictions as u64;
                self.demand_evictions_for_prefetch += act.demand_evictions_for_prefetch as u64;
                if act.predictable {
                    self.predictable += 1;
                    if kind == RefKind::Miss {
                        self.predictable_missed += 1;
                    }
                }
                if let Some(repeat) = act.lvc_repeat {
                    self.lvc_opportunities += 1;
                    if repeat {
                        self.lvc_repeats += 1;
                    }
                }
                if let Some(true) = act.lvc_already_cached {
                    self.lvc_cached += 1;
                }
            }
            SimEvent::End { elapsed_ms, disk } => {
                self.elapsed_ms = elapsed_ms;
                if let Some(d) = disk {
                    self.disk_queue_ms = d.queue_ms;
                    self.disk_queued_requests = d.queued_requests;
                    self.disk_mean_utilization = d.mean_utilization;
                    self.disk_slowed_requests = d.slowed_requests;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_fold_reference_events() {
        let mut m = SimMetrics::default();
        m.on_event(&SimEvent::Reference {
            period: 0,
            record: TraceRecord::read(1u64),
            kind: RefKind::Miss,
            stall_ms: 15.58,
            evicted_prefetch: true,
        });
        m.on_event(&SimEvent::Reference {
            period: 1,
            record: TraceRecord::read(2u64),
            kind: RefKind::DemandHit,
            stall_ms: 0.0,
            evicted_prefetch: false,
        });
        assert_eq!(m.refs, 2);
        assert_eq!(m.misses, 1);
        assert_eq!(m.demand_hits, 1);
        assert_eq!(m.prefetch_evictions, 1);
        assert!((m.stall_ms - 15.58).abs() < 1e-12);
    }

    #[test]
    fn metrics_fold_fault_events() {
        let mut m = SimMetrics::default();
        let b = BlockId(9);
        m.on_event(&SimEvent::DemandFault {
            period: 3,
            block: b,
            attempt: 1,
            retried: true,
            backoff_ms: 2.0,
        });
        m.on_event(&SimEvent::DemandFault {
            period: 3,
            block: b,
            attempt: 2,
            retried: false,
            backoff_ms: 0.0,
        });
        m.on_event(&SimEvent::DemandGiveUp { period: 3, block: b, penalty_ms: 150.0 });
        m.on_event(&SimEvent::PrefetchFault { period: 3, block: b, quarantined: true });
        assert_eq!(m.demand_faults, 2);
        assert_eq!(m.demand_retries, 1);
        assert_eq!(m.demand_read_failures, 1);
        assert!((m.retry_backoff_ms - 2.0).abs() < 1e-12);
        assert_eq!(m.prefetch_faults, 1);
        assert_eq!(m.blocks_quarantined, 1);
    }

    #[test]
    fn observer_pairs_fan_out() {
        let mut pair = (SimMetrics::default(), SimMetrics::default());
        pair.on_event(&SimEvent::End { elapsed_ms: 7.0, disk: None });
        assert_eq!(pair.0.elapsed_ms, 7.0);
        assert_eq!(pair.1.elapsed_ms, 7.0);
    }

    #[test]
    fn wide_tuples_and_adapters_fan_out() {
        let mut four = (
            SimMetrics::default(),
            NullObserver,
            Some(SimMetrics::default()),
            SimMetrics::default(),
        );
        four.on_event(&SimEvent::End { elapsed_ms: 3.0, disk: None });
        assert_eq!(four.0.elapsed_ms, 3.0);
        assert_eq!(four.2.as_ref().unwrap().elapsed_ms, 3.0);
        assert_eq!(four.3.elapsed_ms, 3.0);
        // None discards; &mut forwards.
        let mut none: Option<SimMetrics> = None;
        none.on_event(&SimEvent::End { elapsed_ms: 3.0, disk: None });
        assert!(none.is_none());
        let mut m = SimMetrics::default();
        let mut by_ref = &mut m;
        <&mut SimMetrics as SimObserver>::on_event(
            &mut by_ref,
            &SimEvent::End { elapsed_ms: 9.0, disk: None },
        );
        assert_eq!(m.elapsed_ms, 9.0);
    }

    #[test]
    fn metrics_ignore_disk_read_events() {
        let mut m = SimMetrics::default();
        m.on_event(&SimEvent::DiskRead {
            period: 0,
            block: BlockId(1),
            prefetch: false,
            queue_ms: 4.0,
        });
        assert_eq!(m, SimMetrics::default());
    }
}
