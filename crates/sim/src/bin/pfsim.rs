//! `pfsim` — run any prefetching policy over any trace.
//!
//! ```text
//! pfsim --trace cad --refs 100000 --policy tree-next-limit --cache 1024
//! pfsim --trace cello --refs 3500000 --policy tree --cache 4096
//! pfsim --trace-file mytrace.trc --policy tree --cache 4096 --t-cpu 20
//! pfsim --trace snake --policy all --cache 1024 --disks 4
//! pfsim --trace cad --policy tree --cache 1024 --disks 4 --fault-rate 0.05 --fault-seed 7
//! pfsim --trace cello --policy tree --histograms --profile --log-json run.jsonl
//! ```
//!
//! Telemetry flags: `--histograms` prints per-policy stall, demand-fetch
//! latency, queue-delay, and prefetch-depth percentile tables;
//! `--profile` prints a per-phase wall-clock breakdown; `--events-out
//! PATH` streams every [`prefetch_sim::SimEvent`] as JSONL (all policy
//! runs append to one file, each terminated by an `end` record);
//! `--log-json PATH` mirrors the structured run log to a JSONL file.
//!
//! Snapshot flags: `--save-tree PATH` writes the trained prefetch tree as
//! a `pftree-snap/v1` snapshot at end of run (one `--policy` required);
//! `--load-tree PATH` warm-starts every policy run from a snapshot, and
//! continued training is bit-identical to the run that produced it.
//!
//! `--trace` takes a synthetic workload name (cello|snake|cad|sitar);
//! `--trace-file` loads a `.trc` (binary) or text trace from disk. Traces
//! are **streamed** through the simulator — synthetic records are drawn
//! from the generator and file records decoded incrementally as the run
//! consumes them — so memory use is independent of `--refs` (paper-scale
//! runs like cello's 3.5 M references need no trace buffer at all).
//!
//! Runs go through the guarded harness: a policy bug that panics, a trace
//! that stops decoding, or a run that blows past `--deadline-ms` becomes a
//! one-line diagnostic and a structured exit code instead of an abort:
//!
//! | exit | meaning                                                   |
//! |------|-----------------------------------------------------------|
//! | 0    | all runs completed                                        |
//! | 1    | a simulation panicked (bug — please report)               |
//! | 2    | usage error                                               |
//! | 3    | invalid configuration                                     |
//! | 4    | trace I/O error                                           |
//! | 5    | `--deadline-ms` exceeded                                  |
//! | 6    | lossy trace skipped more records than `--max-skipped`     |

use prefetch_sim::{
    run_source_guarded_snapshot, JsonlEventSink, PolicySpec, QueueDelayObserver, SimConfig,
    StallHistogramObserver, SweepError,
};
use prefetch_telemetry::{log as tlog, Histogram, Phase};
use prefetch_trace::io::{open_source, FileSource, ReadOptions, TraceIoError};
use prefetch_trace::synth::{SynthSource, TraceKind};
use prefetch_trace::{TraceMeta, TraceRecord, TraceSource};
use prefetch_tree::PrefetchTree;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    trace: TraceInput,
    refs: usize,
    seed: u64,
    cache: usize,
    policies: Vec<PolicySpec>,
    t_cpu: Option<f64>,
    disks: Option<usize>,
    fault_rate: Option<f64>,
    fault_seed: u64,
    lenient: bool,
    deadline_ms: Option<u64>,
    max_skipped: Option<u64>,
    histograms: bool,
    profile: bool,
    events_out: Option<std::path::PathBuf>,
    log_json: Option<std::path::PathBuf>,
    save_tree: Option<std::path::PathBuf>,
    load_tree: Option<std::path::PathBuf>,
}

/// Structured exit codes (see the module docs).
const EXIT_PANIC: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INVALID_CONFIG: u8 = 3;
const EXIT_TRACE_IO: u8 = 4;
const EXIT_DEADLINE: u8 = 5;
const EXIT_CORRUPT: u8 = 6;

enum TraceInput {
    Synthetic(TraceKind),
    File(std::path::PathBuf),
}

/// The two streaming inputs pfsim drives, behind one `TraceSource`.
enum StreamInput {
    Synth(SynthSource),
    File(FileSource),
}

impl TraceSource for StreamInput {
    /// Records a lossy file pass skipped (0 for synthetic sources).
    fn skipped(&self) -> u64 {
        match self {
            StreamInput::Synth(_) => 0,
            StreamInput::File(f) => f.skipped(),
        }
    }

    fn meta(&self) -> &TraceMeta {
        match self {
            StreamInput::Synth(s) => s.meta(),
            StreamInput::File(f) => f.meta(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            StreamInput::Synth(s) => s.len_hint(),
            StreamInput::File(f) => f.len_hint(),
        }
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        match self {
            StreamInput::Synth(s) => s.next_record(),
            StreamInput::File(f) => f.next_record(),
        }
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        match self {
            StreamInput::Synth(s) => s.rewind(),
            StreamInput::File(f) => f.rewind(),
        }
    }
}

fn parse_policy(s: &str) -> Result<Vec<PolicySpec>, String> {
    Ok(match s {
        "all" => vec![
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.05),
            PolicySpec::TreeChildren(3),
            PolicySpec::PerfectSelector,
            PolicySpec::TreeReanchor,
        ],
        "no-prefetch" => vec![PolicySpec::NoPrefetch],
        "next-limit" => vec![PolicySpec::NextLimit],
        "tree" => vec![PolicySpec::Tree],
        "tree-next-limit" => vec![PolicySpec::TreeNextLimit],
        "tree-lvc" => vec![PolicySpec::TreeLvc],
        "tree-reanchor" => vec![PolicySpec::TreeReanchor],
        "perfect-selector" => vec![PolicySpec::PerfectSelector],
        other => {
            if let Some(t) = other.strip_prefix("tree-threshold=") {
                vec![PolicySpec::TreeThreshold(
                    t.parse().map_err(|_| format!("bad threshold {t:?}"))?,
                )]
            } else if let Some(k) = other.strip_prefix("tree-children=") {
                vec![PolicySpec::TreeChildren(
                    k.parse().map_err(|_| format!("bad children count {k:?}"))?,
                )]
            } else {
                return Err(format!(
                    "unknown policy {other:?} (try: all, no-prefetch, next-limit, tree, \
                     tree-next-limit, tree-lvc, tree-reanchor, perfect-selector, \
                     tree-threshold=<p>, tree-children=<k>)"
                ));
            }
        }
    })
}

fn parse_args() -> Result<Args, String> {
    let mut trace = None;
    let mut refs = 100_000usize;
    let mut seed = 42u64;
    let mut cache = 1024usize;
    let mut policies = parse_policy("all")?;
    let mut t_cpu = None;
    let mut disks = None;
    let mut fault_rate = None;
    let mut fault_seed = 1u64;
    let mut lenient = false;
    let mut deadline_ms = None;
    let mut max_skipped = None;
    let mut histograms = false;
    let mut profile = false;
    let mut events_out = None;
    let mut log_json = None;
    let mut save_tree = None;
    let mut load_tree = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--trace" => {
                trace = Some(TraceInput::Synthetic(val()?.parse::<TraceKind>()?));
            }
            "--trace-file" => trace = Some(TraceInput::File(val()?.into())),
            "--refs" => refs = val()?.parse().map_err(|e| format!("bad --refs: {e}"))?,
            "--seed" => seed = val()?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--cache" => cache = val()?.parse().map_err(|e| format!("bad --cache: {e}"))?,
            "--policy" => policies = parse_policy(&val()?)?,
            "--t-cpu" => t_cpu = Some(val()?.parse().map_err(|e| format!("bad --t-cpu: {e}"))?),
            "--disks" => disks = Some(val()?.parse().map_err(|e| format!("bad --disks: {e}"))?),
            "--fault-rate" => {
                fault_rate = Some(val()?.parse().map_err(|e| format!("bad --fault-rate: {e}"))?)
            }
            "--fault-seed" => {
                fault_seed = val()?.parse().map_err(|e| format!("bad --fault-seed: {e}"))?
            }
            "--lenient" => lenient = true,
            "--deadline-ms" => {
                deadline_ms = Some(val()?.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?)
            }
            "--max-skipped" => {
                max_skipped = Some(val()?.parse().map_err(|e| format!("bad --max-skipped: {e}"))?)
            }
            "--threads" => {
                let n: usize = val()?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                prefetch_pool::set_threads(n);
            }
            "--kernel" => prefetch_core::kernel::force(
                val()?.parse().map_err(|e| format!("bad --kernel: {e}"))?,
            ),
            "--histograms" => histograms = true,
            "--profile" => profile = true,
            "--events-out" => events_out = Some(std::path::PathBuf::from(val()?)),
            "--log-json" => log_json = Some(std::path::PathBuf::from(val()?)),
            "--save-tree" => save_tree = Some(std::path::PathBuf::from(val()?)),
            "--load-tree" => load_tree = Some(std::path::PathBuf::from(val()?)),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let trace = trace.ok_or_else(|| format!("--trace or --trace-file required\n{}", usage()))?;
    Ok(Args {
        trace,
        refs,
        seed,
        cache,
        policies,
        t_cpu,
        disks,
        fault_rate,
        fault_seed,
        lenient,
        deadline_ms,
        max_skipped,
        histograms,
        profile,
        events_out,
        log_json,
        save_tree,
        load_tree,
    })
}

fn usage() -> String {
    "usage: pfsim --trace <cello|snake|cad|sitar> | --trace-file <path> [--lenient] \
     [--refs N] [--seed S] [--cache BLOCKS] [--policy NAME|all] [--t-cpu MS] [--disks N] \
     [--fault-rate P] [--fault-seed S] [--deadline-ms N] [--max-skipped N] [--threads N] \
     [--kernel scalar|auto] [--histograms] [--profile] [--events-out PATH] [--log-json PATH] \
     [--save-tree PATH] [--load-tree PATH]"
        .to_string()
}

/// One percentile row of a `--histograms` table. Latency histograms hold
/// integer microseconds; display converts to milliseconds.
fn hist_row(label: &str, h: &Histogram, scale_us: bool) {
    if h.is_empty() {
        println!("  {label:<18} (no samples)");
        return;
    }
    let f = |v: u64| if scale_us { v as f64 / 1000.0 } else { v as f64 };
    println!(
        "  {label:<18} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        h.count(),
        f(h.p50()),
        f(h.p90()),
        f(h.p99()),
        f(h.max()),
        if scale_us { h.mean() / 1000.0 } else { h.mean() },
    );
}

fn print_histograms(stalls: &StallHistogramObserver, queues: &QueueDelayObserver) {
    println!(
        "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "distribution", "samples", "p50", "p90", "p99", "max", "mean"
    );
    hist_row("stall ms", &stalls.stall_us, true);
    hist_row("demand fetch ms", &stalls.demand_fetch_us, true);
    hist_row("demand queue ms", &queues.demand_queue_us, true);
    hist_row("prefetch queue ms", &queues.prefetch_queue_us, true);
    hist_row("prefetch depth", &stalls.prefetch_depth, false);
}

fn print_phases(phases: &prefetch_telemetry::PhaseTimes) {
    let total = phases.total_ns().max(1) as f64;
    println!("  {:<22} {:>10} {:>7}", "phase", "ms", "%");
    for phase in Phase::ALL {
        let ns = phases.get(phase);
        println!(
            "  {:<22} {:>10.3} {:>6.1}%",
            phase.name(),
            ns as f64 / 1e6,
            100.0 * ns as f64 / total
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    if args.save_tree.is_some() && args.policies.len() != 1 {
        eprintln!("--save-tree needs exactly one --policy (whose tree would be saved?)");
        return ExitCode::from(EXIT_USAGE);
    }

    if let Some(path) = &args.log_json {
        if let Err(e) = tlog::set_json_path(path) {
            eprintln!("cannot open --log-json {path:?}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    }

    // Restore the warm-start tree once; each policy run gets its own clone.
    let warm_tree = match &args.load_tree {
        Some(path) => match PrefetchTree::load_snapshot(path) {
            Ok(t) => {
                tlog::info("tree_loaded")
                    .str("path", path.display().to_string())
                    .u64("nodes", t.node_count() as u64)
                    .u64("bytes_in_use", t.bytes_in_use() as u64)
                    .emit();
                Some(t)
            }
            Err(e) => {
                eprintln!("cannot load --load-tree {}: {e}", path.display());
                tlog::flush();
                return ExitCode::from(EXIT_TRACE_IO);
            }
        },
        None => None,
    };

    let mut source = match &args.trace {
        TraceInput::Synthetic(kind) => StreamInput::Synth(kind.stream(args.refs, args.seed)),
        TraceInput::File(path) => match open_source(path, ReadOptions { strict: !args.lenient }) {
            Ok(f) => StreamInput::File(f),
            Err(e) => {
                tlog::error("trace_open_failed")
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                return ExitCode::from(EXIT_TRACE_IO);
            }
        },
    };
    {
        let mut rec = tlog::info("trace_open")
            .str("trace", source.meta().name.clone())
            .u64("cache_blocks", args.cache as u64)
            .u64("threads", prefetch_pool::effective_threads() as u64)
            .str("kernel", prefetch_core::kernel::active().name);
        if let Some(n) = source.len_hint() {
            rec = rec.u64("refs", n);
        }
        rec.emit();
    }

    let mut sink = match &args.events_out {
        Some(path) => match JsonlEventSink::create(path) {
            Ok(s) => Some(s),
            Err(e) => {
                tlog::error("events_out_failed")
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                return ExitCode::from(EXIT_USAGE);
            }
        },
        None => None,
    };

    let faults_on = args.fault_rate.is_some_and(|r| r > 0.0);
    if faults_on {
        println!(
            "{:<22} {:>9} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8} {:>11}",
            "policy",
            "miss %",
            "pf issued",
            "pf hit %",
            "disk reads",
            "faults",
            "retries",
            "quarant",
            "ms/ref"
        );
    } else {
        println!(
            "{:<22} {:>9} {:>11} {:>11} {:>11} {:>11}",
            "policy", "miss %", "pf issued", "pf hit %", "disk reads", "ms/ref"
        );
    }
    let mut warned_skipped = false;
    for &spec in &args.policies {
        let mut cfg = SimConfig::new(args.cache, spec);
        if let Some(t) = args.t_cpu {
            cfg = cfg.with_t_cpu(t);
        }
        if let Some(n) = args.disks {
            cfg = cfg.with_disks(n);
        }
        if let Some(r) = args.fault_rate {
            cfg = cfg.with_fault_rate(args.fault_seed, r);
        }
        if args.profile {
            cfg = cfg.with_profiling();
        }
        if let Err(e) = source.rewind() {
            tlog::error("trace_rewind_failed").str("error", e.to_string()).emit();
            tlog::flush();
            return ExitCode::from(EXIT_TRACE_IO);
        }
        let mut stalls = args.histograms.then(StallHistogramObserver::new);
        let mut queues = args.histograms.then(QueueDelayObserver::new);
        let mut extra = (stalls.as_mut(), queues.as_mut(), sink.as_mut());
        let wall = Instant::now();
        let run = run_source_guarded_snapshot(
            &mut source,
            &cfg,
            args.deadline_ms,
            &mut extra,
            warm_tree.clone(),
            args.save_tree.is_some(),
        );
        let (r, trained_tree) = match run {
            Ok(r) => r,
            Err(e) => {
                tlog::error("run_failed")
                    .str("policy", spec.name())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                let code = match e {
                    SweepError::InvalidConfig(_) => EXIT_INVALID_CONFIG,
                    SweepError::DeadlineExceeded { .. } => EXIT_DEADLINE,
                    SweepError::TraceIo { .. } => EXIT_TRACE_IO,
                    _ => EXIT_PANIC,
                };
                return ExitCode::from(code);
            }
        };
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let m = r.metrics;
        tlog::info("run_complete")
            .str("policy", spec.name())
            .u64("refs", m.refs)
            .f64("miss_pct", 100.0 * m.miss_rate())
            .f64("wall_ms", wall_ms)
            .emit();
        if let Some(max) = args.max_skipped {
            if r.skipped_records > max {
                tlog::error("trace_corrupt")
                    .u64("skipped_records", r.skipped_records)
                    .u64("limit", max)
                    .emit();
                tlog::flush();
                return ExitCode::from(EXIT_CORRUPT);
            }
        }
        if !warned_skipped && r.skipped_records > 0 {
            tlog::warn("trace_lossy").u64("skipped_records", r.skipped_records).emit();
            warned_skipped = true;
        }
        if faults_on {
            println!(
                "{:<22} {:>8.2}% {:>11} {:>10.1}% {:>11} {:>8} {:>8} {:>8} {:>11.3}",
                spec.name(),
                100.0 * m.miss_rate(),
                m.prefetches_issued,
                100.0 * m.prefetch_hit_rate(),
                m.disk_reads(),
                m.total_faults(),
                m.demand_retries,
                m.blocks_quarantined,
                m.elapsed_ms / m.refs.max(1) as f64,
            );
        } else {
            println!(
                "{:<22} {:>8.2}% {:>11} {:>10.1}% {:>11} {:>11.3}",
                spec.name(),
                100.0 * m.miss_rate(),
                m.prefetches_issued,
                100.0 * m.prefetch_hit_rate(),
                m.disk_reads(),
                m.elapsed_ms / m.refs.max(1) as f64,
            );
        }
        if let (Some(stalls), Some(queues)) = (&stalls, &queues) {
            print_histograms(stalls, queues);
        }
        if args.profile {
            print_phases(&r.phases);
        }
        if let Some(path) = &args.save_tree {
            let Some(tree) = trained_tree.as_ref() else {
                eprintln!("--save-tree: policy {:?} keeps no prefetch tree", spec.name());
                tlog::flush();
                return ExitCode::from(EXIT_USAGE);
            };
            match tree.save_snapshot(path) {
                Ok(info) => {
                    tlog::info("tree_saved")
                        .str("path", path.display().to_string())
                        .u64("nodes", tree.node_count() as u64)
                        .u64("payload_bytes", info.payload_bytes as u64)
                        .u64("encoded_bytes", info.encoded_bytes as u64)
                        .bool("entropy_coded", info.entropy_coded)
                        .emit();
                }
                Err(e) => {
                    eprintln!("cannot save --save-tree {}: {e}", path.display());
                    tlog::flush();
                    return ExitCode::from(EXIT_TRACE_IO);
                }
            }
        }
    }
    if let Some(sink) = sink {
        if let Err(e) = sink.finish() {
            tlog::error("events_out_failed").str("error", e.to_string()).emit();
            tlog::flush();
            return ExitCode::from(EXIT_TRACE_IO);
        }
    }
    tlog::flush();
    ExitCode::SUCCESS
}
