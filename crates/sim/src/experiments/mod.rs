//! Reproductions of every table and figure in the paper's evaluation
//! (Section 9). Each experiment returns one or more [`Report`]s; the
//! `figures` binary in `prefetch-bench` renders them to CSV/markdown.
//!
//! The mapping from experiment id to paper artifact is in DESIGN.md §4;
//! expected-vs-measured values are recorded in EXPERIMENTS.md.

pub mod ablation;
pub mod disks;
pub mod headline;
pub mod memory;
pub mod oracle;
pub mod parametric;
pub mod resilience;
pub mod snapshot;
pub mod tables;
pub mod tcpu;
pub mod tree_behavior;

use crate::config::SimConfig;
use crate::harness::{run_cells_checkpointed, HarnessOpts};
use crate::report::Report;
use crate::sweep::SweepCell;
use prefetch_trace::synth::TraceKind;
use prefetch_trace::Trace;

/// Options shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExperimentOpts {
    /// References per synthetic trace. The paper's traces range from 147 k
    /// (CAD) to 3.9 M; the default 400 k keeps a full sweep to minutes.
    /// CAD is capped at 150 k to match its original length.
    pub refs: usize,
    /// Seed for the synthetic generators.
    pub seed: u64,
    /// Cache sizes (blocks) to sweep.
    pub cache_sizes: Vec<usize>,
    /// Resilient-harness knobs: checkpointing, deadlines, retries, and the
    /// shared outcome log. Cloning shares the log, so every experiment of
    /// one invocation reports into the same tally.
    pub harness: HarnessOpts,
    /// `figures --save-tree DIR`: the `snapshot` experiment persists each
    /// trained tree as `DIR/<trace>.pftree`.
    pub save_tree: Option<std::path::PathBuf>,
    /// `figures --load-tree DIR`: the `snapshot` experiment warm-starts
    /// training from `DIR/<trace>.pftree` instead of an empty tree.
    pub load_tree: Option<std::path::PathBuf>,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            refs: 400_000,
            seed: 1999,
            cache_sizes: crate::sweep::PAPER_CACHE_SIZES.to_vec(),
            harness: HarnessOpts::default(),
            save_tree: None,
            load_tree: None,
        }
    }
}

impl ExperimentOpts {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentOpts {
            refs: 8_000,
            seed: 1999,
            cache_sizes: vec![64, 256, 1024],
            harness: HarnessOpts::default(),
            save_tree: None,
            load_tree: None,
        }
    }

    /// References for a given trace (CAD is capped at its original
    /// length).
    pub fn refs_for(&self, kind: TraceKind) -> usize {
        match kind {
            TraceKind::Cad => self.refs.min(150_000),
            _ => self.refs,
        }
    }

    /// Run a cell list through the resilient harness with this
    /// experiment's options. Cells that fail, time out, or are skipped are
    /// simply absent from the output (experiments render them as `NA`);
    /// the details land in [`HarnessOpts::log`]. The only hard error — a
    /// malformed cell list — is an experiment bug, so it panics here.
    pub fn run_cells(&self, traces: &[Trace], cells: &[(usize, SimConfig)]) -> Vec<SweepCell> {
        run_cells_checkpointed(traces, cells, &self.harness)
            .expect("experiment built an invalid cell list")
            .completed_cells()
    }
}

/// The four synthetic traces, generated once and shared by experiments.
pub struct TraceSet {
    /// Traces in [`TraceKind::ALL`] order.
    pub traces: Vec<Trace>,
}

impl TraceSet {
    /// Generate the suite per `opts`.
    pub fn generate(opts: &ExperimentOpts) -> Self {
        let traces =
            TraceKind::ALL.iter().map(|&k| k.generate(opts.refs_for(k), opts.seed)).collect();
        TraceSet { traces }
    }

    /// Trace of the given kind.
    pub fn get(&self, kind: TraceKind) -> &Trace {
        let idx = TraceKind::ALL.iter().position(|&k| k == kind).expect("known kind");
        &self.traces[idx]
    }

    /// (kind, trace) pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (TraceKind, &Trace)> {
        TraceKind::ALL.iter().copied().zip(self.traces.iter())
    }
}

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 16] = [
    "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "table2", "table3", "table4",
];

/// Run one experiment by id.
///
/// # Panics
/// Panics on an unknown id (see [`ALL_IDS`]).
pub fn run_experiment(id: &str, traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    match id {
        "table1" => vec![tables::table1(traces)],
        "table2" => vec![tables::table2(traces)],
        "table3" => vec![tables::table3(traces)],
        "table4" => vec![parametric::table4(traces, opts)],
        "fig6" => headline::fig6(traces, opts),
        "fig7" | "fig8" | "fig9" | "fig10" | "fig14" | "fig16" => {
            let all = tree_behavior::reports(traces, opts);
            all.into_iter().filter(|r| r.id == id).collect()
        }
        "fig11" | "fig12" => {
            let all = tcpu::reports(traces, opts);
            all.into_iter().filter(|r| r.id == id).collect()
        }
        "fig13" => vec![memory::fig13(traces, opts)],
        "fig15" => oracle::fig15(traces, opts),
        "fig17" => parametric::fig17(traces, opts),
        "ablation" => vec![ablation::ablation(traces, opts)],
        "disks" => disks::disks(traces, opts),
        "resilience" => resilience::resilience(traces, opts),
        "snapshot" => vec![snapshot::snapshot(traces, opts)],
        other => panic!("unknown experiment id {other:?}; known: {ALL_IDS:?}"),
    }
}

/// Run every experiment, sharing the expensive sweeps.
pub fn run_all(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let mut out = Vec::new();
    out.push(tables::table1(traces));
    out.extend(headline::fig6(traces, opts));
    out.extend(tree_behavior::reports(traces, opts)); // fig7-10, 14, 16
    out.extend(tcpu::reports(traces, opts)); // fig11, 12
    out.push(memory::fig13(traces, opts));
    out.extend(oracle::fig15(traces, opts));
    out.extend(parametric::fig17(traces, opts));
    out.push(tables::table2(traces));
    out.push(tables::table3(traces));
    out.push(parametric::table4(traces, opts));
    out.push(ablation::ablation(traces, opts));
    out.extend(disks::disks(traces, opts));
    out.extend(resilience::resilience(traces, opts));
    // Order reports by paper artifact order.
    let rank = |id: &str| ALL_IDS.iter().position(|&x| id.starts_with(x)).unwrap_or(usize::MAX);
    out.sort_by_key(|r| rank(&r.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_opts_are_small() {
        let o = ExperimentOpts::quick();
        assert!(o.refs <= 10_000);
        assert!(o.cache_sizes.len() <= 4);
    }

    #[test]
    fn cad_refs_are_capped() {
        let o = ExperimentOpts::default();
        assert_eq!(o.refs_for(TraceKind::Cad), 150_000);
        assert_eq!(o.refs_for(TraceKind::Cello), 400_000);
    }

    #[test]
    fn traceset_orders_by_table1() {
        let o = ExperimentOpts { refs: 500, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&o);
        let names: Vec<_> = ts
            .iter()
            .map(|(k, t)| {
                assert_eq!(k.name(), t.meta().name);
                t.meta().name.clone()
            })
            .collect();
        assert_eq!(names, ["cello", "snake", "cad", "sitar"]);
        assert_eq!(ts.get(TraceKind::Cad).meta().name, "cad");
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        let o = ExperimentOpts { refs: 100, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&o);
        run_experiment("fig99", &ts, &o);
    }
}
