//! Figure 17 and Table 4: the effectiveness of cost-benefit analysis
//! (Section 9.7) — `tree` against the *best-tuned* parametric baselines
//! `tree-threshold` (Curewitz et al.) and `tree-children` (Kroeger & Long),
//! and the sensitivity of `tree-threshold` to its threshold.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{pct, Report};
use prefetch_trace::synth::TraceKind;

/// Thresholds swept (the paper varies 0.4 down to 0.001).
pub const THRESHOLDS: [f64; 8] = [0.4, 0.2, 0.1, 0.05, 0.025, 0.008, 0.002, 0.001];

/// Children counts swept (paper optima ranged 3 to 10).
pub const CHILDREN_KS: [usize; 4] = [1, 3, 5, 10];

/// Cache size for Table 4 (the paper does not state one; 1024 blocks sits
/// mid-sweep).
pub const TABLE4_CACHE: usize = 1024;

/// Figure 17: for cello and snake, miss rate vs cache size for `tree`, the
/// best `tree-threshold` and the best `tree-children` (best picked per
/// cache size, as the paper compares against best performance).
pub fn fig17(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let kinds = [TraceKind::Cello, TraceKind::Snake];
    let mut cells = Vec::new();
    for kind in kinds {
        let ti = trace_index(kind);
        for &cache in &opts.cache_sizes {
            cells.push((ti, SimConfig::new(cache, PolicySpec::Tree)));
            for &t in &THRESHOLDS {
                cells.push((ti, SimConfig::new(cache, PolicySpec::TreeThreshold(t))));
            }
            for &k in &CHILDREN_KS {
                cells.push((ti, SimConfig::new(cache, PolicySpec::TreeChildren(k))));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    kinds
        .iter()
        .map(|&kind| {
            let ti = trace_index(kind);
            let mut r = Report::new(
                format!("fig17-{}", kind.name()),
                format!(
                    "Figure 17 ({}): miss rate (%) — tree vs best tree-threshold vs best \
                     tree-children",
                    kind.name()
                ),
                &["cache_blocks", "tree", "best-tree-threshold", "best-tree-children"],
            );
            for &cache in &opts.cache_sizes {
                let tree = results
                    .iter()
                    .find(|c| {
                        c.trace_index == ti
                            && c.result.config.cache_blocks == cache
                            && c.result.config.policy == PolicySpec::Tree
                    })
                    .map(|c| c.result.metrics.miss_rate());
                let best_thresh = results
                    .iter()
                    .filter(|c| {
                        c.trace_index == ti
                            && c.result.config.cache_blocks == cache
                            && matches!(c.result.config.policy, PolicySpec::TreeThreshold(_))
                    })
                    .map(|c| c.result.metrics.miss_rate())
                    .fold(f64::INFINITY, f64::min);
                let best_children = results
                    .iter()
                    .filter(|c| {
                        c.trace_index == ti
                            && c.result.config.cache_blocks == cache
                            && matches!(c.result.config.policy, PolicySpec::TreeChildren(_))
                    })
                    .map(|c| c.result.metrics.miss_rate())
                    .fold(f64::INFINITY, f64::min);
                // A best-of fold over zero surviving cells is +∞ — render
                // it as the same NA as a missing tree cell.
                let finite_pct = |v: f64| if v.is_finite() { pct(v) } else { "NA".into() };
                r.push_row(vec![
                    cache.to_string(),
                    tree.map_or_else(|| "NA".into(), pct),
                    finite_pct(best_thresh),
                    finite_pct(best_children),
                ]);
            }
            r.note(
                "Paper shape: tree ≈ the BEST of the hand-tuned parametric schemes, without \
                 tuning — the cost-benefit analysis finds the right amount of prefetching.",
            );
            r
        })
        .collect()
}

/// Table 4: best and worst `tree-threshold` miss rate over the threshold
/// sweep, per trace, at a fixed cache size.
pub fn table4(traces: &TraceSet, opts: &ExperimentOpts) -> Report {
    let cache = TABLE4_CACHE.min(*opts.cache_sizes.last().unwrap_or(&TABLE4_CACHE));
    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for &t in &THRESHOLDS {
            cells.push((ti, SimConfig::new(cache, PolicySpec::TreeThreshold(t))));
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let mut r = Report::new(
        "table4",
        format!(
            "Table 4: best/worst tree-threshold miss rate (%) over thresholds \
             {THRESHOLDS:?} ({cache}-block cache)"
        ),
        &[
            "trace",
            "best_miss_rate",
            "best_threshold",
            "worst_miss_rate",
            "worst_threshold",
            "difference_pct",
        ],
    );
    for (ti, (kind, _)) in traces.iter().enumerate() {
        let mut best: Option<(f64, f64)> = None; // (miss, threshold)
        let mut worst: Option<(f64, f64)> = None;
        for c in results.iter().filter(|c| c.trace_index == ti) {
            let PolicySpec::TreeThreshold(t) = c.result.config.policy else { continue };
            let m = c.result.metrics.miss_rate();
            if best.is_none_or(|(bm, _)| m < bm) {
                best = Some((m, t));
            }
            if worst.is_none_or(|(wm, _)| m > wm) {
                worst = Some((m, t));
            }
        }
        let (Some((bm, bt)), Some((wm, wt))) = (best, worst) else {
            r.push_row(vec![
                kind.name().into(),
                "NA".into(),
                "NA".into(),
                "NA".into(),
                "NA".into(),
                "NA".into(),
            ]);
            continue;
        };
        let diff = if bm > 0.0 { (wm - bm) / bm * 100.0 } else { 0.0 };
        r.push_row(vec![
            kind.name().into(),
            pct(bm),
            format!("{bt}"),
            pct(wm),
            format!("{wt}"),
            format!("{diff:.2}"),
        ]);
    }
    r.note(
        "Paper: no single threshold is best for all traces; worst-vs-best differs by up to \
         ~15% (snake 15.12%, CAD 15.11%, sitar 10.95%, cello 1.60%).",
    );
    r
}

fn trace_index(kind: TraceKind) -> usize {
    TraceKind::ALL.iter().position(|&k| k == kind).expect("known kind")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_reports_cello_and_snake() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = fig17(&ts, &opts);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, "fig17-cello");
        assert_eq!(rs[1].id, "fig17-snake");
        for r in rs {
            assert_eq!(r.rows.len(), opts.cache_sizes.len());
        }
    }

    #[test]
    fn table4_best_is_no_worse_than_worst() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let t = table4(&ts, &opts);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let best: f64 = row[1].parse().unwrap();
            let worst: f64 = row[3].parse().unwrap();
            assert!(best <= worst, "{row:?}");
        }
    }
}
