//! Figures 11 and 12: the effect of varying `T_cpu` (computation between
//! I/Os) on the `tree` policy at a fixed 1024-block cache (Section 9.2.3).
//!
//! * Figure 11 — `s`, the average prefetches per access period, vs `T_cpu`;
//! * Figure 12 — prefetch-cache hit rate vs `T_cpu`.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, pct, Report};
use crate::sweep::PAPER_T_CPU_VALUES;

/// Cache size the paper fixes for this sweep.
pub const FIG11_CACHE: usize = 1024;

/// The two reports (fig11, fig12). Columns: `T_cpu`, then one per trace.
pub fn reports(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let cache = FIG11_CACHE.min(*opts.cache_sizes.last().unwrap_or(&FIG11_CACHE));
    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for &t_cpu in &PAPER_T_CPU_VALUES {
            cells.push((ti, SimConfig::new(cache, PolicySpec::Tree).with_t_cpu(t_cpu)));
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);
    let metric = |ti: usize, t_cpu: f64| {
        results
            .iter()
            .find(|c| c.trace_index == ti && c.result.config.params.t_cpu == t_cpu)
            .map(|c| &c.result.metrics)
    };

    let mut cols = vec!["t_cpu_ms".to_string()];
    cols.extend(traces.iter().map(|(k, _)| k.name().to_string()));

    let mut fig11 = Report {
        id: "fig11".into(),
        title: format!(
            "Figure 11: prefetches per access period (s) vs T_cpu (tree, {cache}-block cache)"
        ),
        columns: cols.clone(),
        rows: Vec::new(),
        notes: vec!["Paper shape (CAD): s rises with T_cpu then plateaus. NOTE: with the printed \
             Eq. 6 the plateau starts once T_cpu exceeds T_disk = 15 ms, below the paper's \
             smallest swept value — the sweep is extended to 1 ms to expose the rise."
            .into()],
    };
    let mut fig12 = Report {
        id: "fig12".into(),
        title: format!(
            "Figure 12: prefetch-cache hit rate (%) vs T_cpu (tree, {cache}-block cache)"
        ),
        columns: cols,
        rows: Vec::new(),
        notes: vec![
            "Paper shape: hit rate falls as T_cpu grows, then levels off (CAD ~74% beyond \
             50 ms)."
                .into(),
        ],
    };
    for &t_cpu in &PAPER_T_CPU_VALUES {
        let mut r11 = vec![format!("{t_cpu:.0}")];
        let mut r12 = vec![format!("{t_cpu:.0}")];
        for ti in 0..traces.traces.len() {
            match metric(ti, t_cpu) {
                Some(m) => {
                    r11.push(f3(m.prefetches_per_period()));
                    r12.push(pct(m.prefetch_hit_rate()));
                }
                None => {
                    r11.push("NA".into());
                    r12.push("NA".into());
                }
            }
        }
        fig11.rows.push(r11);
        fig12.rows.push(r12);
    }
    vec![fig11, fig12]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_t_cpu_values() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = reports(&ts, &opts);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, "fig11");
        assert_eq!(rs[1].id, "fig12");
        assert_eq!(rs[0].rows.len(), PAPER_T_CPU_VALUES.len());
        let xs: Vec<f64> = rs[0].rows.iter().map(|r| r[0].parse().unwrap()).collect();
        assert_eq!(xs, PAPER_T_CPU_VALUES.to_vec());
    }
}
