//! Tables 1-3: trace inventory, prediction accuracy, and last-visited-child
//! repeat rates. Tables 2 and 3 are properties of the traces and the LZ
//! tree alone (no cache), so they use the one-pass analyzer from
//! `prefetch-tree`.

use crate::experiments::TraceSet;
use crate::report::{pct, Report};
use prefetch_trace::stats::TraceStats;
use prefetch_tree::stats::analyze_blocks;

/// Table 1: the trace inventory.
pub fn table1(traces: &TraceSet) -> Report {
    let mut r = Report::new(
        "table1",
        "Table 1: traces used in the study (synthetic stand-ins; see DESIGN.md §2)",
        &["trace", "references", "unique_blocks", "l1_cache", "description"],
    );
    for (kind, trace) in traces.iter() {
        let stats = TraceStats::compute(trace);
        let l1 = trace
            .meta()
            .l1_cache_bytes
            .map(|b| format!("{} MB", b >> 20))
            .unwrap_or_else(|| "-".into());
        r.push_row(vec![
            kind.name().into(),
            stats.refs.to_string(),
            stats.unique_blocks.to_string(),
            l1,
            trace.meta().description.clone(),
        ]);
    }
    r.note("Paper: cello 3,530,115 refs (30 MB L1); snake 3,867,475 (5 MB L1); CAD 147,345; sitar 664,867.");
    r
}

/// Table 2: prediction accuracy per trace.
pub fn table2(traces: &TraceSet) -> Report {
    let mut r = Report::new(
        "table2",
        "Table 2: prediction accuracy (% of accesses predictable from the tree cursor)",
        &["trace", "prediction_accuracy", "paper_value"],
    );
    let paper = [("cello", "35.78"), ("snake", "61.50"), ("cad", "59.90"), ("sitar", "71.39")];
    for ((kind, trace), (pname, pval)) in traces.iter().zip(paper) {
        assert_eq!(kind.name(), pname);
        let stats = analyze_blocks(trace.blocks(), usize::MAX);
        r.push_row(vec![kind.name().into(), pct(stats.prediction_accuracy()), pval.into()]);
    }
    r.note("Paper shape: sitar highest, snake/CAD 60-70%, cello lowest (its 30 MB L1 strips locality).");
    r
}

/// Table 3: last-visited-child repeat rate per trace.
pub fn table3(traces: &TraceSet) -> Report {
    let mut r = Report::new(
        "table3",
        "Table 3: % of successive visits that repeat a node's last visited child",
        &["trace", "lvc_repeat_rate", "paper_value"],
    );
    let paper = [("cello", "24.37"), ("snake", "38.49"), ("cad", "68.61"), ("sitar", "73.61")];
    for ((kind, trace), (pname, pval)) in traces.iter().zip(paper) {
        assert_eq!(kind.name(), pname);
        let stats = analyze_blocks(trace.blocks(), usize::MAX);
        r.push_row(vec![kind.name().into(), pct(stats.lvc_repeat_rate()), pval.into()]);
    }
    r.note("Paper shape: CAD and sitar ~70%, cello lowest.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentOpts;

    #[test]
    fn tables_have_four_trace_rows() {
        let opts = ExperimentOpts { refs: 3000, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&opts);
        for t in [table1(&ts), table2(&ts), table3(&ts)] {
            assert_eq!(t.rows.len(), 4);
            let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
            assert_eq!(names, ["cello", "snake", "cad", "sitar"]);
        }
    }

    #[test]
    fn table2_orderings_match_paper_shape() {
        // At moderate scale, CAD and sitar must out-predict cello.
        let opts = ExperimentOpts { refs: 40_000, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&opts);
        let t = table2(&ts);
        let acc: std::collections::HashMap<String, f64> =
            t.rows.iter().map(|r| (r[0].clone(), r[1].parse().unwrap())).collect();
        assert!(acc["cad"] > acc["cello"], "{acc:?}");
        assert!(acc["sitar"] > acc["cello"], "{acc:?}");
    }
}
