//! Extension experiment: finite disks.
//!
//! The paper prices prefetching as if disks were infinite (Section 6.3:
//! "we assume an infinite number of available disks and no wait time"),
//! while noting that prefetching increased snake's disk traffic by up to
//! 180% (Figure 8 discussion). This experiment closes the loop: the same
//! policies run against a finite striped array, and the *virtual elapsed
//! time* — not the miss rate, which barely changes — shows where prefetch
//! traffic congests the disks.
//!
//! Run with `figures disks`.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, Report};
use prefetch_trace::synth::TraceKind;

/// Disk counts swept (`0` encodes the paper's infinite-disk model).
pub const DISK_COUNTS: [usize; 5] = [1, 2, 4, 16, 0];

/// Cache size for the sweep.
pub const DISKS_CACHE: usize = 1024;

/// `T_cpu` for the sweep: congestion only matters when the workload is
/// I/O-bound; at the paper's 50 ms the system is compute-bound and even
/// one disk keeps up.
pub const DISKS_T_CPU: f64 = 5.0;

/// One report per trace in `{snake, cad}`: rows = policies, columns =
/// elapsed ms per reference for each disk count.
pub fn disks(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let kinds = [TraceKind::Snake, TraceKind::Cad];
    let policies = PolicySpec::HEADLINE;
    let cache = DISKS_CACHE.min(*opts.cache_sizes.last().unwrap_or(&DISKS_CACHE));

    let mut cells = Vec::new();
    for kind in kinds {
        let ti = trace_index(kind);
        for &p in &policies {
            for &n in &DISK_COUNTS {
                let mut cfg = SimConfig::new(cache, p).with_t_cpu(DISKS_T_CPU);
                if n > 0 {
                    cfg = cfg.with_disks(n);
                }
                cells.push((ti, cfg));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    kinds
        .iter()
        .map(|&kind| {
            let ti = trace_index(kind);
            let mut cols = vec!["policy".to_string()];
            cols.extend(DISK_COUNTS.iter().map(|&n| {
                if n == 0 {
                    "disks=inf".into()
                } else {
                    format!("disks={n}")
                }
            }));
            let mut r = Report {
                id: format!("disks-{}", kind.name()),
                title: format!(
                    "Extension ({}): elapsed ms/ref vs number of disks ({cache}-block \
                     cache, T_cpu = {DISKS_T_CPU} ms)",
                    kind.name()
                ),
                columns: cols,
                rows: Vec::new(),
                notes: vec![
                    "Expected shape: with few disks, aggressive prefetching queues behind \
                     demand fetches and the elapsed-time advantage shrinks or inverts; with \
                     many disks the paper's infinite-disk numbers are recovered."
                        .into(),
                ],
            };
            for &p in &policies {
                let mut row = vec![p.name()];
                for &n in &DISK_COUNTS {
                    let cell = results.iter().find(|c| {
                        c.trace_index == ti
                            && c.result.config.policy == p
                            && c.result.config.disks.map_or(0, |d| d.num_disks) == n
                    });
                    row.push(cell.map_or_else(
                        || "NA".into(),
                        |c| f3(c.result.metrics.elapsed_ms / c.result.metrics.refs as f64),
                    ));
                }
                r.rows.push(row);
            }
            r
        })
        .collect()
}

fn trace_index(kind: TraceKind) -> usize {
    TraceKind::ALL.iter().position(|&k| k == kind).expect("known kind")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disks_experiment_shapes() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = disks(&ts, &opts);
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.rows.len(), 4); // headline policies
            assert_eq!(r.columns.len(), DISK_COUNTS.len() + 1);
            // More disks never make elapsed time worse (monotone
            // congestion relief) for no-prefetch.
            let np = &r.rows[0];
            let one: f64 = np[1].parse().unwrap();
            let inf: f64 = np[DISK_COUNTS.len()].parse().unwrap();
            assert!(inf <= one + 1e-9, "{}: infinite disks slower than one", r.id);
        }
    }
}
