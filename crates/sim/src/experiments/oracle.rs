//! Figure 15: the selection-scheme headroom study (Section 9.5) —
//! `no-prefetch` vs `tree` vs the `perfect-selector` oracle on all four
//! traces.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{pct, Report};

/// One report per trace: cache size vs the three policies' miss rates.
pub fn fig15(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let policies = [PolicySpec::NoPrefetch, PolicySpec::Tree, PolicySpec::PerfectSelector];
    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for &cache in &opts.cache_sizes {
            for &p in &policies {
                cells.push((ti, SimConfig::new(cache, p)));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    traces
        .iter()
        .enumerate()
        .map(|(ti, (kind, _))| {
            let mut r = Report::new(
                format!("fig15-{}", kind.name()),
                format!(
                    "Figure 15 ({}): miss rate (%) — no-prefetch vs tree vs perfect-selector",
                    kind.name()
                ),
                &["cache_blocks", "no-prefetch", "tree", "perfect-selector"],
            );
            for &cache in &opts.cache_sizes {
                let mut row = vec![cache.to_string()];
                for &p in &policies {
                    let cell = results.iter().find(|c| {
                        c.trace_index == ti
                            && c.result.config.cache_blocks == cache
                            && c.result.config.policy == p
                    });
                    row.push(
                        cell.map_or_else(|| "NA".into(), |c| pct(c.result.metrics.miss_rate())),
                    );
                }
                r.push_row(row);
            }
            r.note(
                "Paper shape: perfect-selector reduces miss rate considerably below tree on \
                 every trace — there is headroom in the selection scheme.",
            );
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_dominates_tree() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        for r in fig15(&ts, &opts) {
            for row in &r.rows {
                let tree: f64 = row[2].parse().unwrap();
                let oracle: f64 = row[3].parse().unwrap();
                // The oracle prefetches exactly the predictable next
                // accesses — it can only do better (small tolerance for
                // eviction interactions).
                assert!(oracle <= tree + 3.0, "{}: {row:?}", r.id);
            }
        }
    }
}
