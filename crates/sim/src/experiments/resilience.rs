//! Extension experiment: graceful degradation under injected disk faults.
//!
//! The paper assumes disks never fail. This experiment asks what happens
//! to the cost-benefit scheme when they do: a seeded [`FaultPlan`]
//! (transient read errors, slow-disk episodes, unavailability windows) is
//! swept over increasing fault rates while the headline policies run
//! against a finite striped array. Two quantities are reported per trace:
//!
//! * **elapsed ms/ref** — whether prefetching still pays for itself when
//!   reads fail and retries compete for disk time;
//! * **wasted-prefetch fraction** — prefetches that never produced a hit,
//!   including those killed by the injector; the quarantine keeps this
//!   from diverging at high fault rates.
//!
//! Run with `figures resilience`.
//!
//! [`FaultPlan`]: prefetch_disk::FaultPlan

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, Report};
use prefetch_trace::synth::TraceKind;

/// Fault rates swept (probability of a transient error per submission;
/// slow-disk and unavailability rates scale down from it — see
/// `FaultPlan::uniform`). `0.0` is the fault-free baseline.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

/// Disks in the array.
pub const RESILIENCE_DISKS: usize = 4;

/// Cache size for the sweep.
pub const RESILIENCE_CACHE: usize = 1024;

/// `T_cpu` for the sweep: like the `disks` experiment, faults only bite
/// when the workload is I/O-bound.
pub const RESILIENCE_T_CPU: f64 = 5.0;

/// Two reports per trace in `{snake, cad}`: elapsed ms/ref and the
/// wasted-prefetch fraction, rows = policies, columns = fault rates.
pub fn resilience(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let kinds = [TraceKind::Snake, TraceKind::Cad];
    let policies = PolicySpec::HEADLINE;
    let cache = RESILIENCE_CACHE.min(*opts.cache_sizes.last().unwrap_or(&RESILIENCE_CACHE));

    let mut cells = Vec::new();
    for kind in kinds {
        let ti = trace_index(kind);
        for &p in &policies {
            for &rate in &FAULT_RATES {
                let cfg = SimConfig::new(cache, p)
                    .with_t_cpu(RESILIENCE_T_CPU)
                    .with_disks(RESILIENCE_DISKS)
                    .with_fault_rate(opts.seed, rate);
                cfg.validate().expect("resilience sweep config must be valid");
                cells.push((ti, cfg));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let mut out = Vec::new();
    for &kind in &kinds {
        let ti = trace_index(kind);
        let mut cols = vec!["policy".to_string()];
        cols.extend(FAULT_RATES.iter().map(|r| format!("rate={r}")));

        let mut elapsed = Report {
            id: format!("resilience-{}", kind.name()),
            title: format!(
                "Extension ({}): elapsed ms/ref vs injected fault rate \
                 ({RESILIENCE_DISKS} disks, {cache}-block cache, T_cpu = {RESILIENCE_T_CPU} ms)",
                kind.name()
            ),
            columns: cols.clone(),
            rows: Vec::new(),
            notes: vec!["Expected shape: elapsed time grows with the fault rate for every policy \
                 (retries and give-up penalties cost virtual time), but prefetching should \
                 degrade gracefully rather than invert — quarantine stops the engine from \
                 re-issuing doomed prefetches."
                .into()],
        };
        let mut wasted = Report {
            id: format!("resilience-wasted-{}", kind.name()),
            title: format!(
                "Extension ({}): wasted-prefetch fraction vs injected fault rate",
                kind.name()
            ),
            columns: cols,
            rows: Vec::new(),
            notes: vec!["Wasted = issued prefetches that never produced a hit, including those \
                 killed by the injector. no-prefetch rows are 0 by construction."
                .into()],
        };

        for &p in &policies {
            let mut elapsed_row = vec![p.name()];
            let mut wasted_row = vec![p.name()];
            for &rate in &FAULT_RATES {
                let cell = results.iter().find(|c| {
                    c.trace_index == ti
                        && c.result.config.policy == p
                        && c.result.config.faults.map_or(0.0, |f| f.plan.transient_error_rate)
                            == rate
                });
                match cell {
                    Some(c) => {
                        let m = &c.result.metrics;
                        elapsed_row.push(f3(m.elapsed_ms / m.refs as f64));
                        wasted_row.push(f3(m.wasted_prefetch_frac()));
                    }
                    None => {
                        elapsed_row.push("NA".into());
                        wasted_row.push("NA".into());
                    }
                }
            }
            elapsed.rows.push(elapsed_row);
            wasted.rows.push(wasted_row);
        }
        out.push(elapsed);
        out.push(wasted);
    }
    out
}

fn trace_index(kind: TraceKind) -> usize {
    TraceKind::ALL.iter().position(|&k| k == kind).expect("known kind")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_experiment_shapes_and_degradation() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = resilience(&ts, &opts);
        assert_eq!(rs.len(), 4); // (elapsed, wasted) × (snake, cad)
        for r in &rs {
            assert_eq!(r.rows.len(), 4); // headline policies
            assert_eq!(r.columns.len(), FAULT_RATES.len() + 1);
        }
        // Faults cost time: for every policy the highest fault rate is
        // no faster than the fault-free baseline.
        for r in rs.iter().filter(|r| !r.id.contains("wasted")) {
            for row in &r.rows {
                let base: f64 = row[1].parse().unwrap();
                let worst: f64 = row[FAULT_RATES.len()].parse().unwrap();
                assert!(
                    worst >= base - 1e-9,
                    "{}: policy {} got faster under faults ({base} -> {worst})",
                    r.id,
                    row[0]
                );
            }
        }
    }
}
