//! Extension experiment: graceful degradation under injected disk faults.
//!
//! The paper assumes disks never fail. This experiment asks what happens
//! to the cost-benefit scheme when they do: a seeded [`FaultPlan`]
//! (transient read errors, slow-disk episodes, unavailability windows) is
//! swept over increasing fault rates while the headline policies run
//! against a finite striped array. Two quantities are reported per trace:
//!
//! * **elapsed ms/ref** — whether prefetching still pays for itself when
//!   reads fail and retries compete for disk time;
//! * **wasted-prefetch fraction** — prefetches that never produced a hit,
//!   including those killed by the injector; the quarantine keeps this
//!   from diverging at high fault rates.
//!
//! Run with `figures resilience`.
//!
//! [`FaultPlan`]: prefetch_disk::FaultPlan

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, Report};
use prefetch_trace::synth::TraceKind;

/// Fault rates swept (probability of a transient error per submission;
/// slow-disk and unavailability rates scale down from it — see
/// `FaultPlan::uniform`). `0.0` is the fault-free baseline.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

/// Disks in the array.
pub const RESILIENCE_DISKS: usize = 4;

/// Cache size for the sweep.
pub const RESILIENCE_CACHE: usize = 1024;

/// `T_cpu` for the sweep: like the `disks` experiment, faults only bite
/// when the workload is I/O-bound.
pub const RESILIENCE_T_CPU: f64 = 5.0;

/// Three reports per trace in `{snake, cad}`: elapsed ms/ref and the
/// wasted-prefetch fraction (rows = policies, columns = fault rates),
/// plus a long-format fault-accounting table (one row per policy × rate)
/// carrying the raw counters — injected faults, retries, give-ups,
/// quarantined blocks, and the reader's `skipped_records` — that the
/// summary CSVs previously dropped.
pub fn resilience(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let kinds = [TraceKind::Snake, TraceKind::Cad];
    let policies = PolicySpec::HEADLINE;
    let cache = RESILIENCE_CACHE.min(*opts.cache_sizes.last().unwrap_or(&RESILIENCE_CACHE));

    let mut cells = Vec::new();
    for kind in kinds {
        let ti = trace_index(kind);
        for &p in &policies {
            for &rate in &FAULT_RATES {
                let cfg = SimConfig::new(cache, p)
                    .with_t_cpu(RESILIENCE_T_CPU)
                    .with_disks(RESILIENCE_DISKS)
                    .with_fault_rate(opts.seed, rate);
                cfg.validate().expect("resilience sweep config must be valid");
                cells.push((ti, cfg));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let mut out = Vec::new();
    for &kind in &kinds {
        let ti = trace_index(kind);
        let mut cols = vec!["policy".to_string()];
        cols.extend(FAULT_RATES.iter().map(|r| format!("rate={r}")));

        let mut elapsed = Report {
            id: format!("resilience-{}", kind.name()),
            title: format!(
                "Extension ({}): elapsed ms/ref vs injected fault rate \
                 ({RESILIENCE_DISKS} disks, {cache}-block cache, T_cpu = {RESILIENCE_T_CPU} ms)",
                kind.name()
            ),
            columns: cols.clone(),
            rows: Vec::new(),
            notes: vec!["Expected shape: elapsed time grows with the fault rate for every policy \
                 (retries and give-up penalties cost virtual time), but prefetching should \
                 degrade gracefully rather than invert — quarantine stops the engine from \
                 re-issuing doomed prefetches."
                .into()],
        };
        let mut wasted = Report {
            id: format!("resilience-wasted-{}", kind.name()),
            title: format!(
                "Extension ({}): wasted-prefetch fraction vs injected fault rate",
                kind.name()
            ),
            columns: cols,
            rows: Vec::new(),
            notes: vec!["Wasted = issued prefetches that never produced a hit, including those \
                 killed by the injector. no-prefetch rows are 0 by construction."
                .into()],
        };
        let mut faults = Report::new(
            format!("resilience-faults-{}", kind.name()),
            format!("Extension ({}): fault accounting per policy and rate", kind.name()),
            &[
                "policy",
                "rate",
                "demand_faults",
                "demand_retries",
                "demand_read_failures",
                "prefetch_faults",
                "blocks_quarantined",
                "skipped_records",
            ],
        );
        faults.note(
            "Raw resilience counters, one row per policy x rate. skipped_records counts \
             malformed trace records the reader dropped (always 0 for synthetic traces); \
             nonzero means the other columns describe a shorter stream than requested.",
        );

        for &p in &policies {
            let mut elapsed_row = vec![p.name()];
            let mut wasted_row = vec![p.name()];
            for &rate in &FAULT_RATES {
                let cell = results.iter().find(|c| {
                    c.trace_index == ti
                        && c.result.config.policy == p
                        && c.result.config.faults.map_or(0.0, |f| f.plan.transient_error_rate)
                            == rate
                });
                match cell {
                    Some(c) => {
                        let m = &c.result.metrics;
                        elapsed_row.push(f3(m.elapsed_ms / m.refs as f64));
                        wasted_row.push(f3(m.wasted_prefetch_frac()));
                        faults.push_row(vec![
                            p.name(),
                            format!("{rate}"),
                            m.demand_faults.to_string(),
                            m.demand_retries.to_string(),
                            m.demand_read_failures.to_string(),
                            m.prefetch_faults.to_string(),
                            m.blocks_quarantined.to_string(),
                            c.result.skipped_records.to_string(),
                        ]);
                    }
                    None => {
                        elapsed_row.push("NA".into());
                        wasted_row.push("NA".into());
                        faults.push_row(vec![
                            p.name(),
                            format!("{rate}"),
                            "NA".into(),
                            "NA".into(),
                            "NA".into(),
                            "NA".into(),
                            "NA".into(),
                            "NA".into(),
                        ]);
                    }
                }
            }
            elapsed.rows.push(elapsed_row);
            wasted.rows.push(wasted_row);
        }
        out.push(elapsed);
        out.push(wasted);
        out.push(faults);
    }
    out
}

fn trace_index(kind: TraceKind) -> usize {
    TraceKind::ALL.iter().position(|&k| k == kind).expect("known kind")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_experiment_shapes_and_degradation() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = resilience(&ts, &opts);
        assert_eq!(rs.len(), 6); // (elapsed, wasted, faults) × (snake, cad)
        for r in rs.iter().filter(|r| !r.id.contains("faults")) {
            assert_eq!(r.rows.len(), 4); // headline policies
            assert_eq!(r.columns.len(), FAULT_RATES.len() + 1);
        }
        // Faults cost time: for every policy the highest fault rate is
        // no faster than the fault-free baseline.
        for r in rs.iter().filter(|r| !r.id.contains("wasted") && !r.id.contains("faults")) {
            for row in &r.rows {
                let base: f64 = row[1].parse().unwrap();
                let worst: f64 = row[FAULT_RATES.len()].parse().unwrap();
                assert!(
                    worst >= base - 1e-9,
                    "{}: policy {} got faster under faults ({base} -> {worst})",
                    r.id,
                    row[0]
                );
            }
        }
    }

    #[test]
    fn fault_counters_reach_the_csv() {
        // Regression: skipped_records and the fault counters used to be
        // dropped between SimResult and the figures CSV. The accounting
        // report must carry them, and the CSV header must name them.
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let rs = resilience(&ts, &opts);
        let faults: Vec<_> = rs.iter().filter(|r| r.id.contains("faults")).collect();
        assert_eq!(faults.len(), 2);
        for r in &faults {
            assert_eq!(r.rows.len(), 4 * FAULT_RATES.len()); // policy × rate
            let csv = r.to_csv();
            for col in [
                "demand_faults",
                "demand_retries",
                "demand_read_failures",
                "prefetch_faults",
                "blocks_quarantined",
                "skipped_records",
            ] {
                assert!(csv.lines().next().unwrap().contains(col), "{}: missing {col}", r.id);
            }
            // Fault-free rows report zero faults; the highest rate must
            // report some. Synthetic traces never skip records.
            for row in &r.rows {
                assert_eq!(row.last().unwrap(), "0", "synthetic trace skipped records");
                if row[1] == "0" {
                    assert_eq!(row[2], "0", "{}: faults at rate 0", r.id);
                }
            }
            let worst_has_faults = r
                .rows
                .iter()
                .filter(|row| row[1] == format!("{}", FAULT_RATES[FAULT_RATES.len() - 1]))
                .any(|row| row[2].parse::<u64>().unwrap() > 0);
            assert!(worst_has_faults, "{}: no faults recorded at the top rate", r.id);
        }
    }
}
