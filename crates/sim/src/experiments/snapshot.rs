//! Snapshot extension: `pftree-snap/v1` measurements per trace — exact
//! arena bytes/node against the paper's 40-byte estimate, snapshot payload
//! vs encoded size (entropy-coding ratio), and a split-run check that
//! train → snapshot → restore → continue reproduces the uninterrupted
//! run's advice and final tree state bit-for-bit.
//!
//! With [`ExperimentOpts::save_tree`] the trained trees are persisted as
//! `<dir>/<trace>.pftree`; with [`ExperimentOpts::load_tree`] training
//! warm-starts from those files instead of an empty tree (the two flags
//! compose: save one run, load the next, and the tree keeps growing).

use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, Report};
use prefetch_trace::Trace;
use prefetch_tree::PrefetchTree;

/// The paper's per-node estimate (Section 9.3): 40 bytes.
const PAPER_BYTES_PER_NODE: usize = 40;

/// Serialize to memory, panicking only on the unreachable in-memory I/O
/// error path.
fn snap_bytes(tree: &PrefetchTree) -> (Vec<u8>, prefetch_tree::SnapshotInfo) {
    let mut buf = Vec::new();
    let info = tree.write_snapshot(&mut buf).expect("in-memory snapshot cannot fail");
    (buf, info)
}

/// First predicted child (highest-weight child of the prediction anchor)
/// after each access — the advice stream the resume check compares.
fn advise(tree: &PrefetchTree, last: prefetch_trace::BlockId) -> Option<u64> {
    let anchor = tree.prediction_anchor(last);
    tree.children(anchor).next().and_then(|c| tree.block(c)).map(|b| b.0)
}

/// Train `tree` over `blocks`, collecting the advice stream.
fn train(tree: &mut PrefetchTree, blocks: &[prefetch_trace::BlockId]) -> Vec<Option<u64>> {
    let mut advice = Vec::with_capacity(blocks.len());
    for &b in blocks {
        tree.record_access(b);
        advice.push(advise(tree, b));
    }
    advice
}

/// Train on the first half, snapshot, restore, continue on the second
/// half; true iff the advice stream over the second half *and* the final
/// serialized state are identical to the uninterrupted run's.
fn resume_is_identical(trace: &Trace) -> bool {
    let blocks: Vec<_> = trace.blocks().collect();
    let mid = blocks.len() / 2;

    let mut control = PrefetchTree::new();
    train(&mut control, &blocks[..mid]);
    let control_advice = train(&mut control, &blocks[mid..]);

    let mut half = PrefetchTree::new();
    train(&mut half, &blocks[..mid]);
    let (bytes, _) = snap_bytes(&half);
    let mut restored = PrefetchTree::read_snapshot(&mut bytes.as_slice())
        .expect("snapshot of a live tree must restore");
    restored.check_invariants();
    let resumed_advice = train(&mut restored, &blocks[mid..]);

    resumed_advice == control_advice && snap_bytes(&restored).0 == snap_bytes(&control).0
}

/// Report: per trace, trained-tree size (nodes, exact bytes, bytes/node vs
/// the paper's 40 B), snapshot sizes (payload, encoded, ratio, codec), and
/// the resume-identity check.
pub fn snapshot(traces: &TraceSet, opts: &ExperimentOpts) -> Report {
    let mut r = Report::new(
        "snapshot",
        "pftree-snap/v1: exact tree memory and snapshot sizes per trace",
        &[
            "trace",
            "refs",
            "nodes",
            "exact_bytes",
            "bytes_per_node",
            "paper_bytes",
            "payload_bytes",
            "encoded_bytes",
            "ratio",
            "codec",
            "resume_identical",
        ],
    );
    for (kind, trace) in traces.iter() {
        let mut tree = match &opts.load_tree {
            Some(dir) => {
                let path = dir.join(format!("{}.pftree", kind.name()));
                let t = PrefetchTree::load_snapshot(&path).unwrap_or_else(|e| {
                    panic!("--load-tree: cannot restore {}: {e}", path.display())
                });
                r.note(format!(
                    "{}: warm-started from {} ({} nodes)",
                    kind.name(),
                    path.display(),
                    t.node_count()
                ));
                t
            }
            None => PrefetchTree::new(),
        };
        let blocks: Vec<_> = trace.blocks().collect();
        train(&mut tree, &blocks);
        let nodes = tree.node_count();
        let exact = tree.bytes_in_use();
        let (_, info) = snap_bytes(&tree);
        if let Some(dir) = &opts.save_tree {
            std::fs::create_dir_all(dir).expect("--save-tree: cannot create directory");
            let path = dir.join(format!("{}.pftree", kind.name()));
            tree.save_snapshot(&path)
                .unwrap_or_else(|e| panic!("--save-tree: cannot write {}: {e}", path.display()));
            r.note(format!("{}: saved to {}", kind.name(), path.display()));
        }
        r.push_row(vec![
            kind.name().to_string(),
            blocks.len().to_string(),
            nodes.to_string(),
            exact.to_string(),
            f3(exact as f64 / nodes.max(1) as f64),
            (nodes * PAPER_BYTES_PER_NODE).to_string(),
            info.payload_bytes.to_string(),
            info.encoded_bytes.to_string(),
            f3(info.encoded_bytes as f64 / info.payload_bytes.max(1) as f64),
            if info.entropy_coded { "huffman" } else { "raw" }.to_string(),
            resume_is_identical(trace).to_string(),
        ]);
    }
    r.note(
        "exact_bytes is PrefetchTree::bytes_in_use (SoA arena + child slab + edge index); \
         paper_bytes is the 40 B/node estimate of Section 9.3. ratio < 1 means the canonical \
         Huffman frame paid for itself; tiny trees fall back to the raw codec.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_report_covers_all_traces_and_resumes_identically() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let r = snapshot(&ts, &opts);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(row.last().unwrap(), "true", "resume mismatch for {}", row[0]);
            let exact: f64 = row[3].parse().unwrap();
            let encoded: f64 = row[7].parse().unwrap();
            assert!(exact > 0.0 && encoded > 0.0);
        }
    }

    #[test]
    fn save_then_load_warm_starts() {
        let dir = std::env::temp_dir().join(format!("pf-snap-exp-{}", std::process::id()));
        let mut opts = ExperimentOpts::quick();
        opts.refs = 2_000;
        let ts = TraceSet::generate(&opts);
        opts.save_tree = Some(dir.clone());
        let cold = snapshot(&ts, &opts);
        opts.save_tree = None;
        opts.load_tree = Some(dir.clone());
        let warm = snapshot(&ts, &opts);
        // Warm-started trees have seen the trace twice: never fewer nodes.
        for (c, w) in cold.rows.iter().zip(&warm.rows) {
            let cn: usize = c[2].parse().unwrap();
            let wn: usize = w[2].parse().unwrap();
            assert!(wn >= cn, "{}: warm {wn} < cold {cn}", c[0]);
        }
        assert!(warm.notes.iter().any(|n| n.contains("warm-started")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
