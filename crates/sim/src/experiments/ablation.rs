//! Ablations of the design choices DESIGN.md §5 calls out, plus the
//! evaluation of the re-anchoring extension. Not a paper artifact; run
//! with `figures ablation`.
//!
//! Sweeps, all on the `tree` policy at a fixed cache size:
//!
//! * **reanchor** — order-1 re-anchoring after LZ resets (extension) vs
//!   the paper's root-anchored behaviour;
//! * **x** — the Eq. 11 re-prefetch lead (1, 2, 4);
//! * **depth** — frontier depth cap (1 vs the default 8): with Patterson
//!   constants depth-1 should already capture everything (ΔT saturates);
//! * **decay** — stack-distance histogram decay (cumulative vs tracking).

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{pct, Report};

/// Cache size for the ablations.
pub const ABLATION_CACHE: usize = 1024;

/// One report: rows = traces, columns = variants' miss rates.
pub fn ablation(traces: &TraceSet, opts: &ExperimentOpts) -> Report {
    let cache = ABLATION_CACHE.min(*opts.cache_sizes.last().unwrap_or(&ABLATION_CACHE));

    let base = SimConfig::new(cache, PolicySpec::Tree);
    let mut variants: Vec<(&'static str, SimConfig)> = vec![("tree", base)];
    variants.push(("reanchor", SimConfig::new(cache, PolicySpec::TreeReanchor)));
    for x in [2u32, 4] {
        let mut cfg = base;
        cfg.engine.model.x = x;
        variants.push((if x == 2 { "x=2" } else { "x=4" }, cfg));
    }
    {
        let mut cfg = base;
        cfg.engine.max_depth = 1;
        variants.push(("depth=1", cfg));
    }
    {
        let mut cfg = base;
        cfg.engine.stack_decay = 1.0;
        variants.push(("no-decay", cfg));
    }

    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for (_, cfg) in &variants {
            cells.push((ti, *cfg));
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let mut cols = vec!["trace".to_string()];
    cols.extend(variants.iter().map(|(n, _)| format!("miss%_{n}")));
    let mut r = Report {
        id: "ablation".into(),
        title: format!("Ablations of the cost-benefit engine (tree policy, {cache}-block cache)"),
        columns: cols,
        rows: Vec::new(),
        notes: vec!["reanchor is the order-1 extension; the others perturb DESIGN.md §5 choices. \
             With Patterson constants depth=1 should match the default (ΔT_pf saturates at \
             one access period of compute)."
            .into()],
    };
    for (ti, (kind, _)) in traces.iter().enumerate() {
        let mut row = vec![kind.name().to_string()];
        for (_, cfg) in &variants {
            // Look cells up by configuration, not position: with the
            // resilient harness a failed cell is simply absent.
            let cell = results.iter().find(|c| c.trace_index == ti && c.result.config == *cfg);
            row.push(cell.map_or_else(|| "NA".into(), |c| pct(c.result.metrics.miss_rate())));
        }
        r.rows.push(row);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_variants_and_traces() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let r = ablation(&ts, &opts);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.columns.len(), 7); // trace + 6 variants
    }

    #[test]
    fn depth_one_matches_default_with_patterson_constants() {
        // ΔT_pf saturates at depth 1 when T_cpu > T_disk, so deeper
        // frontier exploration can never find positive net benefit — the
        // two variants must behave identically.
        let opts = ExperimentOpts { refs: 20_000, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&opts);
        let r = ablation(&ts, &opts);
        let depth1_col = r.columns.iter().position(|c| c == "miss%_depth=1").unwrap();
        let tree_col = r.columns.iter().position(|c| c == "miss%_tree").unwrap();
        for row in &r.rows {
            let a: f64 = row[tree_col].parse().unwrap();
            let b: f64 = row[depth1_col].parse().unwrap();
            assert!((a - b).abs() < 0.5, "{}: tree {a} vs depth1 {b}", row[0]);
        }
    }

    #[test]
    fn reanchor_never_hurts_clearly() {
        let opts = ExperimentOpts { refs: 20_000, ..ExperimentOpts::quick() };
        let ts = TraceSet::generate(&opts);
        let r = ablation(&ts, &opts);
        let re_col = r.columns.iter().position(|c| c == "miss%_reanchor").unwrap();
        let tree_col = r.columns.iter().position(|c| c == "miss%_tree").unwrap();
        for row in &r.rows {
            let tree: f64 = row[tree_col].parse().unwrap();
            let re: f64 = row[re_col].parse().unwrap();
            assert!(re <= tree + 2.0, "{}: reanchor {re} much worse than tree {tree}", row[0]);
        }
    }
}
