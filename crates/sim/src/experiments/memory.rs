//! Figure 13: memory usage of the prefetch tree (Section 9.3) — the `tree`
//! policy's miss rate, relative to `no-prefetch`, as the tree's node count
//! is limited by LRU substring eviction. The paper finds ~32 K nodes
//! (≈1.25 MB at 40 bytes/node) suffices for the CAD trace.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{f3, Report};
use prefetch_trace::synth::TraceKind;

/// Node limits swept (the paper's x-axis, 1 K to 128 K nodes, plus
/// unlimited as reference).
pub const NODE_LIMITS: [usize; 8] = [1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072];

/// Cache sizes for the curves (one column per cache size).
pub const FIG13_CACHES: [usize; 3] = [256, 1024, 4096];

/// Report: node limit (and its paper-bytes equivalent) vs
/// `miss(tree, limited) / miss(no-prefetch)` per cache size, CAD trace.
pub fn fig13(traces: &TraceSet, opts: &ExperimentOpts) -> Report {
    let ti = TraceKind::ALL.iter().position(|&k| k == TraceKind::Cad).unwrap();
    let caches: Vec<usize> = FIG13_CACHES
        .iter()
        .copied()
        .filter(|c| *c <= *opts.cache_sizes.last().unwrap_or(&usize::MAX))
        .collect();

    let mut cells = Vec::new();
    for &cache in &caches {
        cells.push((ti, SimConfig::new(cache, PolicySpec::NoPrefetch)));
        for &limit in &NODE_LIMITS {
            cells.push((ti, SimConfig::new(cache, PolicySpec::Tree).with_node_limit(limit)));
        }
        cells.push((ti, SimConfig::new(cache, PolicySpec::Tree))); // unlimited
    }
    let results = opts.run_cells(&traces.traces, &cells);
    let find = |cache: usize, policy: PolicySpec, limit: usize| {
        results
            .iter()
            .find(|c| {
                c.result.config.cache_blocks == cache
                    && c.result.config.policy == policy
                    && c.result.config.engine.node_limit == limit
            })
            .map(|c| c.result.metrics.miss_rate())
    };

    let mut cols = vec!["node_limit".to_string(), "approx_memory_kb".to_string()];
    cols.extend(caches.iter().map(|c| format!("cache_{c}")));
    let mut r = Report {
        id: "fig13".into(),
        title: "Figure 13: tree miss rate relative to no-prefetch vs tree node limit (CAD)".into(),
        columns: cols,
        rows: Vec::new(),
        notes: vec![
            "Cells are miss(tree, node-limited) / miss(no-prefetch); 40 bytes per node as in \
             the paper. Paper shape: flattens by ~32K nodes (~1.25 MB)."
                .into(),
        ],
    };
    for &limit in NODE_LIMITS.iter().chain([usize::MAX].iter()) {
        let label = if limit == usize::MAX { "unlimited".to_string() } else { limit.to_string() };
        let kb =
            if limit == usize::MAX { "-".to_string() } else { format!("{}", limit * 40 / 1024) };
        let mut row = vec![label, kb];
        for &cache in &caches {
            let base = find(cache, PolicySpec::NoPrefetch, usize::MAX);
            let tree = find(cache, PolicySpec::Tree, limit);
            row.push(match (base, tree) {
                (Some(base), Some(tree)) if base > 0.0 => f3(tree / base),
                (Some(_), Some(_)) => "-".into(),
                _ => "NA".into(),
            });
        }
        r.rows.push(row);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_covers_all_limits() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let r = fig13(&ts, &opts);
        assert_eq!(r.rows.len(), NODE_LIMITS.len() + 1);
        assert_eq!(r.rows.last().unwrap()[0], "unlimited");
        // Memory column: 32768 nodes × 40 B = 1280 KB, the paper's ~1.25 MB.
        let row_32k = r.rows.iter().find(|row| row[0] == "32768").unwrap();
        assert_eq!(row_32k[1], "1280");
    }

    #[test]
    fn limited_tree_is_no_better_than_unlimited() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let r = fig13(&ts, &opts);
        // Relative miss of the smallest limit >= relative miss of
        // unlimited (within noise): less memory can't help.
        let first: f64 = r.rows.first().unwrap()[2].parse().unwrap();
        let unlimited: f64 = r.rows.last().unwrap()[2].parse().unwrap();
        assert!(first >= unlimited - 0.1, "1K-node tree beat unlimited: {first} vs {unlimited}");
    }
}
