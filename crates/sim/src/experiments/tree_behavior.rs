//! Figures 7-10, 14 and 16: the behaviour of the `tree` policy as cache
//! size grows. All six figures come from a single (trace × cache size)
//! sweep of the `tree` policy, so they are computed together.
//!
//! * Figure 7 — fraction of chosen prefetch candidates already resident;
//! * Figure 8 — blocks prefetched per access period;
//! * Figure 9 — prefetch-cache hit rate;
//! * Figure 10 — mean tree probability of prefetched blocks;
//! * Figure 14 — fraction of predictable accesses not already cached;
//! * Figure 16 — fraction of last-visited children already cached.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::metrics::SimMetrics;
use crate::report::{f3, pct, Report};

/// The six reports (fig7, fig8, fig9, fig10, fig14, fig16). Columns: cache
/// size, then one column per trace.
pub fn reports(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for &cache in &opts.cache_sizes {
            cells.push((ti, SimConfig::new(cache, PolicySpec::Tree)));
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let metric_of = |ti: usize, cache: usize| -> Option<&SimMetrics> {
        results
            .iter()
            .find(|c| c.trace_index == ti && c.result.config.cache_blocks == cache)
            .map(|c| &c.result.metrics)
    };

    struct Spec {
        id: &'static str,
        title: &'static str,
        note: &'static str,
        extract: fn(&SimMetrics) -> String,
    }
    let specs = [
        Spec {
            id: "fig7",
            title: "Figure 7: % of chosen prefetch candidates already cached vs cache size (tree)",
            note: "Paper shape: rises with cache size; >85% above 2048 blocks.",
            extract: |m| pct(m.candidates_already_cached_frac()),
        },
        Spec {
            id: "fig8",
            title: "Figure 8: blocks prefetched per access period vs cache size (tree)",
            note: "Paper shape: falls with cache size; snake highest (~2 at small caches), \
                   <1/3 for all traces at large caches.",
            extract: |m| f3(m.prefetches_per_period()),
        },
        Spec {
            id: "fig9",
            title: "Figure 9: prefetch-cache hit rate (%) vs cache size (tree)",
            note: "Paper shape: CAD ~75%, the other traces low (~10%).",
            extract: |m| pct(m.prefetch_hit_rate()),
        },
        Spec {
            id: "fig10",
            title: "Figure 10: mean probability of prefetched blocks vs cache size (tree)",
            note: "Paper shape: CAD clearly higher than the other traces.",
            extract: |m| f3(m.mean_prefetch_probability()),
        },
        Spec {
            id: "fig14",
            title: "Figure 14: % of predictable blocks NOT already cached vs cache size (tree)",
            note: "Paper shape: low (~15%) for snake, CAD, sitar — the tree's candidates are \
                   mostly already resident.",
            extract: |m| pct(m.predictable_not_cached_frac()),
        },
        Spec {
            id: "fig16",
            title: "Figure 16: % of last-visited children already cached vs cache size (tree)",
            note: "Paper shape: >85% for most cache sizes — why tree-lvc does not help.",
            extract: |m| pct(m.lvc_cached_frac()),
        },
    ];

    specs
        .iter()
        .map(|spec| {
            let mut cols = vec!["cache_blocks".to_string()];
            cols.extend(traces.iter().map(|(k, _)| k.name().to_string()));
            let mut r = Report {
                id: spec.id.into(),
                title: spec.title.into(),
                columns: cols,
                rows: Vec::new(),
                notes: vec![spec.note.into()],
            };
            for &cache in &opts.cache_sizes {
                let mut row = vec![cache.to_string()];
                for ti in 0..traces.traces.len() {
                    row.push(metric_of(ti, cache).map_or_else(|| "NA".into(), spec.extract));
                }
                r.rows.push(row);
            }
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_six_reports_over_the_sweep() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let reports = reports(&ts, &opts);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["fig7", "fig8", "fig9", "fig10", "fig14", "fig16"]);
        for r in &reports {
            assert_eq!(r.rows.len(), opts.cache_sizes.len());
            assert_eq!(r.columns.len(), 5);
        }
    }

    #[test]
    fn fig7_fraction_rises_with_cache_size() {
        // More cache → more candidates already resident. Check the trend
        // loosely (first vs last cache size) on the most predictable trace.
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let all = reports(&ts, &opts);
        let fig7 = &all[0];
        let cad_col = 3; // cache, cello, snake, cad, sitar
        let first: f64 = fig7.rows.first().unwrap()[cad_col].parse().unwrap();
        let last: f64 = fig7.rows.last().unwrap()[cad_col].parse().unwrap();
        assert!(last >= first - 5.0, "fig7 CAD fell: {first} -> {last}");
    }
}
