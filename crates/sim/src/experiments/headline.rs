//! Figure 6: the headline comparison — miss rate vs cache size for
//! `no-prefetch`, `next-limit`, `tree` and `tree-next-limit` on all four
//! traces.

use crate::config::{PolicySpec, SimConfig};
use crate::experiments::{ExperimentOpts, TraceSet};
use crate::report::{pct, Report};

/// One report per trace, columns: cache size then the four policies'
/// miss rates in percent.
pub fn fig6(traces: &TraceSet, opts: &ExperimentOpts) -> Vec<Report> {
    let policies = PolicySpec::HEADLINE;
    let mut cells = Vec::new();
    for ti in 0..traces.traces.len() {
        for &cache in &opts.cache_sizes {
            for &p in &policies {
                cells.push((ti, SimConfig::new(cache, p)));
            }
        }
    }
    let results = opts.run_cells(&traces.traces, &cells);

    let mut reports = Vec::new();
    for (ti, (kind, _)) in traces.iter().enumerate() {
        let mut r = Report::new(
            format!("fig6-{}", kind.name()),
            format!("Figure 6 ({}): miss rate (%) vs cache size", kind.name()),
            &["cache_blocks", "no-prefetch", "next-limit", "tree", "tree-next-limit"],
        );
        for &cache in &opts.cache_sizes {
            let mut row = vec![cache.to_string()];
            for &p in &policies {
                let cell = results.iter().find(|c| {
                    c.trace_index == ti
                        && c.result.config.cache_blocks == cache
                        && c.result.config.policy == p
                });
                row.push(cell.map_or_else(|| "NA".into(), |c| pct(c.result.metrics.miss_rate())));
            }
            r.push_row(row);
        }
        r.note(
            "Paper shape: tree-next-limit lowest overall; next-limit ≈ no-prefetch on CAD; \
             tree ≈ no-prefetch on sitar; tree+next-limit reductions are roughly additive.",
        );
        reports.push(r);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_produces_four_reports_with_full_grid() {
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        let reports = fig6(&ts, &opts);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.rows.len(), opts.cache_sizes.len());
            assert_eq!(r.columns.len(), 5);
            // Miss rates are valid percentages.
            for row in &r.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!((0.0..=100.0).contains(&v), "{cell}");
                }
            }
        }
    }

    #[test]
    fn prefetching_never_hurts_much_on_quick_traces() {
        // The paper's headline claim at small scale: tree-next-limit's miss
        // rate is at most no-prefetch's plus a small tolerance.
        let opts = ExperimentOpts::quick();
        let ts = TraceSet::generate(&opts);
        for r in fig6(&ts, &opts) {
            for row in &r.rows {
                let base: f64 = row[1].parse().unwrap();
                let tnl: f64 = row[4].parse().unwrap();
                assert!(tnl <= base + 8.0, "{}: {row:?}", r.id);
            }
        }
    }
}
