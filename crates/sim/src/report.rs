//! Report formatting: CSV series and aligned markdown tables, the output
//! format of the `figures` harness.

use std::fmt::Write as _;

/// A rectangular report: named columns, rows of cells, with a title and
/// free-form notes (e.g. the paper-expected shape).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Identifier, e.g. `"fig6"`.
    pub id: String,
    /// Human title, e.g. `"Figure 6: miss rate vs cache size"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row-major cells, one `Vec` per row, same length as `columns`.
    pub rows: Vec<Vec<String>>,
    /// Notes appended to the rendering (paper comparison, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// A report with the given id/title and columns.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch in report {}", self.id);
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as CSV (header + rows; notes as trailing `#` comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }

    /// Render as an aligned markdown table with the title as a heading.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let pad = |s: &str, w: usize| format!("{s:<w$}");
        let _ = writeln!(
            out,
            "| {} |",
            self.columns
                .iter()
                .zip(&widths)
                .map(|(c, &w)| pad(c, w))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            widths.iter().map(|&w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().zip(&widths).map(|(c, &w)| pad(c, w)).collect::<Vec<_>>().join(" | ")
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

/// Format a rate as a percentage with two decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("figX", "demo", &["cache", "miss%"]);
        r.push_row(vec!["64".into(), "50.00".into()]);
        r.push_row(vec!["128".into(), "40.00".into()]);
        r.note("shape: decreasing");
        r
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("cache,miss%\n64,50.00\n128,40.00\n"));
        assert!(csv.contains("# shape: decreasing"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut r = Report::new("x", "t", &["a"]);
        r.push_row(vec!["hello, \"world\"".into()]);
        assert!(r.to_csv().contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        assert!(md.contains("### figX — demo"));
        assert!(md.contains("| cache | miss% |"));
        assert!(md.contains("> shape: decreasing"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(f3(1.23456), "1.235");
    }
}
