//! Resilient sweep orchestration: panic isolation, deadlines, retries,
//! and crash-safe resume.
//!
//! The plain sweeps in [`crate::sweep`] assume every cell succeeds; for
//! paper-scale grids (hundreds of cells, hours of wall-clock) that
//! assumption makes the whole run as fragile as its weakest cell. This
//! module wraps each cell in its own fault domain:
//!
//! * a panicking cell (simulator invariant violation, policy bug) is
//!   caught with [`std::panic::catch_unwind`] and reported as
//!   [`CellStatus::Failed`] while its siblings run to completion;
//! * a cell exceeding the per-cell wall-clock deadline is cut off
//!   cooperatively by [`DeadlineGuard`] and reported as
//!   [`CellStatus::TimedOut`];
//! * an invalid configuration is [`CellStatus::Skipped`] without burning
//!   a retry;
//! * transient failures are retried up to [`HarnessOpts::max_attempts`]
//!   times with exponential backoff;
//! * completed cells are journaled through a
//!   [`crate::checkpoint::CheckpointJournal`], so a killed run resumes
//!   where it stopped and reproduces the full grid bit-identically.
//!
//! The only hard error is [`SweepError::BadTraceIndex`] — a malformed
//! cell list is a caller bug, detected up front before any work runs.

use crate::checkpoint::{cell_fingerprint, CheckpointError, CheckpointJournal, JournalEntry};
use crate::config::{SimConfig, SimConfigError};
use crate::metrics::SimMetrics;
use crate::observer::{NullObserver, SimEvent, SimObserver};
use crate::runner::SimResult;
use crate::simulator::Simulator;
use crate::sweep::SweepCell;
use prefetch_telemetry::{log as tlog, PhaseTimes};
use prefetch_trace::{Trace, TraceSource};
use rayon::prelude::*;
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Why a sweep — or one of its cells — could not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepError {
    /// A cell named a trace index outside the trace list. Caller bug;
    /// detected before any cell runs (the sweep-level hard error).
    BadTraceIndex {
        /// The offending index.
        index: usize,
        /// Length of the trace list.
        traces: usize,
    },
    /// The cell's configuration failed [`SimConfig::validate`].
    InvalidConfig(SimConfigError),
    /// The cell's simulation panicked (simulator or policy bug).
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// The cell exceeded its per-cell wall-clock deadline.
    DeadlineExceeded {
        /// The deadline it exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The cell's trace source failed (I/O error, corrupt stream).
    TraceIo {
        /// Rendered source error.
        message: String,
    },
    /// The checkpoint journal failed (checkpointing degrades to off; this
    /// surfaces only in logs, never aborts a sweep).
    Checkpoint(CheckpointError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::BadTraceIndex { index, traces } => {
                write!(f, "trace index {index} out of range (sweep has {traces} traces)")
            }
            SweepError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            SweepError::Panicked { message } => write!(f, "simulation panicked: {message}"),
            SweepError::DeadlineExceeded { limit_ms } => {
                write!(f, "cell exceeded its {limit_ms} ms deadline")
            }
            SweepError::TraceIo { message } => write!(f, "trace source failed: {message}"),
            SweepError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Terminal state of one sweep cell.
#[derive(Clone, Debug)]
pub enum CellStatus {
    /// The cell completed (possibly restored from a checkpoint). Boxed:
    /// a result is an order of magnitude larger than any error variant,
    /// and sweeps hold one `CellStatus` per cell.
    Ok(Box<SimResult>),
    /// Every attempt failed; the error of the last attempt.
    Failed {
        /// What the final attempt died of.
        error: SweepError,
    },
    /// Every attempt exceeded the per-cell deadline.
    TimedOut {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
    },
    /// The cell was not attempted (invalid configuration — deterministic,
    /// so retrying would be pointless).
    Skipped {
        /// Why, rendered for reports.
        reason: String,
    },
}

/// One cell's outcome with its execution provenance.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Index of the cell's trace in the sweep's trace list.
    pub trace_index: usize,
    /// The configuration the cell ran.
    pub config: SimConfig,
    /// How the cell ended.
    pub status: CellStatus,
    /// Simulation attempts spent (0 when restored or skipped).
    pub attempts: u32,
    /// Whether the result came from the checkpoint journal instead of a
    /// fresh simulation.
    pub restored: bool,
}

impl CellOutcome {
    /// The completed result, if any.
    pub fn result(&self) -> Option<&SimResult> {
        match &self.status {
            CellStatus::Ok(r) => Some(r.as_ref()),
            _ => None,
        }
    }
}

/// Outcome of a whole resilient sweep: one [`CellOutcome`] per input
/// cell, in input order.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Per-cell outcomes, parallel to the input cell list.
    pub cells: Vec<CellOutcome>,
}

impl SweepRun {
    /// The completed cells as plain [`SweepCell`]s (failed, timed-out and
    /// skipped cells are absent — callers render those as `NA`).
    pub fn completed_cells(&self) -> Vec<SweepCell> {
        self.cells
            .iter()
            .filter_map(|c| {
                c.result().map(|r| SweepCell { trace_index: c.trace_index, result: r.clone() })
            })
            .collect()
    }

    /// Cells that did not complete (failed, timed out, or skipped).
    pub fn incomplete(&self) -> impl Iterator<Item = &CellOutcome> {
        self.cells.iter().filter(|c| c.result().is_none())
    }

    /// Whether every cell completed.
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| c.result().is_some())
    }
}

// ---------------------------------------------------------------------------
// Run log: cross-experiment tally of what went wrong (and what resumed)
// ---------------------------------------------------------------------------

/// Aggregate counters over one or more resilient sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Cells that completed by simulation.
    pub ok: u64,
    /// Cells restored from the checkpoint journal without re-running.
    pub restored: u64,
    /// Cells that failed every attempt.
    pub failed: u64,
    /// Cells that exceeded their deadline on every attempt.
    pub timed_out: u64,
    /// Cells skipped (invalid configuration).
    pub skipped: u64,
    /// Extra attempts spent on retries (attempts beyond the first).
    pub retries: u64,
}

impl SweepSummary {
    /// Cells that produced no result.
    pub fn incomplete(&self) -> u64 {
        self.failed + self.timed_out + self.skipped
    }
}

/// One failed/timed-out/skipped cell, rendered for reports.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Trace name of the cell.
    pub trace: String,
    /// Cell description (policy, cache size).
    pub cell: String,
    /// Rendered error.
    pub error: String,
}

#[derive(Debug, Default)]
struct SweepLogInner {
    summary: SweepSummary,
    failures: Vec<FailureRecord>,
    notes: Vec<String>,
    /// References simulated by freshly-run Ok cells (restored cells did
    /// no work, so they are excluded — this is a *throughput* counter).
    refs_simulated: u64,
    /// Per-phase profile summed over freshly-run Ok cells.
    phases: PhaseTimes,
}

/// Shared, thread-safe log that accumulates sweep outcomes across the
/// experiments of one invocation (the `figures` binary reports it at the
/// end and derives its exit code from it).
///
/// Poisoning is deliberately ignored: every access recovers the inner
/// state with `unwrap_or_else(|e| e.into_inner())`. The log only ever
/// appends counters and records, so a panic while a section holds the
/// lock leaves it consistent — and a harness whose whole point is
/// isolating panicking cells must keep logging after a sibling panics
/// instead of cascading `PoisonError` panics through every other cell.
#[derive(Debug, Default)]
pub struct SweepLog {
    inner: Mutex<SweepLogInner>,
}

impl SweepLog {
    /// Fold one sweep's outcomes into the log.
    pub fn absorb(&self, run: &SweepRun, trace_names: &[Arc<str>]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for cell in &run.cells {
            let trace = trace_names
                .get(cell.trace_index)
                .map_or_else(|| format!("trace#{}", cell.trace_index), |n| n.to_string());
            let describe = |error: String| FailureRecord {
                trace: trace.clone(),
                cell: format!(
                    "{} @ {} blocks",
                    cell.config.policy.name(),
                    cell.config.cache_blocks
                ),
                error,
            };
            inner.summary.retries += u64::from(cell.attempts.saturating_sub(1));
            match &cell.status {
                CellStatus::Ok(_) if cell.restored => inner.summary.restored += 1,
                CellStatus::Ok(r) => {
                    inner.summary.ok += 1;
                    inner.refs_simulated += r.metrics.refs;
                    inner.phases.merge(&r.phases);
                }
                CellStatus::Failed { error } => {
                    inner.summary.failed += 1;
                    let record = describe(error.to_string());
                    inner.failures.push(record);
                }
                CellStatus::TimedOut { limit_ms } => {
                    inner.summary.timed_out += 1;
                    let record = describe(format!("exceeded {limit_ms} ms deadline"));
                    inner.failures.push(record);
                }
                CellStatus::Skipped { reason } => {
                    inner.summary.skipped += 1;
                    let record = describe(format!("skipped: {reason}"));
                    inner.failures.push(record);
                }
            }
        }
    }

    /// Record an operational note (checkpoint degradation, resume counts).
    pub fn note(&self, message: String) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).notes.push(message);
    }

    /// Snapshot of the counters.
    pub fn summary(&self) -> SweepSummary {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).summary
    }

    /// Snapshot of the per-cell failure records.
    pub fn failures(&self) -> Vec<FailureRecord> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).failures.clone()
    }

    /// Snapshot of the operational notes.
    pub fn notes(&self) -> Vec<String> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).notes.clone()
    }

    /// Whether any cell anywhere failed to produce a result.
    pub fn has_failures(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).summary.incomplete() > 0
    }

    /// References simulated by freshly-run Ok cells (restored cells
    /// excluded), for throughput reporting.
    pub fn refs_simulated(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).refs_simulated
    }

    /// Per-phase profile summed over freshly-run Ok cells (all zero
    /// unless [`HarnessOpts::profile`] was set).
    pub fn phases(&self) -> PhaseTimes {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).phases
    }
}

// ---------------------------------------------------------------------------
// Harness options
// ---------------------------------------------------------------------------

/// Knobs of the resilient harness. `Default` runs exactly like the plain
/// sweep (no checkpointing, no deadline) plus one retry and panic
/// isolation.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Directory for the checkpoint journal; `None` disables
    /// checkpointing. A journal already present there is resumed from.
    pub checkpoint_dir: Option<PathBuf>,
    /// Per-cell wall-clock deadline in milliseconds; `None` means
    /// unlimited.
    pub deadline_ms: Option<u64>,
    /// Simulation attempts per cell, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (doubles per retry), in ms.
    pub backoff_base_ms: u64,
    /// Journal flush cadence, in completed cells.
    pub flush_every: usize,
    /// Shared outcome log (cloned handles append to the same log).
    pub log: Arc<SweepLog>,
    /// Collect per-phase profiling for every freshly-run cell. The cell
    /// runs under a profiled *copy* of its config while the reported
    /// [`SimResult::config`] (and the checkpoint fingerprint) stay the
    /// caller's — config-equality lookups are unaffected.
    pub profile: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            checkpoint_dir: None,
            deadline_ms: None,
            max_attempts: 2,
            backoff_base_ms: 25,
            flush_every: 16,
            log: Arc::new(SweepLog::default()),
            profile: false,
        }
    }
}

impl HarnessOpts {
    /// Options with checkpointing into `dir`.
    pub fn checkpointed(dir: impl Into<PathBuf>) -> Self {
        HarnessOpts { checkpoint_dir: Some(dir.into()), ..HarnessOpts::default() }
    }
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread runs a cell under `quiet_catch`: the panic
    /// hook stays silent (the panic becomes a typed `SweepError`, so the
    /// default hook's backtrace spam would only obscure real output).
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Payload thrown by [`DeadlineGuard`]; recognized by `classify_panic` so
/// a deadline cut-off is not misreported as a crash.
struct DeadlinePayload {
    limit_ms: u64,
}

fn classify_panic(payload: Box<dyn Any + Send>) -> SweepError {
    if let Some(d) = payload.downcast_ref::<DeadlinePayload>() {
        return SweepError::DeadlineExceeded { limit_ms: d.limit_ms };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    SweepError::Panicked { message }
}

/// Run `f` in its own panic domain: a panic (including the deadline
/// payload) comes back as a typed [`SweepError`] instead of unwinding
/// into — and aborting — the sweep.
fn quiet_catch<T>(f: impl FnOnce() -> T) -> Result<T, SweepError> {
    install_quiet_panic_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    outcome.map_err(classify_panic)
}

// ---------------------------------------------------------------------------
// Deadline guard
// ---------------------------------------------------------------------------

/// Cooperative per-cell deadline: an observer that checks the wall clock
/// every [`DeadlineGuard::CHECK_EVERY`] events and aborts the simulation
/// (with a typed payload, caught by the harness) once the budget is
/// spent. Cooperative, so it adds one decrement per event and needs no
/// watcher thread; a cell is cut off within `CHECK_EVERY` events of its
/// deadline rather than at the exact instant.
#[derive(Debug)]
pub struct DeadlineGuard {
    deadline: Option<(Instant, u64)>,
    countdown: u32,
}

impl DeadlineGuard {
    /// Events between clock reads (reading `Instant` per event would
    /// dominate small-cell runtime).
    pub const CHECK_EVERY: u32 = 4096;

    /// A guard enforcing `limit_ms` from now; `None` never fires.
    pub fn new(limit_ms: Option<u64>) -> Self {
        DeadlineGuard {
            deadline: limit_ms.map(|ms| (Instant::now(), ms)),
            countdown: Self::CHECK_EVERY,
        }
    }

    /// A guard that never fires (one code path for both cases).
    pub fn unlimited() -> Self {
        Self::new(None)
    }

    fn check(&mut self) {
        let Some((started, limit_ms)) = self.deadline else { return };
        self.countdown -= 1;
        if self.countdown > 0 {
            return;
        }
        self.countdown = Self::CHECK_EVERY;
        if started.elapsed() >= Duration::from_millis(limit_ms) {
            std::panic::panic_any(DeadlinePayload { limit_ms });
        }
    }
}

impl SimObserver for DeadlineGuard {
    fn on_event(&mut self, _event: &SimEvent<'_>) {
        self.check();
    }
}

// ---------------------------------------------------------------------------
// Guarded execution
// ---------------------------------------------------------------------------

/// Run a streaming source with panic isolation and an optional deadline:
/// the single-run counterpart of the sweep harness, used by `pfsim` to
/// turn every failure mode into a structured exit instead of an abort.
pub fn run_source_guarded<S: TraceSource>(
    source: &mut S,
    config: &SimConfig,
    deadline_ms: Option<u64>,
) -> Result<SimResult, SweepError> {
    run_source_guarded_with(source, config, deadline_ms, &mut NullObserver)
}

/// [`run_source_guarded`] with an extra observer spliced into the event
/// stream (after metrics and the deadline guard), so front ends can
/// attach histograms or an event sink without giving up the guard rails.
pub fn run_source_guarded_with<S: TraceSource>(
    source: &mut S,
    config: &SimConfig,
    deadline_ms: Option<u64>,
    extra: &mut dyn SimObserver,
) -> Result<SimResult, SweepError> {
    config.validate().map_err(SweepError::InvalidConfig)?;
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    let run = quiet_catch(|| {
        let mut obs = (SimMetrics::default(), DeadlineGuard::new(deadline_ms), extra);
        match Simulator::run(&mut *source, config, &mut obs) {
            Ok(phases) => {
                obs.0.check_invariants();
                Some((obs.0, phases))
            }
            Err(e) => {
                *io_error.lock().unwrap() = Some(e.to_string());
                None
            }
        }
    })?;
    match run {
        Some((metrics, phases)) => Ok(SimResult {
            config: *config,
            trace: Arc::from(source.meta().name.as_str()),
            metrics,
            skipped_records: source.skipped(),
            phases,
        }),
        None => {
            let message = io_error.lock().unwrap().take().unwrap_or_default();
            Err(SweepError::TraceIo { message })
        }
    }
}

/// [`run_source_guarded_with`] plus `pftree-snap/v1` plumbing: `warm_tree`
/// (restored by the caller from a snapshot) is installed into the policy
/// before the first reference, and when `want_tree` is set the policy's
/// trained tree is returned alongside the result so the caller can
/// persist it. A warm tree handed to a treeless policy (e.g.
/// `no-prefetch`) is dropped; the run proceeds cold and the mismatch is
/// logged rather than fatal — the caller asked for that policy.
pub fn run_source_guarded_snapshot<S: TraceSource>(
    source: &mut S,
    config: &SimConfig,
    deadline_ms: Option<u64>,
    extra: &mut dyn SimObserver,
    warm_tree: Option<prefetch_tree::PrefetchTree>,
    want_tree: bool,
) -> Result<(SimResult, Option<prefetch_tree::PrefetchTree>), SweepError> {
    config.validate().map_err(SweepError::InvalidConfig)?;
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    let run = quiet_catch(AssertUnwindSafe(|| {
        let mut obs = (SimMetrics::default(), DeadlineGuard::new(deadline_ms), extra);
        let mut sim = Simulator::new(config);
        if let Some(tree) = warm_tree {
            if !sim.install_tree(tree) {
                tlog::warn("warm_start_dropped").str("policy", config.policy.name()).emit();
            }
        }
        let mut drive = || -> Result<(), prefetch_trace::io::TraceIoError> {
            let mut pending = source.next_record()?;
            while let Some(rec) = pending {
                let next = source.next_record()?;
                sim.step(rec, next.map(|r| r.block), &mut obs);
                pending = next;
            }
            Ok(())
        };
        match drive() {
            Ok(()) => {
                let tree = if want_tree { sim.tree().cloned() } else { None };
                let phases = sim.finish(&mut obs);
                obs.0.check_invariants();
                Some((obs.0, phases, tree))
            }
            Err(e) => {
                *io_error.lock().unwrap() = Some(e.to_string());
                None
            }
        }
    }))?;
    match run {
        Some((metrics, phases, tree)) => Ok((
            SimResult {
                config: *config,
                trace: Arc::from(source.meta().name.as_str()),
                metrics,
                skipped_records: source.skipped(),
                phases,
            },
            tree,
        )),
        None => {
            let message = io_error.lock().unwrap().take().unwrap_or_default();
            Err(SweepError::TraceIo { message })
        }
    }
}

fn attempt_cell(
    trace: &Trace,
    name: &Arc<str>,
    config: &SimConfig,
    fingerprint: u64,
    opts: &HarnessOpts,
) -> (Result<SimResult, SweepError>, u32) {
    // Profile under a *copy* so the reported config (and with it every
    // config-equality lookup and checkpoint fingerprint) is the caller's.
    let run_config = if opts.profile { SimConfig { profile: true, ..*config } } else { *config };
    let mut attempt = 0;
    loop {
        attempt += 1;
        let outcome = quiet_catch(|| {
            let mut source = trace.source();
            let mut obs = (SimMetrics::default(), DeadlineGuard::new(opts.deadline_ms));
            let phases = Simulator::run(&mut source, &run_config, &mut obs)
                .expect("in-memory sources cannot fail");
            obs.0.check_invariants();
            (obs.0, phases)
        });
        match outcome {
            Ok((metrics, phases)) => {
                let result = SimResult {
                    config: *config,
                    trace: name.clone(),
                    metrics,
                    skipped_records: 0,
                    phases,
                };
                return (Ok(result), attempt);
            }
            Err(error) => {
                if attempt >= opts.max_attempts.max(1) {
                    return (Err(error), attempt);
                }
                // Exponential backoff: in-process failures are
                // deterministic, but the deadline races the machine's
                // load, so give the machine a breather before retrying.
                let backoff = opts.backoff_base_ms.saturating_mul(1 << (attempt - 1).min(16));
                tlog::warn("cell_retry")
                    .str("fp", format!("{fingerprint:016x}"))
                    .u64("attempt", u64::from(attempt))
                    .u64("backoff_ms", backoff)
                    .str("error", error.to_string())
                    .emit();
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
}

/// Render one cell's terminal state as a structured log record — the
/// JSONL schema downstream parsers grep for (`cell_ok`, `cell_failed`,
/// `cell_timeout`, `cell_skipped`), pinned by the golden-file test.
pub fn cell_status_record(
    fingerprint: u64,
    trace: &str,
    status: &CellStatus,
    attempts: u32,
    restored: bool,
) -> tlog::Record {
    let fp = format!("{fingerprint:016x}");
    match status {
        CellStatus::Ok(result) => tlog::debug("cell_ok")
            .str("fp", fp)
            .str("trace", trace)
            .u64("attempts", u64::from(attempts))
            .bool("restored", restored)
            .u64("refs", result.metrics.refs)
            .f64("elapsed_ms", result.metrics.elapsed_ms),
        CellStatus::Failed { error } => tlog::error("cell_failed")
            .str("fp", fp)
            .str("trace", trace)
            .u64("attempts", u64::from(attempts))
            .str("error", error.to_string()),
        CellStatus::TimedOut { limit_ms } => tlog::warn("cell_timeout")
            .str("fp", fp)
            .str("trace", trace)
            .u64("attempts", u64::from(attempts))
            .u64("limit_ms", *limit_ms),
        CellStatus::Skipped { reason } => {
            tlog::warn("cell_skipped").str("fp", fp).str("trace", trace).str("reason", reason)
        }
    }
}

/// Run an explicit cell list through the resilient harness (the
/// checkpointed, panic-isolated counterpart of [`crate::sweep::run_cells`]).
///
/// Every cell terminates in one of the four [`CellStatus`] states; the
/// only `Err` is [`SweepError::BadTraceIndex`], raised before any work.
pub fn run_cells_checkpointed(
    traces: &[Trace],
    cells: &[(usize, SimConfig)],
    opts: &HarnessOpts,
) -> Result<SweepRun, SweepError> {
    if let Some(&(index, _)) = cells.iter().find(|&&(ti, _)| ti >= traces.len()) {
        return Err(SweepError::BadTraceIndex { index, traces: traces.len() });
    }
    let names: Vec<Arc<str>> = traces.iter().map(|t| Arc::from(t.meta().name.as_str())).collect();
    tlog::debug("sweep_start")
        .u64("cells", cells.len() as u64)
        .u64("traces", traces.len() as u64)
        .bool("checkpointed", opts.checkpoint_dir.is_some())
        .emit();

    let journal = opts.checkpoint_dir.as_deref().and_then(|dir| {
        match CheckpointJournal::open(dir, opts.flush_every) {
            Ok(journal) => {
                if journal.loaded() > 0 {
                    tlog::debug("checkpoint_resume")
                        .str("path", journal.path().display().to_string())
                        .u64("cells", journal.loaded() as u64)
                        .emit();
                    opts.log.note(format!(
                        "resumed from {} with {} journaled cells",
                        journal.path().display(),
                        journal.loaded()
                    ));
                }
                Some(journal)
            }
            Err(e) => {
                // Graceful degradation: a broken journal must not cost the
                // sweep — run uncheckpointed and say so.
                tlog::warn("checkpoint_disabled").str("error", e.to_string()).emit();
                opts.log.note(format!("checkpointing disabled: {e}"));
                None
            }
        }
    });

    let fingerprints: Vec<u64> =
        cells.iter().map(|(ti, config)| cell_fingerprint(&traces[*ti], config)).collect();

    let outcomes: Vec<CellOutcome> = (0..cells.len())
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|i| {
            let (trace_index, config) = cells[i];
            let fp = fingerprints[i];
            let name = &names[trace_index];
            if let Some(entry) = journal.as_ref().and_then(|j| j.lookup(fp)) {
                let result = SimResult {
                    config,
                    trace: name.clone(),
                    metrics: entry.metrics,
                    skipped_records: entry.skipped_records,
                    phases: PhaseTimes::default(),
                };
                let status = CellStatus::Ok(Box::new(result));
                cell_status_record(fp, name, &status, 0, true).emit();
                return CellOutcome { trace_index, config, status, attempts: 0, restored: true };
            }
            if let Err(e) = config.validate() {
                let status = CellStatus::Skipped { reason: e.to_string() };
                cell_status_record(fp, name, &status, 0, false).emit();
                return CellOutcome { trace_index, config, status, attempts: 0, restored: false };
            }
            let (outcome, attempts) = attempt_cell(&traces[trace_index], name, &config, fp, opts);
            let status = match outcome {
                Ok(result) => {
                    if let Some(j) = &journal {
                        let entry = JournalEntry {
                            trace: name.to_string(),
                            skipped_records: result.skipped_records,
                            metrics: result.metrics,
                        };
                        if let Err(e) = j.record(fp, entry) {
                            tlog::warn("checkpoint_write_failed")
                                .str("error", e.to_string())
                                .emit();
                            opts.log.note(format!("checkpoint write failed: {e}"));
                        }
                    }
                    CellStatus::Ok(Box::new(result))
                }
                Err(SweepError::DeadlineExceeded { limit_ms }) => CellStatus::TimedOut { limit_ms },
                Err(error) => CellStatus::Failed { error },
            };
            cell_status_record(fp, name, &status, attempts, false).emit();
            CellOutcome { trace_index, config, status, attempts, restored: false }
        })
        .collect();

    if let Some(j) = &journal {
        if let Err(e) = j.flush() {
            tlog::warn("checkpoint_flush_failed").str("error", e.to_string()).emit();
            opts.log.note(format!("checkpoint flush failed: {e}"));
        }
    }
    let run = SweepRun { cells: outcomes };
    opts.log.absorb(&run, &names);
    Ok(run)
}

/// Every (trace × config) combination through the resilient harness (the
/// checkpointed counterpart of [`crate::sweep::run_grid`]).
pub fn run_grid_checkpointed(
    traces: &[Trace],
    configs: &[SimConfig],
    opts: &HarnessOpts,
) -> Result<SweepRun, SweepError> {
    let cells: Vec<(usize, SimConfig)> =
        (0..traces.len()).flat_map(|ti| configs.iter().map(move |c| (ti, *c))).collect();
    run_cells_checkpointed(traces, &cells, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use crate::sweep;
    use prefetch_trace::synth::TraceKind;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prefetch-harness-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn uncheckpointed_run_matches_the_plain_sweep_bit_for_bit() {
        let traces = vec![TraceKind::Cad.generate(2000, 1), TraceKind::Snake.generate(2000, 2)];
        let configs =
            vec![SimConfig::new(64, PolicySpec::NoPrefetch), SimConfig::new(64, PolicySpec::Tree)];
        let plain = sweep::run_grid(&traces, &configs);
        let resilient = run_grid_checkpointed(&traces, &configs, &HarnessOpts::default()).unwrap();
        assert!(resilient.is_complete());
        let cells = resilient.completed_cells();
        assert_eq!(cells.len(), plain.len());
        for (a, b) in plain.iter().zip(&cells) {
            assert_eq!(a.trace_index, b.trace_index);
            assert_eq!(a.result.metrics, b.result.metrics);
        }
    }

    #[test]
    fn bad_trace_index_is_a_typed_error_before_any_work() {
        let traces = vec![TraceKind::Cad.generate(100, 3)];
        let err = run_cells_checkpointed(
            &traces,
            &[
                (0, SimConfig::new(32, PolicySpec::NoPrefetch)),
                (2, SimConfig::new(32, PolicySpec::Tree)),
            ],
            &HarnessOpts::default(),
        )
        .unwrap_err();
        assert_eq!(err, SweepError::BadTraceIndex { index: 2, traces: 1 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn a_panicking_cell_fails_alone_while_siblings_complete() {
        let traces = vec![TraceKind::Cad.generate(1500, 5)];
        let cells = vec![
            (0, SimConfig::new(64, PolicySpec::Tree)),
            (0, SimConfig::new(64, PolicySpec::PanicProbe { after: 100 })),
            (0, SimConfig::new(128, PolicySpec::Tree)),
        ];
        let opts = HarnessOpts { max_attempts: 1, ..HarnessOpts::default() };
        let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        assert_eq!(run.cells.len(), 3);
        assert!(run.cells[0].result().is_some());
        assert!(run.cells[2].result().is_some());
        match &run.cells[1].status {
            CellStatus::Failed { error: SweepError::Panicked { message } } => {
                assert!(message.contains("panic probe"), "unexpected message: {message}");
            }
            other => panic!("expected Failed(Panicked), got {other:?}"),
        }
        assert_eq!(opts.log.summary().ok, 2);
        assert_eq!(opts.log.summary().failed, 1);
        assert_eq!(opts.log.failures().len(), 1);
    }

    #[test]
    fn persistent_panics_burn_every_attempt() {
        let traces = vec![TraceKind::Cad.generate(500, 5)];
        let cells = vec![(0, SimConfig::new(64, PolicySpec::PanicProbe { after: 1 }))];
        let opts = HarnessOpts { max_attempts: 3, backoff_base_ms: 0, ..HarnessOpts::default() };
        let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        assert_eq!(run.cells[0].attempts, 3);
        assert!(matches!(run.cells[0].status, CellStatus::Failed { .. }));
        assert_eq!(opts.log.summary().retries, 2);
    }

    #[test]
    fn invalid_configs_are_skipped_without_attempts() {
        let traces = vec![TraceKind::Cad.generate(500, 5)];
        // Active faults without disks: fails validation deterministically.
        let bad = SimConfig::new(64, PolicySpec::Tree).with_fault_rate(1, 0.5);
        let run = run_cells_checkpointed(
            &traces,
            &[(0, bad), (0, SimConfig::new(64, PolicySpec::Tree))],
            &HarnessOpts::default(),
        )
        .unwrap();
        assert!(
            matches!(&run.cells[0].status, CellStatus::Skipped { reason } if reason.contains("disk"))
        );
        assert_eq!(run.cells[0].attempts, 0);
        assert!(run.cells[1].result().is_some());
    }

    #[test]
    fn a_one_ms_deadline_times_out_a_large_cell() {
        // 300k references through the tree policy takes well over 1 ms.
        let traces = vec![TraceKind::Cad.generate(300_000, 5)];
        let cells = vec![(0, SimConfig::new(4096, PolicySpec::TreeNextLimit))];
        let opts = HarnessOpts { deadline_ms: Some(1), max_attempts: 1, ..HarnessOpts::default() };
        let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        match run.cells[0].status {
            CellStatus::TimedOut { limit_ms } => assert_eq!(limit_ms, 1),
            ref other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(opts.log.summary().timed_out, 1);
    }

    #[test]
    fn checkpointed_rerun_restores_instead_of_recomputing() {
        let dir = tmp_dir("restore");
        let traces = vec![TraceKind::Sitar.generate(2000, 9)];
        let configs =
            vec![SimConfig::new(64, PolicySpec::Tree), SimConfig::new(128, PolicySpec::Tree)];
        let first =
            run_grid_checkpointed(&traces, &configs, &HarnessOpts::checkpointed(&dir)).unwrap();
        assert!(first.is_complete());
        assert!(first.cells.iter().all(|c| !c.restored));

        let opts = HarnessOpts::checkpointed(&dir);
        let second = run_grid_checkpointed(&traces, &configs, &opts).unwrap();
        assert!(second.is_complete());
        assert!(second.cells.iter().all(|c| c.restored), "second run should restore everything");
        assert_eq!(opts.log.summary().restored, 2);
        for (a, b) in first.completed_cells().iter().zip(&second.completed_cells()) {
            assert_eq!(a.result.metrics, b.result.metrics, "restore must be bit-identical");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_cells_are_not_journaled_and_rerun_on_resume() {
        let dir = tmp_dir("failrerun");
        let traces = vec![TraceKind::Cad.generate(800, 4)];
        let probe = SimConfig::new(64, PolicySpec::PanicProbe { after: 10 });
        let good = SimConfig::new(64, PolicySpec::Tree);
        let opts = HarnessOpts { max_attempts: 1, ..HarnessOpts::checkpointed(&dir) };
        let first = run_cells_checkpointed(&traces, &[(0, probe), (0, good)], &opts).unwrap();
        assert!(matches!(first.cells[0].status, CellStatus::Failed { .. }));
        assert!(first.cells[1].result().is_some());

        // On resume the good cell restores; the failed one is attempted
        // again (and fails again — the probe is deterministic).
        let second = run_cells_checkpointed(&traces, &[(0, probe), (0, good)], &opts).unwrap();
        assert!(!second.cells[0].restored);
        assert!(matches!(second.cells[0].status, CellStatus::Failed { .. }));
        assert!(second.cells[1].restored);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_checkpoint_dir_degrades_to_uncheckpointed() {
        // A file where the directory should be makes the journal unopenable.
        let dir = tmp_dir("degrade");
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        fs::write(&dir, b"not a directory").unwrap();
        let traces = vec![TraceKind::Cad.generate(500, 2)];
        let opts = HarnessOpts::checkpointed(&dir);
        let run =
            run_cells_checkpointed(&traces, &[(0, SimConfig::new(64, PolicySpec::Tree))], &opts)
                .unwrap();
        assert!(run.is_complete(), "sweep must survive a broken checkpoint dir");
        assert!(
            opts.log.notes().iter().any(|n| n.contains("checkpointing disabled")),
            "degradation must be reported: {:?}",
            opts.log.notes()
        );
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn sweep_log_survives_a_poisoned_mutex() {
        // A cell that panics while a logging section holds the lock used
        // to poison it for everyone: absorb/note/summary all became
        // `PoisonError` panics, defeating the harness's panic isolation.
        // The log now recovers the inner state, so siblings keep logging.
        let log = Arc::new(SweepLog::default());
        let poisoner = Arc::clone(&log);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("cell panicked while holding the log lock");
        })
        .join();
        assert!(log.inner.is_poisoned(), "test must actually poison the mutex");

        // Every accessor must keep working on the poisoned lock.
        log.note("sibling cell still logs".into());
        let traces = vec![TraceKind::Cad.generate(500, 1)];
        let cells = vec![(0usize, SimConfig::new(32, PolicySpec::NoPrefetch))];
        let opts = HarnessOpts { log: Arc::clone(&log), ..HarnessOpts::default() };
        let run = run_cells_checkpointed(&traces, &cells, &opts).unwrap();
        assert!(run.is_complete());
        assert_eq!(log.summary().ok, 1);
        assert_eq!(log.notes(), vec!["sibling cell still logs".to_string()]);
        assert!(log.failures().is_empty());
        assert!(!log.has_failures());
        assert_eq!(log.refs_simulated(), 500);
        let _ = log.phases();
    }

    #[test]
    fn guarded_source_run_matches_plain_and_reports_panics() {
        let trace = TraceKind::Cad.generate(2000, 3);
        let cfg = SimConfig::new(128, PolicySpec::Tree);
        let plain = crate::runner::run_simulation(&trace, &cfg);
        let guarded = run_source_guarded(&mut trace.source(), &cfg, None).unwrap();
        assert_eq!(plain.metrics, guarded.metrics);

        let probe = SimConfig::new(128, PolicySpec::PanicProbe { after: 5 });
        let err = run_source_guarded(&mut trace.source(), &probe, None).unwrap_err();
        assert!(matches!(err, SweepError::Panicked { .. }));

        let bad = SimConfig { cache_blocks: 0, ..cfg };
        let err = run_source_guarded(&mut trace.source(), &bad, None).unwrap_err();
        assert!(matches!(err, SweepError::InvalidConfig(_)));
    }
}
