//! Simulation metrics: every quantity a table or figure of the paper
//! reports, plus a virtual-time extension.

use serde::{Deserialize, Serialize};

/// Counters collected over one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// References processed.
    pub refs: u64,
    /// Hits in the demand cache.
    pub demand_hits: u64,
    /// Hits in the prefetch cache (Figure 9 numerator).
    pub prefetch_hits: u64,
    /// Demand fetches (misses in the combined cache — Figure 6 numerator).
    pub misses: u64,
    /// Prefetch disk reads issued (Figure 8 numerator; extra disk traffic).
    pub prefetches_issued: u64,
    /// Candidates the selector examined.
    pub candidates_considered: u64,
    /// Candidates chosen for prefetch that were already resident (Figure 7
    /// numerator; denominator is `candidates_considered`).
    pub candidates_already_cached: u64,
    /// Blocks ejected from the prefetch cache before being referenced.
    pub prefetch_evictions: u64,
    /// Demand buffers surrendered to prefetching.
    pub demand_evictions_for_prefetch: u64,
    /// Sum of tree probabilities over prefetched blocks (Figure 10).
    pub prefetch_probability_sum: f64,
    /// Accesses predictable from the tree cursor (Table 2 numerator).
    pub predictable: u64,
    /// Predictable accesses that nonetheless missed (Figure 14 numerator;
    /// denominator is `predictable`).
    pub predictable_missed: u64,
    /// Node visits that had a last-visited child on record (Table 3 /
    /// Figure 16 denominator).
    pub lvc_opportunities: u64,
    /// ... of which the access repeated the last-visited child (Table 3).
    pub lvc_repeats: u64,
    /// ... of which the last-visited child was already resident
    /// (Figure 16).
    pub lvc_cached: u64,
    /// Virtual elapsed time (ms) under the Section 3 timing model
    /// (extension; the paper reports only rates).
    pub elapsed_ms: f64,
    /// Virtual CPU stall time (ms) included in `elapsed_ms`.
    pub stall_ms: f64,
    /// With a finite disk array: total request queueing delay (ms).
    pub disk_queue_ms: f64,
    /// With a finite disk array: requests that found their disk busy.
    pub disk_queued_requests: u64,
    /// With a finite disk array: mean disk utilization over the run.
    pub disk_mean_utilization: f64,
    /// With fault injection: demand reads that hit an injected fault
    /// (each retry attempt that faults counts once).
    pub demand_faults: u64,
    /// With fault injection: retries issued for faulted demand reads.
    pub demand_retries: u64,
    /// With fault injection: demand reads abandoned after exhausting the
    /// retry budget (priced with the give-up penalty).
    pub demand_read_failures: u64,
    /// With fault injection: total exponential-backoff delay (ms) charged
    /// to the virtual clock while retrying demand reads.
    pub retry_backoff_ms: f64,
    /// With fault injection: prefetch submissions that faulted. The slot
    /// is released and `T_oh` stays charged — a priced mispredict.
    pub prefetch_faults: u64,
    /// With fault injection: prefetch faults that pushed their block over
    /// the quarantine threshold.
    pub blocks_quarantined: u64,
    /// With fault injection: prefetch candidates skipped because their
    /// block sits in quarantine.
    pub candidates_quarantined: u64,
    /// With fault injection: requests a slow-disk episode stretched.
    pub disk_slowed_requests: u64,
}

impl SimMetrics {
    /// Miss rate of the combined demand + prefetch cache (Figure 6), in
    /// percent of references.
    pub fn miss_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses as f64 / self.refs as f64
        }
    }

    /// Hit rate in the prefetch cache: prefetched blocks that were
    /// referenced, over blocks prefetched (Figure 9).
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetches_issued as f64
        }
    }

    /// Average blocks prefetched per access period (Figure 8; also the
    /// measured `s` of Figure 11).
    pub fn prefetches_per_period(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.prefetches_issued as f64 / self.refs as f64
        }
    }

    /// Mean tree probability of prefetched blocks (Figure 10).
    pub fn mean_prefetch_probability(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetch_probability_sum / self.prefetches_issued as f64
        }
    }

    /// Fraction of chosen candidates already resident (Figure 7).
    pub fn candidates_already_cached_frac(&self) -> f64 {
        if self.candidates_considered == 0 {
            0.0
        } else {
            self.candidates_already_cached as f64 / self.candidates_considered as f64
        }
    }

    /// Prediction accuracy (Table 2).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.predictable as f64 / self.refs as f64
        }
    }

    /// Fraction of predictable accesses that were *not* already cached
    /// (Figure 14).
    pub fn predictable_not_cached_frac(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.predictable_missed as f64 / self.predictable as f64
        }
    }

    /// Fraction of node re-visits repeating the last-visited child
    /// (Table 3).
    pub fn lvc_repeat_rate(&self) -> f64 {
        if self.lvc_opportunities == 0 {
            0.0
        } else {
            self.lvc_repeats as f64 / self.lvc_opportunities as f64
        }
    }

    /// Fraction of last-visited children already resident when visited
    /// (Figure 16).
    pub fn lvc_cached_frac(&self) -> f64 {
        if self.lvc_opportunities == 0 {
            0.0
        } else {
            self.lvc_cached as f64 / self.lvc_opportunities as f64
        }
    }

    /// Total disk reads: demand fetches plus prefetches (the disk-traffic
    /// increase discussed with Figure 8 is
    /// `prefetches_issued / misses`).
    pub fn disk_reads(&self) -> u64 {
        self.misses + self.prefetches_issued
    }

    /// Total injected faults observed by the simulator (demand + prefetch
    /// paths). Zero whenever fault injection is off.
    pub fn total_faults(&self) -> u64 {
        self.demand_faults + self.prefetch_faults
    }

    /// Fraction of issued prefetches that never produced a hit — the
    /// wasted-prefetch fraction the resilience experiment reports (under
    /// faults this includes prefetches killed by the injector).
    pub fn wasted_prefetch_frac(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            (self.prefetches_issued - self.prefetch_hits) as f64 / self.prefetches_issued as f64
        }
    }

    /// Sanity-check the conservation laws every run must satisfy.
    ///
    /// # Panics
    /// Panics if a law is violated (simulator bug).
    pub fn check_invariants(&self) {
        assert_eq!(
            self.demand_hits + self.prefetch_hits + self.misses,
            self.refs,
            "hits + misses must equal references"
        );
        assert!(self.prefetch_hits <= self.prefetches_issued, "more prefetch hits than prefetches");
        assert!(self.predictable <= self.refs);
        assert!(self.predictable_missed <= self.predictable);
        assert!(self.lvc_repeats <= self.lvc_opportunities);
        assert!(self.lvc_cached <= self.lvc_opportunities);
        assert!(self.candidates_already_cached <= self.candidates_considered);
        assert!(self.stall_ms <= self.elapsed_ms + 1e-6);
        assert!((0.0..=1.0).contains(&self.miss_rate()));
        assert!((0.0..=1.0).contains(&self.prefetch_hit_rate()));
        assert!(self.disk_queue_ms >= 0.0);
        assert!(self.disk_queued_requests <= self.disk_reads());
        assert!((0.0..=1.0 + 1e-9).contains(&self.disk_mean_utilization));
        assert!(self.demand_retries <= self.demand_faults, "retries without faults");
        assert!(self.demand_read_failures <= self.misses, "more failures than demand reads");
        assert!(self.retry_backoff_ms >= 0.0);
        assert!(self.retry_backoff_ms <= self.stall_ms + 1e-6, "backoff outside stall time");
        assert!(self.blocks_quarantined <= self.prefetch_faults, "quarantine without faults");
        assert!(self.prefetch_faults <= self.prefetches_issued, "more faults than prefetches");
        assert!(self.candidates_quarantined <= self.candidates_considered);
        assert!((0.0..=1.0).contains(&self.wasted_prefetch_frac()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimMetrics {
        SimMetrics {
            refs: 100,
            demand_hits: 50,
            prefetch_hits: 20,
            misses: 30,
            prefetches_issued: 40,
            candidates_considered: 80,
            candidates_already_cached: 20,
            prefetch_probability_sum: 28.0,
            predictable: 60,
            predictable_missed: 15,
            lvc_opportunities: 50,
            lvc_repeats: 30,
            lvc_cached: 40,
            elapsed_ms: 1000.0,
            stall_ms: 100.0,
            ..SimMetrics::default()
        }
    }

    #[test]
    fn derived_rates() {
        let m = sample();
        m.check_invariants();
        assert!((m.miss_rate() - 0.30).abs() < 1e-12);
        assert!((m.prefetch_hit_rate() - 0.5).abs() < 1e-12);
        assert!((m.prefetches_per_period() - 0.4).abs() < 1e-12);
        assert!((m.mean_prefetch_probability() - 0.7).abs() < 1e-12);
        assert!((m.candidates_already_cached_frac() - 0.25).abs() < 1e-12);
        assert!((m.prediction_accuracy() - 0.6).abs() < 1e-12);
        assert!((m.predictable_not_cached_frac() - 0.25).abs() < 1e-12);
        assert!((m.lvc_repeat_rate() - 0.6).abs() < 1e-12);
        assert!((m.lvc_cached_frac() - 0.8).abs() < 1e-12);
        assert_eq!(m.disk_reads(), 70);
        assert!((m.wasted_prefetch_frac() - 0.5).abs() < 1e-12);
        assert_eq!(m.total_faults(), 0);
    }

    #[test]
    fn fault_counters_obey_invariants() {
        let m = SimMetrics {
            demand_faults: 10,
            demand_retries: 8,
            demand_read_failures: 2,
            retry_backoff_ms: 40.0,
            prefetch_faults: 5,
            blocks_quarantined: 2,
            candidates_quarantined: 7,
            disk_slowed_requests: 3,
            ..sample()
        };
        m.check_invariants();
        assert_eq!(m.total_faults(), 15);
    }

    #[test]
    #[should_panic(expected = "quarantine without faults")]
    fn quarantine_without_faults_is_a_bug() {
        let m = SimMetrics { blocks_quarantined: 1, ..sample() };
        m.check_invariants();
    }

    #[test]
    fn empty_metrics_are_all_zero() {
        let m = SimMetrics::default();
        m.check_invariants();
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.prefetch_hit_rate(), 0.0);
        assert_eq!(m.mean_prefetch_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "hits + misses")]
    fn invariant_violation_panics() {
        let m = SimMetrics { refs: 10, misses: 5, ..SimMetrics::default() };
        m.check_invariants();
    }
}
