use prefetch_sim::{run_simulation, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;

fn main() {
    let t = TraceKind::Cello.generate(100_000, 1);
    for spec in [
        PolicySpec::TreeThreshold(0.001),
        PolicySpec::TreeChildren(10),
        PolicySpec::PerfectSelector,
        PolicySpec::TreeLvc,
        PolicySpec::TreeReanchor,
    ] {
        let t0 = std::time::Instant::now();
        let r = run_simulation(&t, &SimConfig::new(16384, spec));
        println!(
            "{:<22} {:>6.2}s miss={:.1}%",
            spec.name(),
            t0.elapsed().as_secs_f64(),
            100.0 * r.metrics.miss_rate()
        );
    }
}
