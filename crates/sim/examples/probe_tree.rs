use prefetch_sim::{run_simulation, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;

fn main() {
    for kind in [TraceKind::Cad, TraceKind::Snake, TraceKind::Sitar, TraceKind::Cello] {
        let t = kind.generate(30_000, 1);
        for cache in [256usize, 1024] {
            let r = run_simulation(&t, &SimConfig::new(cache, PolicySpec::Tree));
            let m = r.metrics;
            println!("{:<6} cache={:<5} miss={:>5.1}% pf={:<6} pf_hits={:<6} considered={:<7} cached={:<7} pred={:>5.1}% pred_missed={:>5.1}%",
                kind.name(), cache, 100.0*m.miss_rate(), m.prefetches_issued, m.prefetch_hits,
                m.candidates_considered, m.candidates_already_cached,
                100.0*m.prediction_accuracy(), 100.0*m.predictable_not_cached_frac());
        }
    }
}
