use prefetch_cache::StackDistanceEstimator;
use prefetch_sim::{run_simulation, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;
use prefetch_tree::PrefetchTree;

fn main() {
    let t = TraceKind::Cello.generate(30_000, 1);
    let t0 = std::time::Instant::now();
    let mut tree = PrefetchTree::new();
    for b in t.blocks() {
        tree.record_access(b);
    }
    println!("tree only: {:.2}s ({} nodes)", t0.elapsed().as_secs_f64(), tree.node_count());

    let t0 = std::time::Instant::now();
    let mut sd = StackDistanceEstimator::new(0.99999);
    for b in t.blocks() {
        sd.record(b.0);
    }
    println!("stack-distance only: {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let mut sd = StackDistanceEstimator::new(1.0);
    for b in t.blocks() {
        sd.record(b.0);
    }
    println!("stack-distance (no decay): {:.2}s", t0.elapsed().as_secs_f64());

    for mc in [4u32, 64, 256] {
        let mut cfg = SimConfig::new(4096, PolicySpec::Tree);
        cfg.engine.max_considered_per_period = mc;
        let t0 = std::time::Instant::now();
        let r = run_simulation(&t, &cfg);
        println!(
            "tree sim, max_considered={mc}: {:.2}s pf={}",
            t0.elapsed().as_secs_f64(),
            r.metrics.prefetches_issued
        );
    }
}
