use prefetch_sim::{run_simulation, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;

fn main() {
    let refs_for = |k: TraceKind| match k {
        TraceKind::Cad => 150_000,
        _ => 300_000,
    };
    for kind in TraceKind::ALL {
        let t = kind.generate(refs_for(kind), 1999);
        println!("--- {} ({} refs) ---", kind.name(), t.len());
        println!(
            "{:<7} {:>12} {:>12} {:>8} {:>16}",
            "cache", "no-prefetch", "next-limit", "tree", "tree-next-limit"
        );
        for cache in [64usize, 256, 1024, 4096, 16384] {
            let mut row = format!("{cache:<7}");
            for spec in PolicySpec::HEADLINE {
                let m = run_simulation(&t, &SimConfig::new(cache, spec)).metrics;
                row += &format!(" {:>11.2}%", 100.0 * m.miss_rate());
            }
            println!("{row}");
        }
    }
}
