//! Times a dense sweep of small cells to expose per-cell overhead
//! (config/trace-name duplication, allocation) rather than simulation
//! work. Used to measure the sweep-level effect of sharing the trace
//! name across `SimResult`s (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release --example profile_sweep [refs] [repeats]
//! ```

use prefetch_sim::sweep::run_grid;
use prefetch_sim::{PolicySpec, SimConfig};
use prefetch_trace::synth::standard_suite;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let refs: usize = args.next().map(|s| s.parse().expect("refs")).unwrap_or(256);
    let repeats: usize = args.next().map(|s| s.parse().expect("repeats")).unwrap_or(5);

    let traces = standard_suite(refs, 1);
    let mut configs = Vec::new();
    for &cache in &[16usize, 32, 64, 128, 256, 512] {
        for p in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
            PolicySpec::TreeLvc,
            PolicySpec::TreeThreshold(0.05),
            PolicySpec::TreeChildren(3),
            PolicySpec::PerfectSelector,
        ] {
            configs.push(SimConfig::new(cache, p));
        }
    }

    // Warm up thread pool and caches.
    let _ = run_grid(&traces, &configs);

    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let cells = run_grid(&traces, &configs);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        println!("{} cells in {:.3} ms", cells.len(), dt * 1e3);
    }
    println!(
        "best: {:.3} ms for {} cells ({:.2} us/cell)",
        best * 1e3,
        traces.len() * configs.len(),
        best * 1e6 / (traces.len() * configs.len()) as f64
    );
}
