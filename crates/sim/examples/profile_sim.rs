use prefetch_sim::{run_simulation, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;

fn main() {
    for kind in [TraceKind::Cello, TraceKind::Cad] {
        let t = kind.generate(30_000, 1);
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
        ] {
            for cache in [256usize, 4096, 16384] {
                let t0 = std::time::Instant::now();
                let r = run_simulation(&t, &SimConfig::new(cache, spec));
                println!(
                    "{} {:<16} cache={:<6} {:>6.2}s  miss={:.1}% pf={} pfcache_evic={}",
                    kind.name(),
                    spec.name(),
                    cache,
                    t0.elapsed().as_secs_f64(),
                    100.0 * r.metrics.miss_rate(),
                    r.metrics.prefetches_issued,
                    r.metrics.prefetch_evictions
                );
            }
        }
    }
}
