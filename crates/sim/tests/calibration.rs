//! Predicted-vs-realized calibration tracking (PR 9 tentpole, part 3).
//!
//! The cost-benefit engine accumulates, per run, the expected stall
//! savings of its issued prefetches (`p_b · ΔT_pf(d_b)`, Eq. 2 weighted
//! by Eq. 1's path probability) against realized stall deltas
//! (`T_disk − stall` at each prefetch hit), and the Eq. 11 predicted
//! eviction cost against the actual re-fetch cost. These tests pin the
//! contract the observability layer exports per tenant as
//! `cal_benefit_err` / `cal_eject_err`: the accumulators populate on any
//! tree-policy run, and an estimator whose timing assumptions are
//! deliberately wrong for the deployed world is *detected* — its
//! normalized error is materially worse on the same workload.

use prefetch_core::SystemParams;
use prefetch_sim::config::{PolicySpec, SimConfig};
use prefetch_sim::observer::NullObserver;
use prefetch_sim::simulator::Simulator;
use prefetch_trace::TraceRecord;

/// A strictly cyclic reference stream over `universe` blocks: fully
/// learnable by the LZ tree, larger than the caches below, and free of
/// randomness so every run is bit-deterministic.
fn cyclic_trace(cycles: u64, universe: u64) -> Vec<TraceRecord> {
    (0..cycles).flat_map(|_| (0..universe).map(TraceRecord::read)).collect()
}

/// Drive `cfg` over `recs` and return the final calibration accumulators.
fn calibration_of(cfg: &SimConfig, recs: &[TraceRecord]) -> prefetch_core::CalibrationTracker {
    cfg.validate().unwrap();
    let mut sim = Simulator::new(cfg);
    for (i, rec) in recs.iter().enumerate() {
        sim.step(*rec, recs.get(i + 1).map(|r| r.block), &mut NullObserver);
    }
    sim.calibration().expect("tree policy tracks calibration").clone()
}

#[test]
fn tree_run_populates_calibration_accumulators() {
    let cal = calibration_of(&SimConfig::new(64, PolicySpec::Tree), &cyclic_trace(20, 256));
    assert!(cal.benefit_predictions() > 0, "engine issued no priced prefetches");
    assert!(cal.benefit_realizations() > 0, "no prefetch hit resolved a prediction");
    assert!(cal.predicted_benefit_ms() > 0.0);
    assert!(cal.realized_benefit_ms() > 0.0);
    let err = cal.benefit_error();
    assert!((0.0..=1.0).contains(&err), "normalized error out of range: {err}");
}

#[test]
fn eject_accumulators_populate_under_cache_pressure() {
    // A fast CPU makes prefetching aggressive enough that the prefetch
    // partition itself supplies eviction victims (Eq. 11 territory).
    let mut cfg = SimConfig::new(64, PolicySpec::Tree);
    cfg.params = SystemParams { t_cpu: 2.0, ..SystemParams::patterson() };
    let cal = calibration_of(&cfg, &cyclic_trace(20, 256));
    assert!(cal.eject_predictions() > 0, "no prefetch-partition ejections were priced");
    assert!(cal.eject_realizations() > 0, "no ejected block was re-referenced");
    let err = cal.eject_error();
    assert!((0.0..=1.0).contains(&err), "normalized error out of range: {err}");
}

#[test]
fn no_prefetch_policy_tracks_no_calibration() {
    let cfg = SimConfig::new(64, PolicySpec::NoPrefetch);
    let recs = cyclic_trace(2, 256);
    let mut sim = Simulator::new(&cfg);
    for (i, rec) in recs.iter().enumerate() {
        sim.step(*rec, recs.get(i + 1).map(|r| r.block), &mut NullObserver);
    }
    assert!(sim.calibration().is_none());
}

#[test]
fn miscalibrated_estimator_is_detected() {
    // Same estimator, same workload, two worlds. In the first the
    // engine's Eq. 3/6 pipeline model matches the deployment (the
    // paper's contention-free infinite-disk array). In the second the
    // estimator is deliberately mis-calibrated: it still prices stalls
    // with the contention-free model while the world routes every I/O
    // through a single FIFO disk, so prefetch bursts queue behind each
    // other and the predicted savings never materialize. The exported
    // calibration error must flag the mismatch.
    let recs = cyclic_trace(20, 256);
    let mut well_cfg = SimConfig::new(64, PolicySpec::Tree);
    well_cfg.params = SystemParams { t_cpu: 2.0, ..SystemParams::patterson() };
    let bad_cfg = well_cfg.with_disks(1);

    let well = calibration_of(&well_cfg, &recs);
    let bad = calibration_of(&bad_cfg, &recs);

    assert!(bad.benefit_predictions() > 0, "mis-calibrated run must still prefetch");
    // Direction: the congested world under-delivers on the predictions.
    assert!(
        bad.realized_benefit_ms() < well.realized_benefit_ms(),
        "queueing should shrink realized savings"
    );
    let (e_well, e_bad) = (well.benefit_error(), bad.benefit_error());
    assert!(
        e_bad > e_well + 0.15,
        "calibration tracking failed to flag the mis-calibrated estimator: \
         well={e_well:.4} bad={e_bad:.4}"
    );
}
