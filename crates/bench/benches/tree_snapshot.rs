//! Criterion benches for the arena tree's memory footprint and the
//! `pftree-snap/v1` codec: exact bytes/node, snapshot encode/decode
//! throughput, and compression ratio.
//!
//! Set `TREE_BENCH_JSON=PATH` to also write a machine-readable
//! `tree-bench/v1` artifact (one record per trace: node count, exact
//! bytes, bytes/node vs the paper's 40 B estimate, payload vs encoded
//! size, and save/restore throughput) — CI uploads it as `BENCH_PR7.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prefetch_trace::synth::TraceKind;
use prefetch_tree::PrefetchTree;
use std::fmt::Write as _;
use std::time::Instant;

const REFS: usize = 100_000;
const SEED: u64 = 1999;
/// The paper's per-node estimate (Section 9.3).
const PAPER_BYTES_PER_NODE: usize = 40;

fn trained(kind: TraceKind) -> PrefetchTree {
    let mut tree = PrefetchTree::new();
    for blk in kind.generate(REFS, SEED).blocks() {
        tree.record_access(blk);
    }
    tree
}

fn snapshot_bytes(tree: &PrefetchTree) -> (Vec<u8>, prefetch_tree::SnapshotInfo) {
    let mut buf = Vec::new();
    let info = tree.write_snapshot(&mut buf).expect("in-memory snapshot cannot fail");
    (buf, info)
}

/// Median-of-N nodes/sec for `f` applied to a tree of `nodes` nodes.
fn nodes_per_sec<F: FnMut()>(nodes: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t0 = Instant::now();
            f();
            nodes as f64 / t0.elapsed().as_secs_f64().max(1e-9)
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench_snapshot(c: &mut Criterion) {
    let mut json = String::new();
    let _ =
        write!(json, "{{\"schema\":\"tree-bench/v1\",\"refs\":{REFS},\"seed\":{SEED},\"traces\":[");

    let mut g = c.benchmark_group("tree/snapshot");
    for (i, &kind) in TraceKind::ALL.iter().enumerate() {
        let tree = trained(kind);
        let nodes = tree.node_count();
        let exact = tree.bytes_in_use();
        let (encoded, info) = snapshot_bytes(&tree);

        g.throughput(Throughput::Elements(nodes as u64));
        g.bench_function(format!("save_{}", kind.name()), |b| {
            b.iter(|| black_box(snapshot_bytes(&tree).0.len()))
        });
        g.bench_function(format!("restore_{}", kind.name()), |b| {
            b.iter(|| {
                let t = PrefetchTree::read_snapshot(&mut encoded.as_slice()).unwrap();
                black_box(t.node_count())
            })
        });

        let save_nps = nodes_per_sec(nodes, || {
            black_box(snapshot_bytes(&tree).0.len());
        });
        let restore_nps = nodes_per_sec(nodes, || {
            black_box(PrefetchTree::read_snapshot(&mut encoded.as_slice()).unwrap().node_count());
        });
        println!(
            "tree/snapshot/{}: {} nodes, {:.1} B/node exact (paper: {} B/node), \
             payload {} B -> encoded {} B ({}), save {:.0} nodes/s, restore {:.0} nodes/s",
            kind.name(),
            nodes,
            exact as f64 / nodes.max(1) as f64,
            PAPER_BYTES_PER_NODE,
            info.payload_bytes,
            info.encoded_bytes,
            if info.entropy_coded { "huffman" } else { "raw" },
            save_nps,
            restore_nps,
        );
        let _ = write!(
            json,
            "{}{{\"trace\":\"{}\",\"nodes\":{},\"exact_bytes\":{},\"bytes_per_node\":{:.3},\
             \"paper_bytes\":{},\"payload_bytes\":{},\"encoded_bytes\":{},\
             \"compression_ratio\":{:.4},\"entropy_coded\":{},\
             \"save_nodes_per_sec\":{:.0},\"restore_nodes_per_sec\":{:.0}}}",
            if i > 0 { "," } else { "" },
            kind.name(),
            nodes,
            exact,
            exact as f64 / nodes.max(1) as f64,
            nodes * PAPER_BYTES_PER_NODE,
            info.payload_bytes,
            info.encoded_bytes,
            info.encoded_bytes as f64 / info.payload_bytes.max(1) as f64,
            info.entropy_coded,
            save_nps,
            restore_nps,
        );
    }
    g.finish();

    json.push_str("]}\n");
    if let Ok(path) = std::env::var("TREE_BENCH_JSON") {
        std::fs::write(&path, &json).expect("cannot write TREE_BENCH_JSON");
        println!("tree/snapshot: wrote {path}");
    }
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
