//! Criterion benches for the cost-benefit model: the per-candidate
//! arithmetic of Equations 1-14, which sits on the simulator's innermost
//! loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prefetch_core::{CostBenefitModel, SystemParams};

fn bench_model(c: &mut Criterion) {
    let model = CostBenefitModel::patterson();
    let mut g = c.benchmark_group("model");
    g.throughput(Throughput::Elements(1));
    g.bench_function("net_benefit", |b| {
        b.iter(|| black_box(model.net_benefit(black_box(0.42), black_box(2), black_box(0.9))))
    });
    g.bench_function("prefetch_eject_cost", |b| {
        b.iter(|| black_box(model.prefetch_eject_cost(black_box(0.42), black_box(5))))
    });
    g.bench_function("demand_eject_cost", |b| {
        b.iter(|| black_box(model.demand_eject_cost(black_box(0.002))))
    });
    g.bench_function("min_useful_probability", |b| {
        b.iter(|| black_box(model.min_useful_probability(black_box(0.8), black_box(2))))
    });
    g.finish();
}

fn bench_timing_sweep(c: &mut Criterion) {
    // The T_cpu sensitivity sweep exercises the full stall model.
    let mut g = c.benchmark_group("model/timing");
    g.bench_function("t_stall_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for t_cpu in [20.0, 50.0, 160.0, 640.0] {
                let p = SystemParams::with_t_cpu(t_cpu);
                for d in 0..16u32 {
                    for s in [0.0, 1.0, 4.0] {
                        acc += prefetch_core::timing::t_stall(d, &p, s);
                    }
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_model, bench_timing_sweep);
criterion_main!(benches);
