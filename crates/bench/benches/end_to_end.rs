//! End-to-end simulator throughput per policy: references simulated per
//! second on each synthetic workload. This is the number that bounds how
//! long a full figure sweep takes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prefetch_sim::{run_simulation, run_source, PolicySpec, SimConfig};
use prefetch_trace::synth::TraceKind;
use prefetch_trace::TraceSource;

fn bench_policies(c: &mut Criterion) {
    const REFS: usize = 20_000;
    let mut g = c.benchmark_group("sim/end_to_end");
    g.throughput(Throughput::Elements(REFS as u64));
    g.sample_size(10);
    for kind in [TraceKind::Cad, TraceKind::Cello] {
        let trace = kind.generate(REFS, 5);
        for spec in [
            PolicySpec::NoPrefetch,
            PolicySpec::NextLimit,
            PolicySpec::Tree,
            PolicySpec::TreeNextLimit,
        ] {
            g.bench_with_input(BenchmarkId::new(spec.name(), kind.name()), &trace, |b, t| {
                let cfg = SimConfig::new(1024, spec);
                b.iter(|| black_box(run_simulation(t, &cfg).metrics.miss_rate()))
            });
        }
    }
    g.finish();
}

fn bench_streaming_vs_materialized(c: &mut Criterion) {
    // The streaming path must not tax throughput: generating records on
    // the fly (rewinding the generator each iteration) vs replaying a
    // pre-materialized trace.
    const REFS: usize = 20_000;
    let mut g = c.benchmark_group("sim/streaming");
    g.throughput(Throughput::Elements(REFS as u64));
    g.sample_size(10);
    let cfg = SimConfig::new(1024, PolicySpec::TreeNextLimit);
    let trace = TraceKind::Cello.generate(REFS, 5);
    g.bench_function("materialized", |b| {
        b.iter(|| black_box(run_simulation(&trace, &cfg).metrics.miss_rate()))
    });
    g.bench_function("streamed", |b| {
        let mut source = TraceKind::Cello.stream(REFS, 5);
        b.iter(|| {
            source.rewind().unwrap();
            black_box(run_source(&mut source, &cfg).unwrap().metrics.miss_rate())
        })
    });
    g.finish();
}

fn bench_cache_size_scaling(c: &mut Criterion) {
    // The tree policy's per-reference cost should stay flat as the cache
    // grows (the victim scan is the risk).
    const REFS: usize = 20_000;
    let trace = TraceKind::Snake.generate(REFS, 6);
    let mut g = c.benchmark_group("sim/tree_cache_scaling");
    g.throughput(Throughput::Elements(REFS as u64));
    g.sample_size(10);
    for cache in [256usize, 2048, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(cache), &cache, |b, &cache| {
            let cfg = SimConfig::new(cache, PolicySpec::Tree);
            b.iter(|| black_box(run_simulation(&trace, &cfg).metrics.miss_rate()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_streaming_vs_materialized,
    bench_cache_size_scaling
);
criterion_main!(benches);
