//! Criterion benches for the batched cost-benefit kernels that power the
//! frontier hot path: per-call model arithmetic vs the batched scalar
//! reference vs the runtime-dispatched path, across batch sizes.
//!
//! Set `KERN_BENCH_JSON=PATH` to also write a machine-readable
//! `kern-bench/v1` artifact (one record per batch size: Melem/s for each
//! path plus the dispatched-vs-scalar speedup) — CI uploads it as
//! `BENCH_PR10.json` and gates the batch ≥ 16 speedup on AVX2 runners.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prefetch_core::kernel::{self, DepthTable, KernelImpl};
use prefetch_core::{CostBenefitModel, SystemParams};
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const BATCH_SIZES: [usize; 5] = [1, 4, 16, 64, 256];
const MAX_DEPTH: u32 = 8;
const SEED: u64 = 1999;
/// Elements evaluated per timing sample: large enough that even the
/// 1-element batch amortises the `Instant` overhead away.
const ELEMS_PER_SAMPLE: usize = 1 << 21;

/// Candidate-shaped SoA columns: `p_x ∈ (0, 1]`, `p_b ≤ p_x`,
/// `d_b ∈ 1..=MAX_DEPTH`.
fn batch_inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<u32>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(SEED ^ n as u64);
    let mut p_b = Vec::with_capacity(n);
    let mut p_x = Vec::with_capacity(n);
    let mut d_b = Vec::with_capacity(n);
    for _ in 0..n {
        let px: f64 = rng.gen_range(1e-6..1.0);
        p_b.push(px * rng.gen_range(1e-6..1.0));
        p_x.push(px);
        d_b.push(rng.gen_range(1..=MAX_DEPTH));
    }
    (p_b, p_x, d_b)
}

/// Median-of-9 million-elements/sec for `f`, which must evaluate
/// `elems` elements per call.
fn melems_per_sec<F: FnMut() -> f64>(elems: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            elems as f64 / t0.elapsed().as_secs_f64().max(1e-9) / 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One timing sample for a batched kernel: repeat the batch call until
/// ~`ELEMS_PER_SAMPLE` elements have been evaluated.
fn time_batch(k: &'static KernelImpl, n: usize, dt: &DepthTable, t_driver: f64) -> f64 {
    let (p_b, p_x, d_b) = batch_inputs(n);
    let iters = ELEMS_PER_SAMPLE / n;
    let mut out = Vec::new();
    melems_per_sec(iters * n, || {
        let mut acc = 0.0;
        for _ in 0..iters {
            k.net_benefit_batch(&p_b, &p_x, &d_b, dt, t_driver, &mut out);
            acc += out[n - 1];
        }
        acc
    })
}

/// One timing sample for the pre-batching baseline: the model's per-call
/// `net_benefit`, one candidate at a time (what `expand()` used to do).
fn time_per_call(model: &CostBenefitModel, n: usize) -> f64 {
    let (p_b, p_x, d_b) = batch_inputs(n);
    let iters = ELEMS_PER_SAMPLE / n;
    melems_per_sec(iters * n, || {
        let mut acc = 0.0;
        for _ in 0..iters {
            for i in 0..n {
                acc += model.net_benefit(p_b[i], d_b[i], p_x[i]);
            }
        }
        acc
    })
}

fn bench_kernels(c: &mut Criterion) {
    let params = SystemParams::patterson();
    let model = CostBenefitModel::patterson();
    let mut dt = DepthTable::default();
    dt.rebuild(&params, model.s(), MAX_DEPTH);
    let dispatched = kernel::detect();

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"schema\":\"kern-bench/v1\",\"dispatch_path\":\"{}\",\"seed\":{SEED},\
         \"elems_per_sample\":{ELEMS_PER_SAMPLE},\"batches\":[",
        dispatched.name
    );

    let mut g = c.benchmark_group("kernel/net_benefit");
    for (i, &n) in BATCH_SIZES.iter().enumerate() {
        let (p_b, p_x, d_b) = batch_inputs(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("scalar_{n}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                kernel::SCALAR.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut out);
                black_box(out[n - 1])
            })
        });
        g.bench_function(format!("{}_{n}", dispatched.name), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                dispatched.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut out);
                black_box(out[n - 1])
            })
        });

        let per_call = time_per_call(&model, n);
        let scalar = time_batch(&kernel::SCALAR, n, &dt, params.t_driver);
        let dispatch = time_batch(dispatched, n, &dt, params.t_driver);
        let vs_scalar = dispatch / scalar.max(1e-9);
        let vs_per_call = dispatch / per_call.max(1e-9);
        println!(
            "kernel/net_benefit/batch={n}: per-call {per_call:.1} Melem/s, \
             batch-scalar {scalar:.1} Melem/s, {} {dispatch:.1} Melem/s \
             ({vs_per_call:.2}x vs per-call, {vs_scalar:.2}x vs batch-scalar)",
            dispatched.name
        );
        let _ = write!(
            json,
            "{}{{\"batch\":{n},\"per_call_melems\":{per_call:.2},\
             \"scalar_melems\":{scalar:.2},\"dispatch_melems\":{dispatch:.2},\
             \"speedup_vs_per_call\":{vs_per_call:.4},\
             \"speedup_dispatch_vs_scalar\":{vs_scalar:.4}}}",
            if i > 0 { "," } else { "" },
        );
    }
    g.finish();

    json.push_str("]}\n");
    if let Ok(path) = std::env::var("KERN_BENCH_JSON") {
        std::fs::write(&path, &json).expect("cannot write KERN_BENCH_JSON");
        println!("kernel/net_benefit: wrote {path}");
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
