//! Criterion benches for the cache substrate: LRU operations, partitioned
//! buffer-cache references, and online stack-distance estimation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prefetch_cache::{BufferCache, LruCache, PrefetchMeta, StackDistanceEstimator};
use prefetch_trace::synth::TraceKind;
use prefetch_trace::BlockId;

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/lru");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("insert_touch_evict_100k", |b| {
        b.iter(|| {
            let mut lru: LruCache<u32> = LruCache::with_capacity(1024);
            for i in 0..100_000u64 {
                lru.insert(BlockId(i % 4096), i as u32);
                if lru.len() > 1024 {
                    lru.pop_lru();
                }
                lru.touch(BlockId((i * 7) % 4096));
            }
            black_box(lru.len())
        })
    });
    g.finish();
}

fn bench_buffer_cache(c: &mut Criterion) {
    let trace = TraceKind::Snake.generate(100_000, 3);
    let blocks: Vec<BlockId> = trace.blocks().collect();
    let mut g = c.benchmark_group("cache/buffer_cache");
    g.throughput(Throughput::Elements(blocks.len() as u64));
    g.bench_function("reference_stream_snake_100k", |b| {
        b.iter(|| {
            let mut cache = BufferCache::new(1024);
            let mut misses = 0u64;
            for &blk in &blocks {
                if matches!(cache.reference(blk), prefetch_cache::buffer_cache::RefOutcome::Miss) {
                    if cache.is_full() {
                        cache.evict_demand_lru();
                    }
                    cache.insert_demand(blk);
                    misses += 1;
                }
            }
            black_box(misses)
        })
    });
    g.bench_function("prefetch_migrate_cycle", |b| {
        b.iter(|| {
            let mut cache = BufferCache::new(256);
            for i in 0..50_000u64 {
                let blk = BlockId(i % 512);
                if !cache.contains(blk) {
                    if cache.is_full() {
                        cache
                            .evict_prefetch_lru()
                            .map(|_| ())
                            .or_else(|| cache.evict_demand_lru().map(|_| ()));
                    }
                    cache.insert_prefetch(blk, PrefetchMeta::default());
                }
                cache.reference(blk);
            }
            black_box(cache.len())
        })
    });
    g.finish();
}

fn bench_stack_distance(c: &mut Criterion) {
    let trace = TraceKind::Cello.generate(100_000, 4);
    let blocks: Vec<u64> = trace.blocks().map(|b| b.0).collect();
    let mut g = c.benchmark_group("cache/stack_distance");
    g.throughput(Throughput::Elements(blocks.len() as u64));
    for (name, decay) in [("cumulative", 1.0f64), ("decayed", 0.99999)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut e = StackDistanceEstimator::new(decay);
                for &blk in &blocks {
                    black_box(e.record(blk));
                }
                black_box(e.hit_rate(1024))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lru, bench_buffer_cache, bench_stack_distance);
criterion_main!(benches);
