//! Victim-selection microbenchmark: the lazy min-heap behind
//! [`CostBenefitEngine::best_prefetch_eject`] against the historical O(n)
//! scan it replaced ([`CostBenefitEngine::exact_prefetch_eject_scan`]).
//!
//! Each iteration runs a churn loop at steady state: query the cheapest
//! Eq. 11 victim, eject it, and insert a fresh prefetch in its place —
//! the access pattern of a full cache under continuous prefetching. The
//! scan pays O(n) per query; the heap amortises to O(log n), so the gap
//! widens with the prefetch-partition size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prefetch_cache::{BufferCache, PrefetchMeta};
use prefetch_core::{CostBenefitEngine, EngineConfig, SystemParams};
use prefetch_trace::BlockId;

const QUERIES: u64 = 1_000;

/// Deterministic xorshift so both paths see identical metadata streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn filled_cache(entries: u64) -> BufferCache {
    let mut cache = BufferCache::new(entries as usize + 8);
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for b in 0..entries {
        let r = rng.next();
        cache.insert_prefetch(
            BlockId(b),
            PrefetchMeta {
                probability: ((r % 1000) as f64 + 1.0) / 1001.0,
                distance: (r >> 10) as u32 % 64 + 2,
                issued_at: 0,
                sequential: false,
            },
        );
    }
    cache
}

fn churn<F>(cache: &mut BufferCache, next_block: &mut u64, rng: &mut Rng, pick: F) -> u64
where
    F: Fn(&BufferCache) -> Option<(BlockId, f64)>,
{
    let mut acc = 0u64;
    for _ in 0..QUERIES {
        let (victim, cost) = pick(cache).expect("partition stays non-empty");
        acc = acc.wrapping_add(victim.0).wrapping_add(cost.to_bits());
        cache.evict_prefetch(victim);
        let r = rng.next();
        cache.insert_prefetch(
            BlockId(*next_block),
            PrefetchMeta {
                probability: ((r % 1000) as f64 + 1.0) / 1001.0,
                distance: (r >> 10) as u32 % 64 + 2,
                issued_at: 0,
                sequential: false,
            },
        );
        *next_block += 1;
    }
    acc
}

fn bench_victim_select(c: &mut Criterion) {
    let engine = CostBenefitEngine::new(SystemParams::patterson(), EngineConfig::default());
    let mut g = c.benchmark_group("engine/victim_select");
    for entries in [512u64, 2048, 8192] {
        g.throughput(Throughput::Elements(QUERIES));
        // Churn keeps the partition at a constant size, so state carried
        // across iterations stays at steady state for both paths.
        g.bench_with_input(BenchmarkId::new("heap", entries), &entries, |b, &n| {
            let mut cache = filled_cache(n);
            let mut next = n;
            let mut rng = Rng(1);
            b.iter(|| {
                black_box(churn(&mut cache, &mut next, &mut rng, |c| engine.best_prefetch_eject(c)))
            })
        });
        g.bench_with_input(BenchmarkId::new("scan", entries), &entries, |b, &n| {
            let mut cache = filled_cache(n);
            let mut next = n;
            let mut rng = Rng(1);
            b.iter(|| {
                black_box(churn(&mut cache, &mut next, &mut rng, |c| {
                    engine.exact_prefetch_eject_scan(c)
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_victim_select);
criterion_main!(benches);
