//! Criterion benches for the LZ prefetch tree: parse/update throughput and
//! candidate enumeration (pruned vs full).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use prefetch_trace::synth::TraceKind;
use prefetch_trace::BlockId;
use prefetch_tree::PrefetchTree;

fn bench_record_access(c: &mut Criterion) {
    let trace = TraceKind::Cad.generate(50_000, 1);
    let blocks: Vec<BlockId> = trace.blocks().collect();

    let mut g = c.benchmark_group("tree/record_access");
    g.throughput(Throughput::Elements(blocks.len() as u64));
    g.bench_function("cad_50k", |b| {
        b.iter(|| {
            let mut tree = PrefetchTree::new();
            for &blk in &blocks {
                black_box(tree.record_access(blk));
            }
            tree.node_count()
        })
    });
    g.bench_function("cad_50k_node_limited_8k", |b| {
        b.iter(|| {
            let mut tree = PrefetchTree::with_node_limit(8192);
            for &blk in &blocks {
                black_box(tree.record_access(blk));
            }
            tree.node_count()
        })
    });
    g.finish();
}

fn bench_candidates(c: &mut Criterion) {
    // A trained tree with a bushy root (cello-like novelty).
    let trace = TraceKind::Cello.generate(100_000, 2);
    let mut tree = PrefetchTree::new();
    for blk in trace.blocks() {
        tree.record_access(blk);
    }
    let root = tree.root();

    let mut g = c.benchmark_group("tree/candidates");
    g.bench_function("full_root_children", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            tree.child_candidates(root, 1.0, 0, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("pruned_root_children", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            // The engine's Patterson-constant cutoff.
            tree.child_candidates_pruned(root, 1.0, 0, 0.0372, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("best_first_subtree_depth3", |b| {
        b.iter(|| black_box(tree.candidates_below(root, 3, 64).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_record_access, bench_candidates);
criterion_main!(benches);
