//! One criterion bench per paper artifact: times the regeneration of each
//! table/figure at smoke scale. Keeping every experiment wired into the
//! bench harness guarantees the reproduction path stays runnable; the full
//! runs go through the `figures` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prefetch_sim::experiments::{run_experiment, ExperimentOpts, TraceSet, ALL_IDS};

fn bench_each_artifact(c: &mut Criterion) {
    let opts = ExperimentOpts {
        refs: 4_000,
        seed: 1999,
        cache_sizes: vec![64, 256],
        ..ExperimentOpts::default()
    };
    let traces = TraceSet::generate(&opts);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for id in ALL_IDS {
        g.bench_function(id, |b| {
            b.iter(|| {
                let reports = run_experiment(id, &traces, &opts);
                black_box(reports.iter().map(|r| r.rows.len()).sum::<usize>())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_each_artifact);
criterion_main!(benches);
