//! # prefetch-bench
//!
//! Criterion micro-benchmarks for the substrates (tree operations, cache
//! operations, model evaluation, end-to-end simulation throughput) and the
//! `figures` binary that regenerates every table and figure of the paper.
//!
//! Run the full reproduction:
//!
//! ```text
//! cargo run --release -p prefetch-bench --bin figures -- all
//! ```
//!
//! or a single artifact (`fig6`, `table2`, ...), with options:
//!
//! ```text
//! figures -- fig6 --refs 400000 --seed 1999 --out results/
//! figures -- all --quick          # scaled-down smoke run
//! ```

/// Re-export so benches and the binary share one entry point.
pub use prefetch_sim::experiments;

pub mod perf {
    //! Machine-readable performance artifacts (`figures --bench-json`).
    //!
    //! One [`ExperimentPerf`] snapshot per experiment — wall time,
    //! references simulated, simulation throughput, cells run, and the
    //! per-phase profile — rendered by [`render_bench_json`] as a single
    //! JSON document (hand-rolled: the vendored serde derives are inert).

    use prefetch_telemetry::{Phase, PhaseTimes};

    /// Performance snapshot of one experiment run.
    #[derive(Clone, Debug)]
    pub struct ExperimentPerf {
        /// Experiment id (`fig6`, `table2`, ...).
        pub id: String,
        /// Wall-clock time of the experiment (ms).
        pub wall_ms: f64,
        /// References simulated by freshly-run cells.
        pub refs: u64,
        /// Sweep cells that produced a result (fresh + restored).
        pub cells: u64,
        /// Per-phase profile summed over the experiment's cells (all
        /// zero unless the harness ran with profiling enabled).
        pub phases: PhaseTimes,
    }

    impl ExperimentPerf {
        /// Simulation throughput; zero when the wall time rounds to zero.
        pub fn refs_per_sec(&self) -> f64 {
            if self.wall_ms <= 0.0 {
                0.0
            } else {
                self.refs as f64 / (self.wall_ms / 1e3)
            }
        }
    }

    fn fmt_f64(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Schema tag embedded in every bench artifact.
    pub const BENCH_SCHEMA: &str = "pfsim-bench/v1";

    /// Render the whole artifact. `refs`/`seed` echo the sweep
    /// configuration so an artifact is self-describing.
    pub fn render_bench_json(refs: usize, seed: u64, experiments: &[ExperimentPerf]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{BENCH_SCHEMA}\",\"refs\":{refs},\"seed\":{seed},\"experiments\":["
        ));
        for (i, e) in experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"wall_ms\":{},\"refs\":{},\"refs_per_sec\":{},\"cells\":{},\
                 \"phases_ms\":{{",
                e.id,
                fmt_f64(e.wall_ms),
                e.refs,
                fmt_f64(e.refs_per_sec()),
                e.cells,
            ));
            for (j, phase) in Phase::ALL.into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", phase.name(), fmt_f64(e.phases.ms(phase))));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bench_json_shape_is_stable() {
            let mut phases = PhaseTimes::default();
            phases.add_ns(Phase::TreeUpdate, 2_000_000);
            let perf = ExperimentPerf {
                id: "fig6".to_string(),
                wall_ms: 500.0,
                refs: 1000,
                cells: 4,
                phases,
            };
            let json = render_bench_json(8000, 1999, &[perf]);
            assert_eq!(
                json,
                "{\"schema\":\"pfsim-bench/v1\",\"refs\":8000,\"seed\":1999,\"experiments\":[\
                 {\"id\":\"fig6\",\"wall_ms\":500,\"refs\":1000,\"refs_per_sec\":2000,\
                 \"cells\":4,\"phases_ms\":{\"tree_update\":2,\"candidate_selection\":0,\
                 \"cost_benefit\":0,\"cache_ops\":0,\"io_submission\":0}}]}"
            );
        }

        #[test]
        fn throughput_guards_zero_wall_time() {
            let perf = ExperimentPerf {
                id: "x".to_string(),
                wall_ms: 0.0,
                refs: 10,
                cells: 1,
                phases: PhaseTimes::default(),
            };
            assert_eq!(perf.refs_per_sec(), 0.0);
            let json = render_bench_json(1, 1, &[perf]);
            assert!(json.contains("\"refs_per_sec\":0"));
        }

        #[test]
        fn empty_artifact_is_valid() {
            assert_eq!(
                render_bench_json(0, 0, &[]),
                "{\"schema\":\"pfsim-bench/v1\",\"refs\":0,\"seed\":0,\"experiments\":[]}"
            );
        }
    }
}
