//! # prefetch-bench
//!
//! Criterion micro-benchmarks for the substrates (tree operations, cache
//! operations, model evaluation, end-to-end simulation throughput) and the
//! `figures` binary that regenerates every table and figure of the paper.
//!
//! Run the full reproduction:
//!
//! ```text
//! cargo run --release -p prefetch-bench --bin figures -- all
//! ```
//!
//! or a single artifact (`fig6`, `table2`, ...), with options:
//!
//! ```text
//! figures -- fig6 --refs 400000 --seed 1999 --out results/
//! figures -- all --quick          # scaled-down smoke run
//! ```

/// Re-export so benches and the binary share one entry point.
pub use prefetch_sim::experiments;
