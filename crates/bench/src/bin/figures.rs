//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv]
//! ```
//!
//! `<id>` is one of `table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 fig14 fig15 fig16 fig17`. Markdown renderings go to
//! stdout; with `--out DIR` each report is also written as
//! `DIR/<report-id>.csv`.

use prefetch_sim::experiments::{run_all, run_experiment, ExperimentOpts, TraceSet, ALL_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    id: String,
    opts: ExperimentOpts,
    out: Option<PathBuf>,
    csv_stdout: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let id = argv.next().ok_or_else(usage)?;
    let mut opts = ExperimentOpts::default();
    let mut out = None;
    let mut csv_stdout = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => {
                let refs = opts.refs;
                opts = ExperimentOpts::quick();
                // --refs before --quick should still win; keep any
                // explicitly-set value if it differs from the default.
                if refs != ExperimentOpts::default().refs {
                    opts.refs = refs;
                }
            }
            "--refs" => {
                let v = argv.next().ok_or("--refs needs a value")?;
                opts.refs = v.parse().map_err(|_| format!("bad --refs {v:?}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--csv" => csv_stdout = true,
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    const EXTENSIONS: [&str; 3] = ["ablation", "disks", "resilience"];
    if id != "all" && !EXTENSIONS.contains(&id.as_str()) && !ALL_IDS.contains(&id.as_str()) {
        return Err(format!(
            "unknown experiment {id:?}; known: all, {}, {}",
            EXTENSIONS.join(", "),
            ALL_IDS.join(", ")
        ));
    }
    Ok(Args { id, opts, out, csv_stdout })
}

fn usage() -> String {
    "usage: figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv]".to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "generating traces (refs={}, seed={}) and running {} ...",
        args.opts.refs, args.opts.seed, args.id
    );
    let t0 = std::time::Instant::now();
    let traces = TraceSet::generate(&args.opts);
    eprintln!("traces ready in {:.1}s", t0.elapsed().as_secs_f64());

    let reports = if args.id == "all" {
        run_all(&traces, &args.opts)
    } else {
        run_experiment(&args.id, &traces, &args.opts)
    };

    for r in &reports {
        if args.csv_stdout {
            println!("{}", r.to_csv());
        } else {
            println!("{}", r.to_markdown());
        }
        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
                return ExitCode::FAILURE;
            }
            let path = dir.join(format!("{}.csv", r.id));
            if let Err(e) = std::fs::write(&path, r.to_csv()) {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("done in {:.1}s ({} report(s))", t0.elapsed().as_secs_f64(), reports.len());
    ExitCode::SUCCESS
}
