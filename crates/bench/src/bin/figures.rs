//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv]
//!         [--checkpoint DIR] [--resume] [--deadline-ms N] [--retries N]
//! ```
//!
//! `<id>` is one of `table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 fig14 fig15 fig16 fig17`. Markdown renderings go to
//! stdout; with `--out DIR` each report is also written as
//! `DIR/<report-id>.csv`.
//!
//! With `--checkpoint DIR` every completed sweep cell is journalled to
//! `DIR/journal.jsonl`, so a killed run can be relaunched with `--resume`
//! and only recompute the cells it lost. Without `--resume` any existing
//! journal is discarded so a fresh run cannot pick up stale results. Cells
//! that panic, time out (`--deadline-ms`), or exhaust their retries are
//! reported at the end and render as `NA` in the affected tables; the
//! process then exits with code 2 instead of aborting the whole sweep.

use prefetch_sim::checkpoint::JOURNAL_FILE;
use prefetch_sim::experiments::{run_all, run_experiment, ExperimentOpts, TraceSet, ALL_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    id: String,
    opts: ExperimentOpts,
    out: Option<PathBuf>,
    csv_stdout: bool,
    resume: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let id = argv.next().ok_or_else(usage)?;
    let mut opts = ExperimentOpts::default();
    let mut out = None;
    let mut csv_stdout = false;
    let mut resume = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => {
                let refs = opts.refs;
                let harness = std::mem::take(&mut opts.harness);
                opts = ExperimentOpts::quick();
                // Flags before --quick should still win; keep any
                // explicitly-set values that differ from the default.
                if refs != ExperimentOpts::default().refs {
                    opts.refs = refs;
                }
                opts.harness = harness;
            }
            "--refs" => {
                let v = argv.next().ok_or("--refs needs a value")?;
                opts.refs = v.parse().map_err(|_| format!("bad --refs {v:?}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--csv" => csv_stdout = true,
            "--checkpoint" => {
                let v = argv.next().ok_or("--checkpoint needs a directory")?;
                opts.harness.checkpoint_dir = Some(PathBuf::from(v));
            }
            "--resume" => resume = true,
            "--deadline-ms" => {
                let v = argv.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms {v:?}"))?;
                opts.harness.deadline_ms = Some(ms);
            }
            "--retries" => {
                let v = argv.next().ok_or("--retries needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retries {v:?}"))?;
                opts.harness.max_attempts = n.max(1);
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if resume && opts.harness.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint DIR".to_string());
    }
    const EXTENSIONS: [&str; 3] = ["ablation", "disks", "resilience"];
    if id != "all" && !EXTENSIONS.contains(&id.as_str()) && !ALL_IDS.contains(&id.as_str()) {
        return Err(format!(
            "unknown experiment {id:?}; known: all, {}, {}",
            EXTENSIONS.join(", "),
            ALL_IDS.join(", ")
        ));
    }
    Ok(Args { id, opts, out, csv_stdout, resume })
}

fn usage() -> String {
    "usage: figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv] \
     [--checkpoint DIR] [--resume] [--deadline-ms N] [--retries N]"
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = &args.opts.harness.checkpoint_dir {
        let journal = dir.join(JOURNAL_FILE);
        if args.resume {
            eprintln!("resuming from checkpoint journal {journal:?}");
        } else if journal.exists() {
            // A fresh run must not silently adopt another run's results.
            if let Err(e) = std::fs::remove_file(&journal) {
                eprintln!("cannot discard stale journal {journal:?}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("discarded stale journal {journal:?} (pass --resume to keep it)");
        }
    }

    eprintln!(
        "generating traces (refs={}, seed={}) and running {} ...",
        args.opts.refs, args.opts.seed, args.id
    );
    let t0 = std::time::Instant::now();
    let traces = TraceSet::generate(&args.opts);
    eprintln!("traces ready in {:.1}s", t0.elapsed().as_secs_f64());

    let reports = if args.id == "all" {
        run_all(&traces, &args.opts)
    } else {
        run_experiment(&args.id, &traces, &args.opts)
    };

    for r in &reports {
        if args.csv_stdout {
            println!("{}", r.to_csv());
        } else {
            println!("{}", r.to_markdown());
        }
        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
                return ExitCode::FAILURE;
            }
            let path = dir.join(format!("{}.csv", r.id));
            if let Err(e) = std::fs::write(&path, r.to_csv()) {
                eprintln!("cannot write {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("done in {:.1}s ({} report(s))", t0.elapsed().as_secs_f64(), reports.len());

    // Partial-result report: the experiments above absorb every cell
    // outcome into the shared sweep log instead of panicking, so surface
    // what (if anything) went wrong and fail the run visibly.
    let log = &args.opts.harness.log;
    for note in log.notes() {
        eprintln!("note: {note}");
    }
    let s = log.summary();
    if s.restored > 0 || s.retries > 0 {
        eprintln!(
            "checkpoint: {} cell(s) restored from the journal, {} retry attempt(s)",
            s.restored, s.retries
        );
    }
    let failures = log.failures();
    if failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "WARNING: {} of {} cell(s) did not complete ({} failed, {} timed out, {} skipped); \
         affected table entries are rendered as NA",
        s.incomplete(),
        s.ok + s.restored + s.incomplete(),
        s.failed,
        s.timed_out,
        s.skipped
    );
    for f in &failures {
        eprintln!("  {} / {}: {}", f.trace, f.cell, f.error);
    }
    ExitCode::from(2)
}
