//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv]
//!         [--checkpoint DIR] [--resume] [--deadline-ms N] [--retries N]
//!         [--bench-json PATH] [--log-json PATH] [--threads N]
//!         [--kernel scalar|auto] [--save-tree DIR] [--load-tree DIR]
//! ```
//!
//! The `snapshot` experiment measures `pftree-snap/v1`: exact bytes/node
//! of the trained trees, snapshot payload vs encoded size, and a
//! train → snapshot → restore → continue identity check. `--save-tree DIR`
//! persists the four trained trees as `DIR/<trace>.pftree`; `--load-tree
//! DIR` warm-starts training from those files (the flags compose across
//! invocations, so the trees keep growing run over run).
//!
//! `--threads N` sizes the sweep worker pool (default: one worker per
//! available hardware thread; `--threads 1` runs the exact sequential
//! path). Results are bit-identical at any thread count — the pool
//! collects cells in index order and the checkpoint journal flushes in
//! fingerprint order, so CSVs and journals never depend on the schedule.
//!
//! `--kernel scalar|auto` selects the batched cost-benefit kernel path
//! (`auto`, the default, dispatches on detected CPU features). Every path
//! is bit-identical, so this only changes throughput — CI diffs the CSVs
//! of a `scalar` and an `auto` run byte-for-byte to prove it.
//!
//! `--bench-json PATH` profiles every sweep cell and writes a
//! machine-readable perf artifact (wall time, refs/sec, cell count, and
//! per-phase breakdown per experiment); with id `all` the experiments run
//! individually so each gets its own attribution. `--log-json PATH`
//! mirrors the structured run log (JSONL) for archiving alongside the
//! artifact.
//!
//! `<id>` is one of `table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 fig14 fig15 fig16 fig17`. Markdown renderings go to
//! stdout; with `--out DIR` each report is also written as
//! `DIR/<report-id>.csv`.
//!
//! With `--checkpoint DIR` every completed sweep cell is journalled to
//! `DIR/journal.jsonl`, so a killed run can be relaunched with `--resume`
//! and only recompute the cells it lost. Without `--resume` any existing
//! journal is discarded so a fresh run cannot pick up stale results. Cells
//! that panic, time out (`--deadline-ms`), or exhaust their retries are
//! reported at the end and render as `NA` in the affected tables; the
//! process then exits with code 2 instead of aborting the whole sweep.

use prefetch_bench::perf::{render_bench_json, ExperimentPerf};
use prefetch_sim::checkpoint::JOURNAL_FILE;
use prefetch_sim::experiments::{run_all, run_experiment, ExperimentOpts, TraceSet, ALL_IDS};
use prefetch_telemetry::log as tlog;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    id: String,
    opts: ExperimentOpts,
    out: Option<PathBuf>,
    csv_stdout: bool,
    resume: bool,
    bench_json: Option<PathBuf>,
    log_json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let id = argv.next().ok_or_else(usage)?;
    let mut opts = ExperimentOpts::default();
    let mut out = None;
    let mut csv_stdout = false;
    let mut resume = false;
    let mut bench_json = None;
    let mut log_json = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--quick" => {
                let refs = opts.refs;
                let harness = std::mem::take(&mut opts.harness);
                opts = ExperimentOpts::quick();
                // Flags before --quick should still win; keep any
                // explicitly-set values that differ from the default.
                if refs != ExperimentOpts::default().refs {
                    opts.refs = refs;
                }
                opts.harness = harness;
            }
            "--refs" => {
                let v = argv.next().ok_or("--refs needs a value")?;
                opts.refs = v.parse().map_err(|_| format!("bad --refs {v:?}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--csv" => csv_stdout = true,
            "--checkpoint" => {
                let v = argv.next().ok_or("--checkpoint needs a directory")?;
                opts.harness.checkpoint_dir = Some(PathBuf::from(v));
            }
            "--resume" => resume = true,
            "--deadline-ms" => {
                let v = argv.next().ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms {v:?}"))?;
                opts.harness.deadline_ms = Some(ms);
            }
            "--retries" => {
                let v = argv.next().ok_or("--retries needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retries {v:?}"))?;
                opts.harness.max_attempts = n.max(1);
            }
            "--bench-json" => {
                let v = argv.next().ok_or("--bench-json needs a path")?;
                bench_json = Some(PathBuf::from(v));
            }
            "--log-json" => {
                let v = argv.next().ok_or("--log-json needs a path")?;
                log_json = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --threads {v:?}"))?;
                prefetch_pool::set_threads(n);
            }
            "--kernel" => {
                let v = argv.next().ok_or("--kernel needs scalar|auto")?;
                prefetch_core::kernel::force(v.parse().map_err(|e| format!("bad --kernel: {e}"))?);
            }
            "--save-tree" => {
                let v = argv.next().ok_or("--save-tree needs a directory")?;
                opts.save_tree = Some(PathBuf::from(v));
            }
            "--load-tree" => {
                let v = argv.next().ok_or("--load-tree needs a directory")?;
                opts.load_tree = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if resume && opts.harness.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint DIR".to_string());
    }
    const EXTENSIONS: [&str; 4] = ["ablation", "disks", "resilience", "snapshot"];
    if (opts.save_tree.is_some() || opts.load_tree.is_some()) && id != "snapshot" {
        return Err("--save-tree/--load-tree apply to the snapshot experiment only".to_string());
    }
    if id != "all" && !EXTENSIONS.contains(&id.as_str()) && !ALL_IDS.contains(&id.as_str()) {
        return Err(format!(
            "unknown experiment {id:?}; known: all, {}, {}",
            EXTENSIONS.join(", "),
            ALL_IDS.join(", ")
        ));
    }
    if bench_json.is_some() {
        // Per-phase attribution needs profiled cells.
        opts.harness.profile = true;
    }
    Ok(Args { id, opts, out, csv_stdout, resume, bench_json, log_json })
}

fn usage() -> String {
    "usage: figures <id>|all [--quick] [--refs N] [--seed S] [--out DIR] [--csv] \
     [--checkpoint DIR] [--resume] [--deadline-ms N] [--retries N] \
     [--bench-json PATH] [--log-json PATH] [--threads N] [--kernel scalar|auto] \
     [--save-tree DIR] [--load-tree DIR]"
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.log_json {
        if let Err(e) = tlog::set_json_path(path) {
            eprintln!("cannot open --log-json {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(dir) = &args.opts.harness.checkpoint_dir {
        let journal = dir.join(JOURNAL_FILE);
        if args.resume {
            tlog::info("checkpoint_resume").str("path", journal.display().to_string()).emit();
        } else if journal.exists() {
            // A fresh run must not silently adopt another run's results.
            if let Err(e) = std::fs::remove_file(&journal) {
                tlog::error("journal_discard_failed")
                    .str("path", journal.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                return ExitCode::FAILURE;
            }
            tlog::warn("journal_discarded")
                .str("path", journal.display().to_string())
                .str("hint", "pass --resume to keep it")
                .emit();
        }
    }

    tlog::info("run_start")
        .str("id", args.id.clone())
        .u64("refs", args.opts.refs as u64)
        .u64("seed", args.opts.seed)
        .bool("profile", args.opts.harness.profile)
        .u64("threads", prefetch_pool::effective_threads() as u64)
        .str("kernel", prefetch_core::kernel::active().name)
        .emit();
    let t0 = Instant::now();
    let traces = TraceSet::generate(&args.opts);
    tlog::info("traces_ready").f64("elapsed_s", t0.elapsed().as_secs_f64()).emit();

    // With --bench-json every experiment runs individually (even under
    // `all`) so wall time, throughput, and phase totals attribute cleanly;
    // the per-experiment snapshot deltas of the shared sweep log isolate
    // each experiment's contribution.
    let mut perfs: Vec<ExperimentPerf> = Vec::new();
    let reports = if args.bench_json.is_some() {
        let ids: Vec<&str> =
            if args.id == "all" { ALL_IDS.to_vec() } else { vec![args.id.as_str()] };
        let log = args.opts.harness.log.clone();
        let mut reports = Vec::new();
        for id in ids {
            let refs0 = log.refs_simulated();
            let phases0 = log.phases();
            let s0 = log.summary();
            let te = Instant::now();
            reports.extend(run_experiment(id, &traces, &args.opts));
            let wall_ms = te.elapsed().as_secs_f64() * 1e3;
            let s1 = log.summary();
            let cells =
                (s1.ok + s1.restored + s1.incomplete()) - (s0.ok + s0.restored + s0.incomplete());
            perfs.push(ExperimentPerf {
                id: id.to_string(),
                wall_ms,
                refs: log.refs_simulated() - refs0,
                cells,
                phases: log.phases().minus(&phases0),
            });
        }
        reports
    } else if args.id == "all" {
        run_all(&traces, &args.opts)
    } else {
        run_experiment(&args.id, &traces, &args.opts)
    };

    for r in &reports {
        if args.csv_stdout {
            println!("{}", r.to_csv());
        } else {
            println!("{}", r.to_markdown());
        }
        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                tlog::error("out_dir_failed")
                    .str("path", dir.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                return ExitCode::FAILURE;
            }
            let path = dir.join(format!("{}.csv", r.id));
            if let Err(e) = std::fs::write(&path, r.to_csv()) {
                tlog::error("csv_write_failed")
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
                tlog::flush();
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.bench_json {
        let json = render_bench_json(args.opts.refs, args.opts.seed, &perfs);
        if let Err(e) = std::fs::write(path, json + "\n") {
            tlog::error("bench_json_failed")
                .str("path", path.display().to_string())
                .str("error", e.to_string())
                .emit();
            tlog::flush();
            return ExitCode::FAILURE;
        }
        tlog::info("bench_json_written")
            .str("path", path.display().to_string())
            .u64("experiments", perfs.len() as u64)
            .emit();
    }
    tlog::info("run_done")
        .f64("elapsed_s", t0.elapsed().as_secs_f64())
        .u64("reports", reports.len() as u64)
        .emit();

    // Partial-result report: the experiments above absorb every cell
    // outcome into the shared sweep log instead of panicking, so surface
    // what (if anything) went wrong and fail the run visibly.
    let log = &args.opts.harness.log;
    for note in log.notes() {
        tlog::warn("note").str("note", note).emit();
    }
    let s = log.summary();
    if s.restored > 0 || s.retries > 0 {
        tlog::info("checkpoint_summary")
            .u64("restored", s.restored)
            .u64("retries", s.retries)
            .emit();
    }
    let failures = log.failures();
    if failures.is_empty() {
        tlog::flush();
        return ExitCode::SUCCESS;
    }
    tlog::warn("cells_incomplete")
        .u64("incomplete", s.incomplete())
        .u64("total", s.ok + s.restored + s.incomplete())
        .u64("failed", s.failed)
        .u64("timed_out", s.timed_out)
        .u64("skipped", s.skipped)
        .str("effect", "affected table entries are rendered as NA")
        .emit();
    for f in &failures {
        tlog::error("cell_incomplete")
            .str("trace", f.trace.clone())
            .str("cell", f.cell.clone())
            .str("error", f.error.clone())
            .emit();
    }
    tlog::flush();
    ExitCode::from(2)
}
