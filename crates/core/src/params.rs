//! System model parameters (paper Sections 3 and 8.1).
//!
//! All times are in **milliseconds**. The defaults are the constants the
//! paper takes from Patterson's informed-prefetching work: `T_hit = 0.243`,
//! `T_driver = 0.580`, `T_disk = 15.0`, and `T_cpu = 50.0` (varied between
//! 20 and 640 in Section 9.2.3 / Figures 11-12).

use serde::{Deserialize, Serialize};

/// Timing constants of the uniprocessor system model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Time to read a block that is resident in the buffer cache (ms).
    pub t_hit: f64,
    /// Device-driver overhead to initiate any fetch: allocate a buffer,
    /// queue the request, service the completion interrupt (ms).
    pub t_driver: f64,
    /// Constant disk access time (ms); the model assumes enough disks that
    /// there is never congestion.
    pub t_disk: f64,
    /// Average computation time between two I/O requests (ms).
    pub t_cpu: f64,
}

impl SystemParams {
    /// The paper's constants (Section 8.1).
    pub fn patterson() -> Self {
        SystemParams { t_hit: 0.243, t_driver: 0.580, t_disk: 15.0, t_cpu: 50.0 }
    }

    /// Same constants with a different `T_cpu` (the Section 9.2.3 sweep).
    pub fn with_t_cpu(t_cpu: f64) -> Self {
        SystemParams { t_cpu, ..Self::patterson() }
    }

    /// Time of a full demand miss: `T_miss = T_driver + T_disk + T_hit`
    /// (Section 6.2).
    pub fn t_miss(&self) -> f64 {
        self.t_driver + self.t_disk + self.t_hit
    }

    /// Check that all parameters are finite and non-negative, reporting
    /// the first offender. Non-panicking form for callers that want a
    /// typed configuration error.
    pub fn check(&self) -> Result<(), String> {
        for (name, v) in [
            ("t_hit", self.t_hit),
            ("t_driver", self.t_driver),
            ("t_disk", self.t_disk),
            ("t_cpu", self.t_cpu),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }

    /// Validate that all parameters are finite and non-negative.
    ///
    /// # Panics
    /// Panics on invalid parameters; call at configuration boundaries.
    /// Prefer [`SystemParams::check`] where a recoverable error is wanted.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::patterson()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterson_constants() {
        let p = SystemParams::patterson();
        assert_eq!(p.t_hit, 0.243);
        assert_eq!(p.t_driver, 0.580);
        assert_eq!(p.t_disk, 15.0);
        assert_eq!(p.t_cpu, 50.0);
        assert_eq!(SystemParams::default(), p);
    }

    #[test]
    fn t_miss_is_driver_plus_disk_plus_hit() {
        let p = SystemParams::patterson();
        assert!((p.t_miss() - 15.823).abs() < 1e-12);
    }

    #[test]
    fn with_t_cpu_overrides_only_cpu() {
        let p = SystemParams::with_t_cpu(640.0);
        assert_eq!(p.t_cpu, 640.0);
        assert_eq!(p.t_disk, 15.0);
    }

    #[test]
    #[should_panic(expected = "t_disk")]
    fn validate_rejects_negative() {
        SystemParams { t_disk: -1.0, ..SystemParams::patterson() }.validate();
    }
}
