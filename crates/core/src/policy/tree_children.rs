//! The `tree-children` parametric baseline (Section 9.7): "After accessing
//! a block in the prefetch tree, a fixed number of child nodes with the
//! highest probability of future access are prefetched" — the scheme of
//! Kroeger & Long (USENIX Winter'96), **without** cost-benefit analysis.
//!
//! Replacement follows the same documented convention as
//! [`crate::policy::TreeThreshold`].

use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, Victim};
use prefetch_cache::{BufferCache, PrefetchMeta};
use prefetch_tree::PrefetchTree;

/// Top-k-children tree prefetching without cost-benefit analysis.
pub struct TreeChildren {
    tree: PrefetchTree,
    k: usize,
    cap_fraction: f64,
    period: u64,
}

impl TreeChildren {
    /// Build with the number of children to prefetch per access (the paper
    /// found optima between 3 and 10).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TreeChildren { tree: PrefetchTree::new(), k, cap_fraction: 0.10, period: 0 }
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Read access to the tree.
    pub fn tree(&self) -> &PrefetchTree {
        &self.tree
    }

    fn make_room(&self, cache: &mut BufferCache, act: &mut PeriodActivity) {
        let cap = ((cache.capacity() as f64 * self.cap_fraction) as usize).max(1);
        if cache.prefetch_len() >= cap {
            cache.evict_prefetch_lru();
            act.prefetch_evictions += 1;
        } else if cache.is_full() {
            if cache.demand_len() > 0 {
                cache.evict_demand_lru();
                act.demand_evictions_for_prefetch += 1;
            } else {
                cache.evict_prefetch_lru();
                act.prefetch_evictions += 1;
            }
        }
    }
}

impl PrefetchPolicy for TreeChildren {
    fn name(&self) -> &'static str {
        "tree-children"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        if cache.demand_len() > 0 {
            Victim::DemandLru
        } else {
            Victim::Prefetch(cache.prefetch_iter_lru().next().expect("cache full").0)
        }
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        let outcome = self.tree.record_access(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;

        let cursor = self.tree.cursor();
        // Children are stored sorted by descending weight, so the k most
        // probable children are simply the first k — no scan, no sort.
        let mut children = Vec::new();
        self.tree.child_candidates_topk(cursor, 1.0, 0, self.k, &mut children);
        for cand in children {
            act.candidates_considered += 1;
            if cache.contains(cand.block) {
                act.candidates_already_cached += 1;
                continue;
            }
            self.make_room(cache, act);
            cache.insert_prefetch(
                cand.block,
                PrefetchMeta {
                    probability: cand.probability,
                    distance: 1,
                    issued_at: self.period,
                    sequential: false,
                },
            );
            act.prefetched_blocks.push(cand.block);
            act.prefetches_issued += 1;
            act.prefetch_probability_sum += cand.probability;
        }
        self.period += 1;
    }

    fn tree(&self) -> Option<&PrefetchTree> {
        Some(&self.tree)
    }

    fn install_tree(&mut self, tree: PrefetchTree) -> bool {
        self.tree = tree;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RefKind;
    use prefetch_trace::BlockId;

    fn access(p: &mut TreeChildren, cache: &mut BufferCache, b: u64) -> PeriodActivity {
        let ctx =
            RefContext { block: BlockId(b), kind: RefKind::DemandHit, next_block: None, period: 0 };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, cache, &mut act);
        act
    }

    #[test]
    fn prefetches_top_k_children() {
        let mut p = TreeChildren::new(2);
        let mut cache = BufferCache::new(100);
        // After 1: block 2 follows 5×, block 3 follows 3×, block 4 once.
        for _ in 0..5 {
            access(&mut p, &mut cache, 1);
            access(&mut p, &mut cache, 2);
        }
        for _ in 0..3 {
            access(&mut p, &mut cache, 1);
            access(&mut p, &mut cache, 3);
        }
        access(&mut p, &mut cache, 1);
        access(&mut p, &mut cache, 4);
        while cache.prefetch_len() > 0 {
            cache.evict_prefetch_lru();
        }
        let act = access(&mut p, &mut cache, 1);
        assert!(cache.contains(BlockId(2)));
        assert!(cache.contains(BlockId(3)));
        assert!(!cache.contains(BlockId(4)), "k=2 must skip the third child");
        assert_eq!(act.prefetches_issued, 2);
    }

    #[test]
    fn fewer_children_than_k_is_fine() {
        let mut p = TreeChildren::new(5);
        let mut cache = BufferCache::new(100);
        // Parse (1)(2)(1 2): node(1) then has exactly one child, 2.
        access(&mut p, &mut cache, 1);
        access(&mut p, &mut cache, 2);
        access(&mut p, &mut cache, 1);
        access(&mut p, &mut cache, 2);
        let act = access(&mut p, &mut cache, 1);
        assert_eq!(act.prefetches_issued + act.candidates_already_cached, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        TreeChildren::new(0);
    }
}
