//! The prefetching policy interface and the eight policies of the paper.
//!
//! | policy | paper section | description |
//! |---|---|---|
//! | [`NoPrefetch`] | 9 | demand fetching only, LRU replacement |
//! | [`NextLimit`] | 9 | one-block-lookahead on every demand fetch, prefetch partition capped at 10% of the cache |
//! | [`TreePolicy`] | 2-7 | the paper's contribution: prefetch-tree candidates judged by cost-benefit analysis |
//! | [`TreeNextLimit`] | 9 | `tree` + `next-limit` combined — the paper's best performer |
//! | [`TreeLvc`] | 9.6 | `tree` + always prefetch the cursor's last-visited child |
//! | [`TreeThreshold`] | 9.7 | parametric baseline (Curewitz et al.): prefetch all children above a probability threshold |
//! | [`TreeChildren`] | 9.7 | parametric baseline (Kroeger & Long): prefetch the top-k children |
//! | [`PerfectSelector`] | 9.5 | oracle: prefetch the actual next access iff the tree predicted it |
//!
//! The simulation driver (in `prefetch-sim`) owns the [`BufferCache`] and
//! the reference loop; a policy (a) picks eviction victims on demand misses
//! and (b) reacts to every completed reference by updating its predictor
//! state and issuing prefetches directly into the cache, reporting what it
//! did through [`PeriodActivity`].

mod next_limit;
mod no_prefetch;
mod perfect_selector;
mod tree;
mod tree_children;
mod tree_lvc;
mod tree_next_limit;
mod tree_threshold;

pub use next_limit::NextLimit;
pub use no_prefetch::NoPrefetch;
pub use perfect_selector::PerfectSelector;
pub use tree::TreePolicy;
pub use tree_children::TreeChildren;
pub use tree_lvc::TreeLvc;
pub use tree_next_limit::TreeNextLimit;
pub use tree_threshold::TreeThreshold;

use prefetch_cache::BufferCache;
use prefetch_trace::BlockId;

/// How the just-completed reference was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefKind {
    /// Found in the demand cache.
    DemandHit,
    /// Found in the prefetch cache (now migrated to demand).
    PrefetchHit,
    /// Demand-fetched from disk.
    Miss,
}

/// Per-reference context handed to the policy.
#[derive(Clone, Copy, Debug)]
pub struct RefContext {
    /// The block just referenced (already resident in the demand cache).
    pub block: BlockId,
    /// How the reference was served.
    pub kind: RefKind,
    /// One-reference lookahead, used only by the [`PerfectSelector`]
    /// oracle (Section 9.5). `None` at end of trace. Streaming drivers
    /// provide it by buffering exactly one record ahead of the one being
    /// simulated, so the oracle sees the same input whether the trace is
    /// materialized or streamed.
    pub next_block: Option<BlockId>,
    /// Index of this access period (monotone reference counter).
    pub period: u64,
}

/// What the policy did during one access period; the simulator folds this
/// into its metrics (Figures 7-12, 14, 16).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PeriodActivity {
    /// The blocks prefetched this period, in issue order (the simulator's
    /// disk model prices their queueing). Length equals
    /// `prefetches_issued`.
    pub prefetched_blocks: Vec<BlockId>,
    /// Prefetches issued (disk reads caused by prefetching).
    pub prefetches_issued: u32,
    /// Sum of tree probabilities of the prefetched blocks (Figure 10).
    pub prefetch_probability_sum: f64,
    /// Candidates the selector examined this period.
    pub candidates_considered: u32,
    /// Candidates chosen for prefetch that were already resident
    /// (Figure 7).
    pub candidates_already_cached: u32,
    /// Candidates skipped because they sit in the fault quarantine
    /// (repeatedly failing disk reads). Zero whenever fault injection is
    /// off.
    pub candidates_quarantined: u32,
    /// Blocks ejected from the prefetch cache to make room.
    pub prefetch_evictions: u32,
    /// Demand buffers given up to prefetching.
    pub demand_evictions_for_prefetch: u32,
    /// This access was predictable from the tree cursor (Table 2).
    pub predictable: bool,
    /// For tree policies: whether the cursor node's last-visited child was
    /// repeated by this access (Table 3). `None` when the node had no
    /// history or the policy keeps no tree.
    pub lvc_repeat: Option<bool>,
    /// Whether the cursor's last-visited child was already resident when
    /// visited (Figure 16).
    pub lvc_already_cached: Option<bool>,
}

/// Replacement victim chosen by a policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Victim {
    /// Evict the demand-cache LRU block (Eq. 13 side).
    DemandLru,
    /// Evict this block from the prefetch cache (Eq. 11 side).
    Prefetch(BlockId),
}

/// A prefetching policy. Object-safe; the simulator drives it through a
/// `Box<dyn PrefetchPolicy>`. `Send` so simulator state (e.g. one
/// advisor per tenant in `pfserve`) can migrate between worker threads;
/// policies are plain data structures, so this costs implementors
/// nothing.
pub trait PrefetchPolicy: Send {
    /// Short name matching the paper's terminology (e.g. `"tree-next-limit"`).
    fn name(&self) -> &'static str;

    /// Choose the buffer to free for a *demand* fetch when the cache is
    /// full. Must name a victim that exists; [`apply_victim`] applies it.
    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim;

    /// Called after every reference has been served (the referenced block
    /// is resident in the demand cache). The policy updates its predictor
    /// and issues prefetches by mutating `cache`, recording its actions in
    /// `act`.
    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    );

    /// A prefetch this policy issued failed on the disk array (the
    /// simulator has already released the buffer and charged `T_oh`).
    /// Returns `true` if the failure quarantined the block. Default:
    /// stateless policies ignore faults.
    fn note_prefetch_fault(&mut self, _block: BlockId) -> bool {
        false
    }

    /// A disk read of `block` succeeded; policies tracking fault history
    /// may clear it. Default: no-op.
    fn note_read_success(&mut self, _block: BlockId) {}

    /// Called once per reference with how it was served and the stall it
    /// cost, *before* [`PrefetchPolicy::after_reference`]. Engine-backed
    /// policies use it to realize the calibration counterparts of their
    /// earlier cost-benefit predictions. Default: no-op.
    fn observe_served(&mut self, _block: BlockId, _kind: RefKind, _stall_ms: f64) {}

    /// Predicted-vs-realized calibration accumulators, for policies that
    /// track them (the cost-benefit engine). Default: none.
    fn calibration(&self) -> Option<&crate::calibration::CalibrationTracker> {
        None
    }

    /// Turn on per-phase profiling inside the policy (tree update,
    /// candidate selection, cost-benefit). Default: stateless policies
    /// have nothing to profile.
    fn enable_profiling(&mut self) {}

    /// Per-phase times accumulated by the policy's internals. Default:
    /// all zero.
    fn phase_times(&self) -> prefetch_telemetry::PhaseTimes {
        prefetch_telemetry::PhaseTimes::default()
    }

    /// The prefetch tree this policy trains, if it keeps one — snapshot
    /// support (`pftree-snap/v1`): `pfserve` persists it on drain and
    /// `pfsim --save-tree` at end of run. Default: stateless policies
    /// have no tree.
    fn tree(&self) -> Option<&prefetch_tree::PrefetchTree> {
        None
    }

    /// Warm-start: replace this policy's tree with one restored from a
    /// snapshot. Returns `false` (and drops the tree) for policies that
    /// keep no tree, so callers can report a warm start that did not
    /// take. Default: refuse.
    fn install_tree(&mut self, _tree: prefetch_tree::PrefetchTree) -> bool {
        false
    }
}

/// Apply a victim choice, freeing exactly one buffer. Returns whether the
/// victim came from the prefetch cache.
///
/// # Panics
/// Panics if the chosen victim does not exist (policy bug).
pub fn apply_victim(victim: Victim, cache: &mut BufferCache) -> bool {
    match victim {
        Victim::DemandLru => {
            cache.evict_demand_lru().expect("demand victim chosen but demand cache empty");
            false
        }
        Victim::Prefetch(b) => {
            cache.evict_prefetch(b).expect("prefetch victim chosen but block not present");
            true
        }
    }
}

/// Fallback victim when a policy has no preference: the demand LRU if the
/// demand cache is non-empty, else the oldest prefetched block.
pub fn default_victim(cache: &BufferCache) -> Victim {
    if cache.demand_len() > 0 {
        Victim::DemandLru
    } else {
        let (b, _) =
            cache.prefetch_iter_lru().next().expect("cache full but both partitions empty");
        Victim::Prefetch(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_cache::PrefetchMeta;

    #[test]
    fn apply_victim_frees_one_buffer() {
        let mut c = BufferCache::new(2);
        c.insert_demand(BlockId(1));
        c.insert_prefetch(BlockId(2), PrefetchMeta::default());
        assert!(c.is_full());
        assert!(!apply_victim(Victim::DemandLru, &mut c));
        assert_eq!(c.len(), 1);
        assert!(apply_victim(Victim::Prefetch(BlockId(2)), &mut c));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "demand victim")]
    fn apply_bad_victim_panics() {
        let mut c = BufferCache::new(2);
        c.insert_prefetch(BlockId(2), PrefetchMeta::default());
        apply_victim(Victim::DemandLru, &mut c);
    }

    #[test]
    fn default_victim_prefers_demand() {
        let mut c = BufferCache::new(2);
        c.insert_demand(BlockId(1));
        c.insert_prefetch(BlockId(2), PrefetchMeta::default());
        assert_eq!(default_victim(&c), Victim::DemandLru);
        c.evict_demand_lru();
        assert_eq!(default_victim(&c), Victim::Prefetch(BlockId(2)));
    }
}
