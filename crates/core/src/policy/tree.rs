//! The `tree` policy: the paper's cost-benefit predictive prefetching.

use crate::engine::{CostBenefitEngine, EngineConfig};
use crate::params::SystemParams;
use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, RefKind, Victim};
use prefetch_cache::BufferCache;

/// Prefetch-tree candidates judged by the Section 7 cost-benefit analysis;
/// replacement victims priced by Eq. 11 vs Eq. 13.
pub struct TreePolicy {
    engine: CostBenefitEngine,
    name: &'static str,
}

impl TreePolicy {
    /// Build with the given system constants and engine configuration.
    pub fn new(params: SystemParams, cfg: EngineConfig) -> Self {
        let name = if cfg.reanchor_after_reset { "tree-reanchor" } else { "tree" };
        TreePolicy { engine: CostBenefitEngine::new(params, cfg), name }
    }

    /// Paper defaults.
    pub fn patterson() -> Self {
        Self::new(SystemParams::patterson(), EngineConfig::default())
    }

    /// The re-anchoring extension (see
    /// [`EngineConfig::reanchor_after_reset`]): paper-default constants
    /// plus order-1 re-anchoring after LZ resets.
    pub fn reanchor() -> Self {
        let cfg = EngineConfig { reanchor_after_reset: true, ..EngineConfig::default() };
        Self::new(SystemParams::patterson(), cfg)
    }

    /// Read access to the engine (tree statistics, model state).
    pub fn engine(&self) -> &CostBenefitEngine {
        &self.engine
    }
}

impl PrefetchPolicy for TreePolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        self.engine.demand_victim_timed(cache)
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        if ctx.kind == RefKind::PrefetchHit {
            self.engine.model_mut().observe_prefetch_hit();
        }
        // Figure 16 statistic: observed on the pre-access cursor.
        act.lvc_already_cached = self.engine.lvc_already_cached(cache);
        let outcome = self.engine.record_reference(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;
        self.engine.prefetch_round(ctx.block, cache, act);
    }

    fn note_prefetch_fault(&mut self, block: prefetch_trace::BlockId) -> bool {
        self.engine.note_prefetch_fault(block)
    }

    fn note_read_success(&mut self, block: prefetch_trace::BlockId) {
        self.engine.note_read_success(block);
    }

    fn observe_served(
        &mut self,
        block: prefetch_trace::BlockId,
        kind: crate::policy::RefKind,
        stall_ms: f64,
    ) {
        self.engine.observe_outcome(block, kind, stall_ms);
    }

    fn calibration(&self) -> Option<&crate::calibration::CalibrationTracker> {
        Some(self.engine.calibration())
    }

    fn enable_profiling(&mut self) {
        self.engine.enable_profiling();
    }

    fn phase_times(&self) -> prefetch_telemetry::PhaseTimes {
        self.engine.phase_times()
    }

    fn tree(&self) -> Option<&prefetch_tree::PrefetchTree> {
        Some(self.engine.tree())
    }

    fn install_tree(&mut self, tree: prefetch_tree::PrefetchTree) -> bool {
        self.engine.install_tree(tree);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_trace::BlockId;

    fn drive(policy: &mut TreePolicy, cache: &mut BufferCache, block: u64) -> PeriodActivity {
        use prefetch_cache::buffer_cache::RefOutcome;
        let b = BlockId(block);
        let kind = match cache.reference(b) {
            RefOutcome::DemandHit => RefKind::DemandHit,
            RefOutcome::PrefetchHit(_) => RefKind::PrefetchHit,
            RefOutcome::Miss => {
                if cache.is_full() {
                    let v = policy.choose_demand_victim(cache);
                    crate::policy::apply_victim(v, cache);
                }
                cache.insert_demand(b);
                RefKind::Miss
            }
        };
        let ctx = RefContext { block: b, kind, next_block: None, period: policy.engine.period() };
        let mut act = PeriodActivity::default();
        policy.after_reference(&ctx, cache, &mut act);
        act
    }

    #[test]
    fn learns_a_cycle_and_turns_misses_into_prefetch_hits() {
        let mut p = TreePolicy::patterson();
        let mut cache = BufferCache::new(8);
        let cycle = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        // The cycle (12 blocks) exceeds the cache (8), so pure LRU never
        // hits. With tree prefetching, later laps should see prefetch hits.
        let mut hits_by_lap = Vec::new();
        for _ in 0..60 {
            let mut lap_hits = 0;
            for &b in &cycle {
                let before = cache.whereis(BlockId(b));
                let _ = drive(&mut p, &mut cache, b);
                if before == Some(prefetch_cache::Partition::Prefetch) {
                    lap_hits += 1;
                }
            }
            hits_by_lap.push(lap_hits);
        }
        let late: usize = hits_by_lap[40..].iter().sum();
        assert!(late > 0, "tree policy never produced a prefetch hit: {hits_by_lap:?}");
    }

    #[test]
    fn reports_predictability_flags() {
        let mut p = TreePolicy::patterson();
        let mut cache = BufferCache::new(16);
        for _ in 0..5 {
            for b in [1u64, 2, 3] {
                drive(&mut p, &mut cache, b);
            }
        }
        // After training, accessing 1 then 2 should be flagged predictable.
        drive(&mut p, &mut cache, 1);
        let act = drive(&mut p, &mut cache, 2);
        assert!(act.predictable);
        assert_eq!(p.name(), "tree");
    }

    #[test]
    fn prefetch_traffic_dies_out_on_an_unlearnable_stream() {
        // On an all-unique stream the root's children dilute: once
        // p = 1/n drops below the point where B − T_oh ≤ 0, the
        // cost-benefit stopping rule must shut prefetching off entirely.
        let mut p = TreePolicy::patterson();
        let mut cache = BufferCache::new(8);
        let mut late_prefetches = 0;
        for b in 0..500u64 {
            let act = drive(&mut p, &mut cache, b);
            if b >= 100 {
                late_prefetches += act.prefetches_issued;
            }
        }
        assert_eq!(late_prefetches, 0, "cost-benefit failed to stop useless prefetching");
    }
}
