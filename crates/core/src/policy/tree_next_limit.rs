//! The `tree-next-limit` policy: cost-benefit tree prefetching combined
//! with capped one-block-lookahead — the paper's best overall performer.

use crate::engine::{CostBenefitEngine, EngineConfig};
use crate::params::SystemParams;
use crate::policy::{NextLimit, PeriodActivity, PrefetchPolicy, RefContext, RefKind, Victim};
use prefetch_cache::BufferCache;

/// "This scheme always prefetches the block after a demand fetch, while
/// limiting 10% of the cache for these blocks. In addition, it maintains a
/// prefetch tree and prefetches additional blocks according to our cost
/// benefit analysis." (Section 9)
pub struct TreeNextLimit {
    engine: CostBenefitEngine,
    next: NextLimit,
}

impl TreeNextLimit {
    /// Build with the given constants, engine configuration and the
    /// standard 10% sequential cap.
    pub fn new(params: SystemParams, cfg: EngineConfig) -> Self {
        TreeNextLimit { engine: CostBenefitEngine::new(params, cfg), next: NextLimit::new() }
    }

    /// Paper defaults.
    pub fn patterson() -> Self {
        Self::new(SystemParams::patterson(), EngineConfig::default())
    }

    /// Read access to the engine.
    pub fn engine(&self) -> &CostBenefitEngine {
        &self.engine
    }
}

impl PrefetchPolicy for TreeNextLimit {
    fn name(&self) -> &'static str {
        "tree-next-limit"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        self.engine.demand_victim_timed(cache)
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        if ctx.kind == RefKind::PrefetchHit {
            self.engine.model_mut().observe_prefetch_hit();
        }
        // One-block lookahead on demand fetches (sequential component).
        if ctx.kind == RefKind::Miss {
            self.next.prefetch_next(ctx.block, cache, ctx.period, act);
        }
        // Tree component.
        act.lvc_already_cached = self.engine.lvc_already_cached(cache);
        let outcome = self.engine.record_reference(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;
        self.engine.prefetch_round(ctx.block, cache, act);
    }

    fn note_prefetch_fault(&mut self, block: prefetch_trace::BlockId) -> bool {
        self.engine.note_prefetch_fault(block)
    }

    fn note_read_success(&mut self, block: prefetch_trace::BlockId) {
        self.engine.note_read_success(block);
    }

    fn observe_served(
        &mut self,
        block: prefetch_trace::BlockId,
        kind: crate::policy::RefKind,
        stall_ms: f64,
    ) {
        self.engine.observe_outcome(block, kind, stall_ms);
    }

    fn calibration(&self) -> Option<&crate::calibration::CalibrationTracker> {
        Some(self.engine.calibration())
    }

    fn enable_profiling(&mut self) {
        self.engine.enable_profiling();
    }

    fn phase_times(&self) -> prefetch_telemetry::PhaseTimes {
        self.engine.phase_times()
    }

    fn tree(&self) -> Option<&prefetch_tree::PrefetchTree> {
        Some(self.engine.tree())
    }

    fn install_tree(&mut self, tree: prefetch_tree::PrefetchTree) -> bool {
        self.engine.install_tree(tree);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_trace::BlockId;

    #[test]
    fn combines_sequential_and_tree_prefetching() {
        let mut p = TreeNextLimit::patterson();
        let mut cache = BufferCache::new(40);
        // A miss on block 100 must trigger one-block lookahead of 101.
        cache.insert_demand(BlockId(100));
        let ctx =
            RefContext { block: BlockId(100), kind: RefKind::Miss, next_block: None, period: 0 };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, &mut cache, &mut act);
        assert!(cache.contains(BlockId(101)), "lookahead block missing");
        assert!(cache.prefetch_meta(BlockId(101)).unwrap().sequential);

        // Train a non-sequential pattern 100 → 7 and verify the tree part
        // also fires.
        for _ in 0..30 {
            for b in [100u64, 7] {
                let kind = if cache.contains(BlockId(b)) {
                    cache.reference(BlockId(b));
                    RefKind::DemandHit
                } else {
                    cache.insert_demand(BlockId(b));
                    RefKind::Miss
                };
                let ctx = RefContext { block: BlockId(b), kind, next_block: None, period: 0 };
                let mut a = PeriodActivity::default();
                p.after_reference(&ctx, &mut cache, &mut a);
            }
        }
        // Evict 7 and access 100: the tree should prefetch 7 again.
        if cache.contains(BlockId(7)) {
            cache.evict_prefetch(BlockId(7));
        }
        // (7 may be in the demand cache; flush it via direct eviction.)
        while cache.demand_iter().any(|b| b == BlockId(7)) {
            let lru = cache.demand_lru().unwrap();
            cache.evict_demand_lru();
            if lru == BlockId(7) {
                break;
            }
            cache.insert_demand(lru); // rotate non-victims back in
        }
        cache.reference(BlockId(100));
        let ctx = RefContext {
            block: BlockId(100),
            kind: RefKind::DemandHit,
            next_block: None,
            period: 100,
        };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, &mut cache, &mut act);
        assert!(
            cache.contains(BlockId(7)) || act.candidates_already_cached > 0,
            "tree component did not pursue the learned successor"
        );
        assert_eq!(p.name(), "tree-next-limit");
    }
}
