//! The `perfect-selector` oracle (Section 9.5): upper-bounds what a better
//! *selection* scheme could achieve with the same prefetch tree.
//!
//! "The perfect selection scheme assumes knowledge of the next disk access.
//! The resulting prefetching scheme uses the knowledge of the next disk
//! access to prefetch the next disk access only if it is predictable, i.e.
//! the disk access has been identified by the prediction scheme as a
//! candidate for prefetching."

use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, Victim};
use prefetch_cache::{BufferCache, PrefetchMeta};
use prefetch_tree::PrefetchTree;

/// Oracle selector over the prefetch tree's predictions.
pub struct PerfectSelector {
    tree: PrefetchTree,
    period: u64,
}

impl Default for PerfectSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfectSelector {
    /// A fresh oracle.
    pub fn new() -> Self {
        PerfectSelector { tree: PrefetchTree::new(), period: 0 }
    }

    /// Read access to the tree.
    pub fn tree(&self) -> &PrefetchTree {
        &self.tree
    }
}

impl PrefetchPolicy for PerfectSelector {
    fn name(&self) -> &'static str {
        "perfect-selector"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        if cache.demand_len() > 0 {
            Victim::DemandLru
        } else {
            Victim::Prefetch(cache.prefetch_iter_lru().next().expect("cache full").0)
        }
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        let outcome = self.tree.record_access(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;

        let Some(next) = ctx.next_block else {
            self.period += 1;
            return;
        };
        // Prefetch the actual next access, but only if the tree would have
        // offered it as a candidate (a child of the post-access cursor).
        let cursor = self.tree.cursor();
        let Some(child) = self.tree.child_by_block(cursor, next) else {
            self.period += 1;
            return;
        };
        act.candidates_considered += 1;
        if cache.contains(next) {
            act.candidates_already_cached += 1;
            self.period += 1;
            return;
        }
        if cache.is_full() {
            // The prefetched block is consumed next period, so the
            // prefetch partition can hold at most one stale block.
            if cache.prefetch_len() > 0 {
                cache.evict_prefetch_lru();
                act.prefetch_evictions += 1;
            } else {
                cache.evict_demand_lru();
                act.demand_evictions_for_prefetch += 1;
            }
        }
        let probability = self.tree.child_probability(cursor, child);
        cache.insert_prefetch(
            next,
            PrefetchMeta { probability, distance: 1, issued_at: self.period, sequential: false },
        );
        act.prefetched_blocks.push(next);
        act.prefetches_issued += 1;
        act.prefetch_probability_sum += probability;
        self.period += 1;
    }

    fn tree(&self) -> Option<&PrefetchTree> {
        Some(&self.tree)
    }

    fn install_tree(&mut self, tree: PrefetchTree) -> bool {
        self.tree = tree;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RefKind;
    use prefetch_trace::BlockId;

    fn access(
        p: &mut PerfectSelector,
        cache: &mut BufferCache,
        b: u64,
        next: Option<u64>,
    ) -> PeriodActivity {
        let ctx = RefContext {
            block: BlockId(b),
            kind: RefKind::DemandHit,
            next_block: next.map(BlockId),
            period: 0,
        };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, cache, &mut act);
        act
    }

    #[test]
    fn prefetches_only_predictable_next_accesses() {
        let mut p = PerfectSelector::new();
        let mut cache = BufferCache::new(16);
        // Train until the LZ parse records 2 as a child of node(1):
        // substrings (1)(2)(1 2).
        access(&mut p, &mut cache, 1, Some(2));
        access(&mut p, &mut cache, 2, Some(1));
        access(&mut p, &mut cache, 1, Some(2));
        access(&mut p, &mut cache, 2, Some(1));
        // Next access 2 is now predictable from node 1: prefetched.
        let act = access(&mut p, &mut cache, 1, Some(2));
        assert_eq!(act.prefetches_issued, 1);
        assert!(cache.contains(BlockId(2)));
        // An unpredictable next access (99) is NOT prefetched even though
        // the oracle knows it is coming.
        let act = access(&mut p, &mut cache, 2, Some(99));
        assert_eq!(act.prefetches_issued, 0);
        assert!(!cache.contains(BlockId(99)));
    }

    #[test]
    fn end_of_trace_is_handled() {
        let mut p = PerfectSelector::new();
        let mut cache = BufferCache::new(4);
        let act = access(&mut p, &mut cache, 1, None);
        assert_eq!(act.prefetches_issued, 0);
        assert_eq!(p.name(), "perfect-selector");
    }
}
