//! The `tree-lvc` variant (Section 9.6): cost-benefit tree prefetching
//! plus unconditional prefetching of the cursor's *last visited child*.
//!
//! The paper found this variant performs indistinguishably from plain
//! `tree` because ≥85% of last-visited children are already cached
//! (Figure 16); the policy exists to reproduce that negative result.

use crate::engine::{CostBenefitEngine, EngineConfig};
use crate::params::SystemParams;
use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, RefKind, Victim};
use prefetch_cache::{BufferCache, PrefetchMeta};

/// `tree` + always prefetch the last-visited child of the current node.
pub struct TreeLvc {
    engine: CostBenefitEngine,
}

impl TreeLvc {
    /// Build with the given constants and engine configuration.
    pub fn new(params: SystemParams, cfg: EngineConfig) -> Self {
        TreeLvc { engine: CostBenefitEngine::new(params, cfg) }
    }

    /// Paper defaults.
    pub fn patterson() -> Self {
        Self::new(SystemParams::patterson(), EngineConfig::default())
    }

    /// Read access to the engine.
    pub fn engine(&self) -> &CostBenefitEngine {
        &self.engine
    }

    /// Prefetch the last-visited child of the (post-access) cursor if it is
    /// not resident.
    fn prefetch_lvc(&mut self, cache: &mut BufferCache, act: &mut PeriodActivity) {
        let tree = self.engine.tree();
        let cursor = tree.cursor();
        let Some(lvc) = tree.last_visited_child(cursor) else { return };
        let Some(block) = tree.block(lvc) else { return };
        let probability = tree.child_probability(cursor, lvc);
        act.candidates_considered += 1;
        if cache.contains(block) {
            act.candidates_already_cached += 1;
            return;
        }
        if cache.is_full() {
            let victim = self.engine.demand_victim_timed(cache);
            match crate::policy::apply_victim(victim, cache) {
                true => act.prefetch_evictions += 1,
                false => act.demand_evictions_for_prefetch += 1,
            }
        }
        cache.insert_prefetch(
            block,
            PrefetchMeta {
                probability,
                distance: 1,
                issued_at: self.engine.period(),
                sequential: false,
            },
        );
        act.prefetched_blocks.push(block);
        act.prefetches_issued += 1;
        act.prefetch_probability_sum += probability;
    }
}

impl PrefetchPolicy for TreeLvc {
    fn name(&self) -> &'static str {
        "tree-lvc"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        self.engine.demand_victim_timed(cache)
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        if ctx.kind == RefKind::PrefetchHit {
            self.engine.model_mut().observe_prefetch_hit();
        }
        act.lvc_already_cached = self.engine.lvc_already_cached(cache);
        let outcome = self.engine.record_reference(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;
        // LVC prefetch first (it is "in addition to" cost-benefit blocks).
        self.prefetch_lvc(cache, act);
        self.engine.prefetch_round(ctx.block, cache, act);
    }

    fn note_prefetch_fault(&mut self, block: prefetch_trace::BlockId) -> bool {
        self.engine.note_prefetch_fault(block)
    }

    fn note_read_success(&mut self, block: prefetch_trace::BlockId) {
        self.engine.note_read_success(block);
    }

    fn observe_served(
        &mut self,
        block: prefetch_trace::BlockId,
        kind: crate::policy::RefKind,
        stall_ms: f64,
    ) {
        self.engine.observe_outcome(block, kind, stall_ms);
    }

    fn calibration(&self) -> Option<&crate::calibration::CalibrationTracker> {
        Some(self.engine.calibration())
    }

    fn enable_profiling(&mut self) {
        self.engine.enable_profiling();
    }

    fn phase_times(&self) -> prefetch_telemetry::PhaseTimes {
        self.engine.phase_times()
    }

    fn tree(&self) -> Option<&prefetch_tree::PrefetchTree> {
        Some(self.engine.tree())
    }

    fn install_tree(&mut self, tree: prefetch_tree::PrefetchTree) -> bool {
        self.engine.install_tree(tree);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_trace::BlockId;

    #[test]
    fn prefetches_last_visited_child() {
        let mut p = TreeLvc::patterson();
        let mut cache = BufferCache::new(16);
        // Train: 1 followed by 2, twice, so node(1) has lvc = node(2).
        for _ in 0..3 {
            for b in [1u64, 2] {
                let ctx = RefContext {
                    block: BlockId(b),
                    kind: RefKind::DemandHit,
                    next_block: None,
                    period: 0,
                };
                let mut act = PeriodActivity::default();
                p.after_reference(&ctx, &mut cache, &mut act);
            }
        }
        // Now access 1; the cursor lands on node(1) whose lvc is node(2),
        // so block 2 must be fetched (or found already cached from the
        // cost-benefit round — both count as pursuing it).
        let ctx = RefContext {
            block: BlockId(1),
            kind: RefKind::DemandHit,
            next_block: None,
            period: 10,
        };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, &mut cache, &mut act);
        assert!(cache.contains(BlockId(2)), "last-visited child not resident after access");
        assert_eq!(p.name(), "tree-lvc");
    }
}
