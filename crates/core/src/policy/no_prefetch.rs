//! The `no-prefetch` baseline: demand fetching with LRU replacement only.

use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, Victim};
use prefetch_cache::BufferCache;

/// Performs no prefetching; the demand cache is a plain LRU.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPrefetch;

impl PrefetchPolicy for NoPrefetch {
    fn name(&self) -> &'static str {
        "no-prefetch"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        debug_assert_eq!(cache.prefetch_len(), 0, "no-prefetch never populates the prefetch cache");
        Victim::DemandLru
    }

    fn after_reference(
        &mut self,
        _ctx: &RefContext,
        _cache: &mut BufferCache,
        _act: &mut PeriodActivity,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RefKind;
    use prefetch_trace::BlockId;

    #[test]
    fn never_prefetches() {
        let mut p = NoPrefetch;
        let mut cache = BufferCache::new(4);
        cache.insert_demand(BlockId(1));
        let ctx = RefContext {
            block: BlockId(1),
            kind: RefKind::Miss,
            next_block: Some(BlockId(2)),
            period: 0,
        };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, &mut cache, &mut act);
        assert_eq!(act, PeriodActivity::default());
        assert_eq!(cache.prefetch_len(), 0);
        assert_eq!(p.name(), "no-prefetch");
    }

    #[test]
    fn victim_is_demand_lru() {
        let mut p = NoPrefetch;
        let mut cache = BufferCache::new(2);
        cache.insert_demand(BlockId(1));
        cache.insert_demand(BlockId(2));
        assert_eq!(p.choose_demand_victim(&cache), Victim::DemandLru);
    }
}
