//! The `tree-threshold` parametric baseline (Section 9.7): "After accessing
//! a block in the prefetch tree, all child nodes with a probability of
//! future access higher than a specified probability threshold are
//! prefetched" — the scheme of Curewitz, Krishnan & Vitter (SIGMOD'93),
//! **without** cost-benefit analysis.
//!
//! Replacement: the paper does not specify a victim rule for the parametric
//! baselines. We cap the prefetch partition at 10% of the cache (as the
//! paper does for its other non-cost-benefit prefetcher, `next-limit`):
//! over the cap, the oldest prefetched block is ejected; otherwise a full
//! cache gives up its demand LRU. This choice is documented in DESIGN.md.

use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, Victim};
use prefetch_cache::{BufferCache, PrefetchMeta};
use prefetch_tree::PrefetchTree;

/// Threshold-based tree prefetching without cost-benefit analysis.
pub struct TreeThreshold {
    tree: PrefetchTree,
    threshold: f64,
    cap_fraction: f64,
    period: u64,
}

impl TreeThreshold {
    /// Build with the given probability threshold (the paper sweeps 0.001
    /// to 0.4 — Table 4).
    ///
    /// # Panics
    /// Panics unless `0 < threshold < 1`.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold < 1.0, "threshold must be in (0,1), got {threshold}");
        TreeThreshold { tree: PrefetchTree::new(), threshold, cap_fraction: 0.10, period: 0 }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Read access to the tree.
    pub fn tree(&self) -> &PrefetchTree {
        &self.tree
    }

    fn make_room(&self, cache: &mut BufferCache, act: &mut PeriodActivity) {
        let cap = ((cache.capacity() as f64 * self.cap_fraction) as usize).max(1);
        if cache.prefetch_len() >= cap {
            cache.evict_prefetch_lru();
            act.prefetch_evictions += 1;
        } else if cache.is_full() {
            if cache.demand_len() > 0 {
                cache.evict_demand_lru();
                act.demand_evictions_for_prefetch += 1;
            } else {
                cache.evict_prefetch_lru();
                act.prefetch_evictions += 1;
            }
        }
    }
}

impl PrefetchPolicy for TreeThreshold {
    fn name(&self) -> &'static str {
        "tree-threshold"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        if cache.demand_len() > 0 {
            Victim::DemandLru
        } else {
            Victim::Prefetch(cache.prefetch_iter_lru().next().expect("cache full").0)
        }
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        act.lvc_already_cached = None;
        let outcome = self.tree.record_access(ctx.block);
        act.predictable = outcome.predictable;
        act.lvc_repeat = outcome.lvc_repeat;

        let cursor = self.tree.cursor();
        let mut children = Vec::new();
        // Children are weight-sorted, so pruned enumeration stops at the
        // threshold instead of scanning the whole fan-out (the root can
        // have tens of thousands of children).
        self.tree.child_candidates_pruned(cursor, 1.0, 0, self.threshold, &mut children);
        for cand in children {
            if cand.probability <= self.threshold {
                continue;
            }
            act.candidates_considered += 1;
            if cache.contains(cand.block) {
                act.candidates_already_cached += 1;
                continue;
            }
            self.make_room(cache, act);
            cache.insert_prefetch(
                cand.block,
                PrefetchMeta {
                    probability: cand.probability,
                    distance: 1,
                    issued_at: self.period,
                    sequential: false,
                },
            );
            act.prefetched_blocks.push(cand.block);
            act.prefetches_issued += 1;
            act.prefetch_probability_sum += cand.probability;
        }
        self.period += 1;
    }

    fn tree(&self) -> Option<&PrefetchTree> {
        Some(&self.tree)
    }

    fn install_tree(&mut self, tree: PrefetchTree) -> bool {
        self.tree = tree;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RefKind;
    use prefetch_trace::BlockId;

    fn access(p: &mut TreeThreshold, cache: &mut BufferCache, b: u64) -> PeriodActivity {
        let ctx =
            RefContext { block: BlockId(b), kind: RefKind::DemandHit, next_block: None, period: 0 };
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx, cache, &mut act);
        act
    }

    #[test]
    fn prefetches_children_above_threshold_only() {
        let mut p = TreeThreshold::new(0.5);
        let mut cache = BufferCache::new(100);
        // Train: after 1, block 2 follows 9 times and block 3 once.
        for _ in 0..9 {
            access(&mut p, &mut cache, 1);
            access(&mut p, &mut cache, 2);
        }
        access(&mut p, &mut cache, 1);
        access(&mut p, &mut cache, 3);
        // Remove whatever got cached so we can observe the decision.
        while cache.prefetch_len() > 0 {
            cache.evict_prefetch_lru();
        }
        let _ = access(&mut p, &mut cache, 1);
        // p(2|1) = 0.9 > 0.5 → prefetched; p(3|1) = 0.1 < 0.5 → not.
        assert!(cache.contains(BlockId(2)), "high-probability child not prefetched");
        assert!(!cache.contains(BlockId(3)), "low-probability child prefetched");
    }

    #[test]
    fn respects_partition_cap() {
        let mut p = TreeThreshold::new(0.001);
        let mut cache = BufferCache::new(20); // cap = 2
                                              // Build a bushy root: many substrings of length 1.
        for b in 0..50u64 {
            access(&mut p, &mut cache, b);
            access(&mut p, &mut cache, 1000 + b); // force resets
        }
        assert!(cache.prefetch_len() <= 2, "partition {}", cache.prefetch_len());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_of_one_panics() {
        TreeThreshold::new(1.0);
    }
}
