//! The `next-limit` baseline: one-block-lookahead sequential prefetching
//! with the prefetch partition capped at 10% of the cache (paper Section 9).

use crate::policy::{PeriodActivity, PrefetchPolicy, RefContext, RefKind, Victim};
use prefetch_cache::{BufferCache, PrefetchMeta};
use prefetch_trace::BlockId;

/// One-block-lookahead: on every demand fetch of block *b*, prefetch
/// *b + 1* unless it is resident. "Since this aggressive scheme prefetches
/// many blocks, we limit the fraction of the cache devoted to prefetch
/// blocks to 10% to avoid harming performance."
#[derive(Clone, Copy, Debug)]
pub struct NextLimit {
    /// Fraction of the cache the sequential-prefetch partition may occupy.
    cap_fraction: f64,
}

impl Default for NextLimit {
    fn default() -> Self {
        NextLimit { cap_fraction: 0.10 }
    }
}

impl NextLimit {
    /// The paper's 10% cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A custom cap fraction in `(0, 1]` (ablation support).
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn with_cap_fraction(cap_fraction: f64) -> Self {
        assert!(
            cap_fraction > 0.0 && cap_fraction <= 1.0,
            "cap fraction must be in (0,1], got {cap_fraction}"
        );
        NextLimit { cap_fraction }
    }

    /// Blocks the prefetch partition may hold in `cache`.
    pub fn cap(&self, cache: &BufferCache) -> usize {
        ((cache.capacity() as f64 * self.cap_fraction) as usize).max(1)
    }

    /// Issue the one-block-lookahead prefetch after a demand fetch of
    /// `block`. Shared with [`crate::policy::TreeNextLimit`]. The
    /// `sequential_len` closure-free helper counts capped blocks.
    pub(crate) fn prefetch_next(
        &self,
        block: BlockId,
        cache: &mut BufferCache,
        period: u64,
        act: &mut PeriodActivity,
    ) {
        let next = block.next();
        act.candidates_considered += 1;
        if cache.contains(next) {
            act.candidates_already_cached += 1;
            return;
        }
        // Enforce the 10% partition cap over *sequential* prefetches only
        // (tree prefetches are governed by cost-benefit analysis instead).
        let cap = self.cap(cache);
        while sequential_len(cache) >= cap {
            let victim = oldest_sequential(cache).expect("sequential blocks exist over cap");
            cache.evict_prefetch(victim);
            act.prefetch_evictions += 1;
        }
        if cache.is_full() {
            if cache.demand_len() > 0 {
                cache.evict_demand_lru();
                act.demand_evictions_for_prefetch += 1;
            } else {
                let (victim, _) = cache.prefetch_iter_lru().next().expect("full cache has blocks");
                cache.evict_prefetch(victim);
                act.prefetch_evictions += 1;
            }
        }
        cache.insert_prefetch(
            next,
            PrefetchMeta { probability: 1.0, distance: 1, issued_at: period, sequential: true },
        );
        act.prefetched_blocks.push(next);
        act.prefetches_issued += 1;
        act.prefetch_probability_sum += 1.0;
    }
}

/// Number of sequential (next-limit-issued) blocks in the prefetch cache.
fn sequential_len(cache: &BufferCache) -> usize {
    cache.sequential_prefetch_len()
}

/// Oldest sequential block in the prefetch cache.
fn oldest_sequential(cache: &BufferCache) -> Option<BlockId> {
    cache.prefetch_iter_lru().find(|(_, m)| m.sequential).map(|(b, _)| b)
}

impl PrefetchPolicy for NextLimit {
    fn name(&self) -> &'static str {
        "next-limit"
    }

    fn choose_demand_victim(&mut self, cache: &BufferCache) -> Victim {
        // Keep the (small) prefetch partition; replace from the demand LRU.
        if cache.demand_len() > 0 {
            Victim::DemandLru
        } else {
            Victim::Prefetch(cache.prefetch_iter_lru().next().expect("cache full").0)
        }
    }

    fn after_reference(
        &mut self,
        ctx: &RefContext,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        if ctx.kind == RefKind::Miss {
            self.prefetch_next(ctx.block, cache, ctx.period, act);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block: u64, kind: RefKind) -> RefContext {
        RefContext { block: BlockId(block), kind, next_block: None, period: 0 }
    }

    #[test]
    fn prefetches_successor_on_miss_only() {
        let mut p = NextLimit::new();
        let mut cache = BufferCache::new(20);
        cache.insert_demand(BlockId(5));
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx(5, RefKind::Miss), &mut cache, &mut act);
        assert_eq!(act.prefetches_issued, 1);
        assert!(cache.contains(BlockId(6)));
        assert!(cache.prefetch_meta(BlockId(6)).unwrap().sequential);

        // A hit does not trigger lookahead.
        let mut act2 = PeriodActivity::default();
        p.after_reference(&ctx(5, RefKind::DemandHit), &mut cache, &mut act2);
        assert_eq!(act2.prefetches_issued, 0);
    }

    #[test]
    fn skips_resident_successor() {
        let mut p = NextLimit::new();
        let mut cache = BufferCache::new(20);
        cache.insert_demand(BlockId(5));
        cache.insert_demand(BlockId(6));
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx(5, RefKind::Miss), &mut cache, &mut act);
        assert_eq!(act.prefetches_issued, 0);
        assert_eq!(act.candidates_already_cached, 1);
    }

    #[test]
    fn enforces_ten_percent_cap() {
        let mut p = NextLimit::new();
        let mut cache = BufferCache::new(20); // cap = 2
        for b in (0..10u64).map(|i| i * 100) {
            cache.insert_demand(BlockId(b));
            let mut act = PeriodActivity::default();
            p.after_reference(&ctx(b, RefKind::Miss), &mut cache, &mut act);
        }
        assert!(cache.prefetch_len() <= 2, "prefetch partition {}", cache.prefetch_len());
    }

    #[test]
    fn evicts_demand_lru_when_full_under_cap() {
        let mut p = NextLimit::new();
        let mut cache = BufferCache::new(10); // cap = 1
        for b in 0..10u64 {
            cache.insert_demand(BlockId(b * 7));
        }
        assert!(cache.is_full());
        let mut act = PeriodActivity::default();
        p.after_reference(&ctx(0, RefKind::Miss), &mut cache, &mut act);
        assert_eq!(act.prefetches_issued, 1);
        assert_eq!(act.demand_evictions_for_prefetch, 1);
        assert!(cache.contains(BlockId(1)));
    }

    #[test]
    fn cap_fraction_validation() {
        let p = NextLimit::with_cap_fraction(0.5);
        let cache = BufferCache::new(10);
        assert_eq!(p.cap(&cache), 5);
        let tiny = BufferCache::new(3);
        assert_eq!(NextLimit::new().cap(&tiny), 1);
    }

    #[test]
    #[should_panic(expected = "cap fraction")]
    fn zero_cap_panics() {
        NextLimit::with_cap_fraction(0.0);
    }
}
