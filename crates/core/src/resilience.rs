//! Graceful degradation under disk faults: retry pricing and candidate
//! quarantine.
//!
//! The SC'99 model assumes every disk read succeeds. When the simulator's
//! disk array injects faults (see `prefetch-disk`), two mechanisms keep
//! the cost-benefit scheme honest instead of letting it thrash:
//!
//! * [`RetryPolicy`] — a failed *demand* read must eventually succeed for
//!   the simulation to make progress, so it is retried with exponential
//!   backoff in **simulated** time; every backoff millisecond lands on the
//!   virtual clock as stall, pricing the fault into elapsed time exactly
//!   like any other latency.
//! * [`Quarantine`] — a failed *prefetch* is a priced mispredict: the slot
//!   is released and the wasted initiation overhead `T_oh` has already
//!   been charged. Blocks whose prefetches keep failing are quarantined so
//!   the Section 7 loop stops re-issuing reads the array keeps refusing;
//!   a later successful demand fetch of the block lifts the quarantine.
//!
//! Both mechanisms are deterministic: no clocks, no randomness, state is a
//! pure function of the fault sequence fed in.

use prefetch_hash::FxHashMap;
use prefetch_trace::BlockId;

/// Exponential backoff for retrying failed demand reads, in simulated
/// milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per read, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (ms).
    pub backoff_base_ms: f64,
    /// Ceiling on any single backoff (ms).
    pub backoff_cap_ms: f64,
    /// Stall charged when a read exhausts every attempt (ms). The
    /// simulation then proceeds as if a deep recovery path (a mirror, a
    /// rebuild) finally produced the block.
    pub give_up_penalty_ms: f64,
}

impl Default for RetryPolicy {
    /// Tuned to the paper's 15 ms `T_disk`: up to 4 attempts with 5 → 10 →
    /// 20 ms backoffs, 150 ms (10 service times) on exhaustion.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 5.0,
            backoff_cap_ms: 240.0,
            give_up_penalty_ms: 150.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to wait before retry number `retry` (1-based: the first
    /// retry is `1`). Doubles per retry, capped at `backoff_cap_ms`.
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(52);
        (self.backoff_base_ms * (1u64 << exp) as f64).min(self.backoff_cap_ms)
    }

    /// May another attempt be made after `attempts` tries?
    pub fn should_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Check the policy is usable without panicking (mirroring
    /// [`crate::SystemParams::check`]). Rejects:
    ///
    /// * `max_attempts == 0` (a read must get at least one attempt);
    /// * non-finite (NaN/∞) or negative backoff and penalty fields;
    /// * zero backoff base or cap — a zero backoff silently turns every
    ///   retry into a busy re-issue, unpriced in simulated time;
    /// * `backoff_cap_ms < backoff_base_ms` — the very first backoff
    ///   would already exceed the cap, so the schedule is contradictory.
    pub fn check(&self) -> Result<(), String> {
        if self.max_attempts < 1 {
            return Err("retry policy needs at least one attempt".into());
        }
        for (field, v) in [
            ("backoff_base_ms", self.backoff_base_ms),
            ("backoff_cap_ms", self.backoff_cap_ms),
            ("give_up_penalty_ms", self.give_up_penalty_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{field} must be finite and >= 0, got {v}"));
            }
        }
        for (field, v) in
            [("backoff_base_ms", self.backoff_base_ms), ("backoff_cap_ms", self.backoff_cap_ms)]
        {
            if v == 0.0 {
                return Err(format!("{field} must be > 0, got {v}"));
            }
        }
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(format!(
                "backoff_cap_ms ({}) must be >= backoff_base_ms ({})",
                self.backoff_cap_ms, self.backoff_base_ms
            ));
        }
        Ok(())
    }

    /// Alias of [`RetryPolicy::check`], kept for callers predating the
    /// `check` naming convention.
    pub fn validate(&self) -> Result<(), String> {
        self.check()
    }
}

/// Blocks demoted out of prefetch consideration after repeated failures.
///
/// Failure counts are consecutive: a successful read of the block (demand
/// or prefetch) clears its record. Lookup-only — the map is never
/// iterated, so `HashMap` ordering cannot leak into simulation results.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// Consecutive failures after which a block is quarantined.
    threshold: u32,
    /// Consecutive prefetch-read failures per block.
    failures: FxHashMap<u64, u32>,
    /// Blocks currently quarantined (failure count ≥ threshold).
    quarantined: u64,
    /// Total quarantine events, monotone (a block re-entering after a
    /// success counts again).
    total_quarantined: u64,
}

impl Quarantine {
    /// Quarantine after `threshold` consecutive failures (≥ 1).
    pub fn new(threshold: u32) -> Self {
        Quarantine {
            threshold: threshold.max(1),
            failures: FxHashMap::default(),
            quarantined: 0,
            total_quarantined: 0,
        }
    }

    /// Record a failed prefetch read of `block`. Returns `true` if this
    /// failure pushed the block into quarantine.
    pub fn record_failure(&mut self, block: BlockId) -> bool {
        let count = self.failures.entry(block.0).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.quarantined += 1;
            self.total_quarantined += 1;
            true
        } else {
            false
        }
    }

    /// Record a successful read of `block`, clearing its failure history
    /// and lifting any quarantine.
    pub fn record_success(&mut self, block: BlockId) {
        if let Some(count) = self.failures.remove(&block.0) {
            if count >= self.threshold {
                self.quarantined -= 1;
            }
        }
    }

    /// Is `block` currently quarantined?
    pub fn is_quarantined(&self, block: BlockId) -> bool {
        self.failures.get(&block.0).is_some_and(|&c| c >= self.threshold)
    }

    /// Blocks currently quarantined.
    pub fn len(&self) -> usize {
        self.quarantined as usize
    }

    /// No blocks quarantined?
    pub fn is_empty(&self) -> bool {
        self.quarantined == 0
    }

    /// Monotone count of quarantine events.
    pub fn total_quarantined(&self) -> u64 {
        self.total_quarantined
    }
}

impl Default for Quarantine {
    /// Quarantine after 2 consecutive failures.
    fn default() -> Self {
        Quarantine::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            max_attempts: 6,
            backoff_base_ms: 5.0,
            backoff_cap_ms: 30.0,
            give_up_penalty_ms: 100.0,
        };
        assert_eq!(r.backoff_ms(1), 5.0);
        assert_eq!(r.backoff_ms(2), 10.0);
        assert_eq!(r.backoff_ms(3), 20.0);
        assert_eq!(r.backoff_ms(4), 30.0); // capped
        assert_eq!(r.backoff_ms(5), 30.0);
    }

    #[test]
    fn retry_budget_counts_the_first_attempt() {
        let r = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        assert!(r.should_retry(1));
        assert!(r.should_retry(2));
        assert!(!r.should_retry(3));
    }

    #[test]
    fn retry_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy { max_attempts: 0, ..RetryPolicy::default() }.validate().is_err());
        assert!(RetryPolicy { backoff_base_ms: f64::NAN, ..RetryPolicy::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn check_rejects_every_degenerate_field() {
        let ok = RetryPolicy::default();
        assert!(ok.check().is_ok());
        let cases = [
            ("zero attempts", RetryPolicy { max_attempts: 0, ..ok }),
            ("zero base", RetryPolicy { backoff_base_ms: 0.0, ..ok }),
            ("zero cap", RetryPolicy { backoff_cap_ms: 0.0, ..ok }),
            ("negative base", RetryPolicy { backoff_base_ms: -1.0, ..ok }),
            ("negative penalty", RetryPolicy { give_up_penalty_ms: -0.5, ..ok }),
            ("NaN cap", RetryPolicy { backoff_cap_ms: f64::NAN, ..ok }),
            ("infinite base", RetryPolicy { backoff_base_ms: f64::INFINITY, ..ok }),
            ("cap below base", RetryPolicy { backoff_base_ms: 50.0, backoff_cap_ms: 10.0, ..ok }),
        ];
        for (what, policy) in cases {
            let err = policy.check().expect_err(what);
            assert!(!err.is_empty(), "{what} must render a reason");
        }
        // Zero give-up penalty is legitimate (a free recovery path).
        assert!(RetryPolicy { give_up_penalty_ms: 0.0, ..ok }.check().is_ok());
        // validate() stays a strict alias of check().
        let p = RetryPolicy { backoff_base_ms: 50.0, backoff_cap_ms: 10.0, ..ok };
        assert_eq!(p.validate(), p.check());
    }

    #[test]
    fn quarantine_readmission_ordering() {
        // Re-admission is strictly success-gated and ordered: a block must
        // be *fully* re-admitted (one success) before failures start a
        // fresh count — stale pre-quarantine failures never combine with
        // post-re-admission failures to re-trip the threshold early.
        let mut q = Quarantine::new(3);
        let a = BlockId(1);
        let b = BlockId(2);
        q.record_failure(a);
        q.record_failure(a);
        q.record_failure(a); // a quarantined
        q.record_failure(b);
        q.record_failure(b); // b one short of the threshold
        assert!(q.is_quarantined(a));
        assert!(!q.is_quarantined(b));

        // Re-admit a; b's pending count is untouched by a's success.
        q.record_success(a);
        assert!(!q.is_quarantined(a));
        assert_eq!(q.len(), 0);
        q.record_failure(b); // b's third strike still lands
        assert!(q.is_quarantined(b));

        // a restarts from zero: two failures do not re-trip it…
        q.record_failure(a);
        q.record_failure(a);
        assert!(!q.is_quarantined(a));
        // …the third does, and the monotone event count records re-entry.
        assert!(q.record_failure(a));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_quarantined(), 3);
    }

    #[test]
    fn quarantine_trips_at_threshold() {
        let mut q = Quarantine::new(3);
        let b = BlockId(7);
        assert!(!q.record_failure(b));
        assert!(!q.record_failure(b));
        assert!(!q.is_quarantined(b));
        assert!(q.record_failure(b)); // third strike
        assert!(q.is_quarantined(b));
        assert_eq!(q.len(), 1);
        // Further failures don't re-count the event.
        assert!(!q.record_failure(b));
        assert_eq!(q.total_quarantined(), 1);
    }

    #[test]
    fn success_lifts_quarantine() {
        let mut q = Quarantine::new(2);
        let b = BlockId(9);
        q.record_failure(b);
        q.record_failure(b);
        assert!(q.is_quarantined(b));
        q.record_success(b);
        assert!(!q.is_quarantined(b));
        assert!(q.is_empty());
        // The event count stays monotone; re-entry counts again.
        q.record_failure(b);
        q.record_failure(b);
        assert_eq!(q.total_quarantined(), 2);
    }

    #[test]
    fn success_on_clean_block_is_a_no_op() {
        let mut q = Quarantine::default();
        q.record_success(BlockId(1));
        assert!(q.is_empty());
    }
}
