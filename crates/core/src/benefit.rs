//! The benefit of prefetching one access deeper: Equation 1 of the paper.
//!
//! Allocating one more buffer lets the prefetcher extend a path in the tree
//! from block `x` (path probability `p_x`, distance `d_b − 1`) to its child
//! `b` (path probability `p_b`, distance `d_b`). The expected time saved
//! per unit of bufferage (bufferage = 1 here) is
//!
//! ```text
//! B(b) = p_b·ΔT_pf(b, d_b) − p_x·ΔT_pf(x, d_b − 1)
//! ```
//!
//! Unlike Patterson's informed prefetching — where hints are certain and
//! the benefit depends only on depth — the probabilistic weighting makes
//! deep, unlikely candidates unattractive even when their disk time would
//! be fully overlapped.

use crate::params::SystemParams;
use crate::timing::delta_t_pf;

/// `B(b)` (Eq. 1): benefit of allocating a buffer to prefetch block `b` at
/// distance `d_b` whose parent on the path has probability `p_x`.
///
/// `s` is the current average number of prefetches per access period.
/// For a direct child of the cursor (`d_b = 1`), pass `p_x = 1.0`; the
/// parent term vanishes because `ΔT_pf(·, 0) = 0`.
#[inline]
pub fn benefit(p_b: f64, d_b: u32, p_x: f64, params: &SystemParams, s: f64) -> f64 {
    debug_assert!(d_b >= 1, "benefit is defined for prefetches, not demand fetches");
    debug_assert!((0.0..=1.0 + 1e-9).contains(&p_b));
    debug_assert!(p_b <= p_x + 1e-9, "a path cannot be more likely than its prefix");
    p_b * delta_t_pf(d_b, params, s) - p_x * delta_t_pf(d_b - 1, params, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::patterson()
    }

    #[test]
    fn depth_one_benefit_is_probability_times_saving() {
        // ΔT_pf(0) = 0, so B = p_b · ΔT_pf(1). With Patterson constants the
        // access is fully hidden: ΔT_pf(1) = T_disk = 15.
        let b = benefit(0.5, 1, 1.0, &p(), 0.0);
        assert!((b - 0.5 * 15.0).abs() < 1e-12);
    }

    #[test]
    fn certain_hints_reduce_to_patterson_form() {
        // With p_b = p_x = 1 (deterministic hints), B = ΔT_pf(d) − ΔT_pf(d−1):
        // exactly informed prefetching's marginal benefit.
        let fast = SystemParams { t_cpu: 2.0, ..p() };
        for d in 2..10 {
            let b = benefit(1.0, d, 1.0, &fast, 0.0);
            let expect = delta_t_pf(d, &fast, 0.0) - delta_t_pf(d - 1, &fast, 0.0);
            assert!((b - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_hidden_deeper_prefetch_of_unlikely_block_can_be_negative() {
        // When both depths fully hide the disk (ΔT_pf = T_disk at d and
        // d−1), B = (p_b − p_x)·T_disk ≤ 0: no reason to go deeper for a
        // less likely block.
        let b = benefit(0.2, 3, 0.8, &p(), 0.0);
        assert!(b < 0.0);
        assert!((b - (0.2 - 0.8) * 15.0).abs() < 1e-12);
    }

    #[test]
    fn benefit_increases_with_probability() {
        let fast = SystemParams { t_cpu: 2.0, ..p() };
        let lo = benefit(0.1, 1, 1.0, &fast, 0.0);
        let hi = benefit(0.9, 1, 1.0, &fast, 0.0);
        assert!(hi > lo);
    }

    #[test]
    fn benefit_bounded_by_t_disk() {
        for d in 1..20 {
            for (pb, px) in [(1.0, 1.0), (0.5, 0.7), (0.01, 1.0)] {
                let b = benefit(pb, d, px, &p(), 1.0);
                assert!(b <= 15.0 + 1e-9, "B = {b} at d={d}");
                assert!(b >= -15.0 - 1e-9);
            }
        }
    }
}
