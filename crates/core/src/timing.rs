//! The stall/overlap timing model: Equations 2-6 of the paper.
//!
//! A prefetch issued `d` access periods before the block is needed overlaps
//! its disk access with the computation performed during those periods.
//! Each period the CPU computes (`T_cpu`), reads the current block from the
//! cache (`T_hit`), and issues on average `s` further prefetches
//! (`s·T_driver`), so total overlap is
//! `T_compute(d) = d·(T_cpu + T_hit + s·T_driver)` (Eq. 3). Concurrent I/O
//! soaks up the remainder across `d` outstanding accesses, leaving an
//! average per-block stall of
//! `T_stall(d) = max(T_disk/d − (T_hit + T_cpu + s·T_driver), 0)` (Eq. 6),
//! and a per-block saving of `ΔT_pf(d) = T_disk − T_stall(d)` (Eq. 2).
//! `d = 0` denotes a demand fetch: full stall, zero saving.

use crate::params::SystemParams;

/// `T_compute(d)` (Eq. 3): computation overlapped during `d` access
/// periods, given the current average prefetch rate `s`.
#[inline]
pub fn t_compute(d: u32, params: &SystemParams, s: f64) -> f64 {
    d as f64 * (params.t_cpu + params.t_hit + s * params.t_driver)
}

/// `T_stall(d)` (Eq. 5/6): average CPU stall per block prefetched at
/// distance `d`. `T_stall(0) = T_disk` (a demand fetch).
#[inline]
pub fn t_stall(d: u32, params: &SystemParams, s: f64) -> f64 {
    if d == 0 {
        return params.t_disk;
    }
    (params.t_disk / d as f64 - (params.t_hit + params.t_cpu + s * params.t_driver)).max(0.0)
}

/// `ΔT_pf(d)` (Eq. 2): time saved by prefetching at distance `d` instead of
/// demand fetching. Zero at `d = 0`.
#[inline]
pub fn delta_t_pf(d: u32, params: &SystemParams, s: f64) -> f64 {
    if d == 0 {
        return 0.0;
    }
    params.t_disk - t_stall(d, params, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::patterson()
    }

    #[test]
    fn demand_fetch_boundary() {
        // d=0: stall the whole access, save nothing (paper: T_stall(0) =
        // T_disk, ΔT_pf(b,0) = 0).
        assert_eq!(t_stall(0, &p(), 1.0), 15.0);
        assert_eq!(delta_t_pf(0, &p(), 1.0), 0.0);
    }

    #[test]
    fn stall_with_patterson_constants_is_zero_at_depth_one() {
        // T_disk/1 − (0.243 + 50 + s·0.58) < 0 for any s ≥ 0 because
        // T_cpu = 50 already exceeds T_disk = 15: one period of computation
        // hides the whole access.
        assert_eq!(t_stall(1, &p(), 0.0), 0.0);
        assert_eq!(delta_t_pf(1, &p(), 0.0), 15.0);
    }

    #[test]
    fn stall_positive_when_cpu_is_fast() {
        // With tiny T_cpu the prefetch cannot be fully hidden at d=1.
        let fast = SystemParams { t_cpu: 2.0, ..SystemParams::patterson() };
        let st = t_stall(1, &fast, 0.0);
        // 15/1 − (0.243 + 2.0 + 0) = 12.757
        assert!((st - 12.757).abs() < 1e-12);
        assert!((delta_t_pf(1, &fast, 0.0) - (15.0 - 12.757)).abs() < 1e-12);
    }

    #[test]
    fn deeper_prefetches_stall_less() {
        let fast = SystemParams { t_cpu: 1.0, ..SystemParams::patterson() };
        let mut prev = f64::INFINITY;
        for d in 1..20 {
            let st = t_stall(d, &fast, 0.5);
            assert!(st <= prev + 1e-12, "stall increased at depth {d}");
            assert!(st >= 0.0);
            prev = st;
        }
    }

    #[test]
    fn more_concurrent_prefetching_reduces_stall() {
        let fast = SystemParams { t_cpu: 2.0, ..SystemParams::patterson() };
        assert!(t_stall(2, &fast, 4.0) <= t_stall(2, &fast, 0.0));
    }

    #[test]
    fn t_compute_matches_equation_3() {
        let s = 2.0;
        let got = t_compute(3, &p(), s);
        let expect = 3.0 * (50.0 + 0.243 + 2.0 * 0.580);
        assert!((got - expect).abs() < 1e-12);
        assert_eq!(t_compute(0, &p(), s), 0.0);
    }

    #[test]
    fn saving_bounded_by_t_disk() {
        for d in 0..50 {
            for s in [0.0, 0.5, 2.0, 10.0] {
                let dt = delta_t_pf(d, &p(), s);
                assert!((0.0..=15.0 + 1e-12).contains(&dt), "ΔT_pf({d}) = {dt}");
            }
        }
    }
}
