//! The assembled cost-benefit model (paper Figure 4).
//!
//! Figure 4's block diagram has constant inputs (`T_hit`, `T_driver`,
//! `T_disk`, `T_cpu`) and dynamically calculated inputs: `s`, the average
//! number of blocks prefetched per access period, and `h`, the fraction of
//! prefetched blocks that are eventually referenced. [`CostBenefitModel`]
//! owns both kinds and exposes the paper's four derived quantities —
//! benefit `B(b)`, prefetch-ejection cost `C_pr`, demand-shrink cost
//! `C_dc`, and overhead `T_oh` — with the dynamic state threaded through.

use crate::params::SystemParams;
use crate::{benefit, cost, overhead};
use serde::{Deserialize, Serialize};

/// Tunables of the cost-benefit scheme beyond the system constants.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Re-prefetch lead `x` (periods before expected use a re-prefetch of
    /// an ejected block would be issued), Eq. 11. The paper leaves `x`
    /// free; 1 is the most conservative choice that keeps bufferage
    /// positive.
    pub x: u32,
    /// EWMA smoothing for the `s` estimate, in (0, 1]; smaller = smoother.
    pub s_alpha: f64,
    /// Initial `s` before any observation.
    pub s_initial: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { x: 1, s_alpha: 0.05, s_initial: 1.0 }
    }
}

/// Dynamic cost-benefit state: the `s` and `h` boxes of Figure 4.
#[derive(Clone, Debug)]
pub struct CostBenefitModel {
    params: SystemParams,
    config: ModelConfig,
    /// EWMA of prefetches per access period.
    s: f64,
    /// Lifetime prefetches issued.
    prefetches_issued: u64,
    /// Lifetime prefetched blocks that were referenced before ejection.
    prefetches_hit: u64,
}

impl CostBenefitModel {
    /// A model with the given constants and tunables.
    pub fn new(params: SystemParams, config: ModelConfig) -> Self {
        params.validate();
        assert!(config.s_alpha > 0.0 && config.s_alpha <= 1.0, "s_alpha must be in (0,1]");
        assert!(config.s_initial >= 0.0 && config.s_initial.is_finite());
        CostBenefitModel {
            params,
            config,
            s: config.s_initial,
            prefetches_issued: 0,
            prefetches_hit: 0,
        }
    }

    /// Model with paper defaults.
    pub fn patterson() -> Self {
        Self::new(SystemParams::patterson(), ModelConfig::default())
    }

    /// The system constants.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The tunables.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Current estimate of `s`, the prefetches per access period.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Current estimate of `h`, the prefetch hit ratio (1.0 before any
    /// prefetch has resolved).
    pub fn h(&self) -> f64 {
        if self.prefetches_issued == 0 {
            1.0
        } else {
            self.prefetches_hit as f64 / self.prefetches_issued as f64
        }
    }

    /// Record the number of prefetches issued in the period that just
    /// ended; updates the `s` EWMA.
    pub fn observe_period(&mut self, prefetches: u32) {
        self.prefetches_issued += prefetches as u64;
        let a = self.config.s_alpha;
        self.s = (1.0 - a) * self.s + a * prefetches as f64;
    }

    /// Record that a previously prefetched block was referenced while still
    /// cached (feeds `h`).
    pub fn observe_prefetch_hit(&mut self) {
        self.prefetches_hit += 1;
    }

    /// `B(b)` (Eq. 1) for a candidate at distance `d_b` with path
    /// probability `p_b` whose path parent has probability `p_x`.
    pub fn benefit(&self, p_b: f64, d_b: u32, p_x: f64) -> f64 {
        benefit::benefit(p_b, d_b, p_x, &self.params, self.s)
    }

    /// Expected stall saving of prefetching at distance `d_b` with path
    /// probability `p_b`: `p_b · ΔT_pf(d_b)` (Eq. 2 weighted by the
    /// probability of the path materializing). This is the calibration
    /// counterpart of a realized prefetch hit's `T_disk − stall`; unlike
    /// the marginal `B(b)` used for the issue decision, the two are
    /// commensurable totals.
    pub fn expected_saving(&self, p_b: f64, d_b: u32) -> f64 {
        p_b * crate::timing::delta_t_pf(d_b, &self.params, self.s)
    }

    /// `T_oh` (Eq. 14) for the same candidate.
    pub fn t_oh(&self, p_b: f64, p_x: f64) -> f64 {
        overhead::t_oh(p_b, p_x, &self.params)
    }

    /// Net desirability `B(b) − T_oh(b)` used to rank candidates
    /// (Section 7, step 3).
    pub fn net_benefit(&self, p_b: f64, d_b: u32, p_x: f64) -> f64 {
        self.benefit(p_b, d_b, p_x) - self.t_oh(p_b, p_x)
    }

    /// The smallest path probability at which a candidate at distance
    /// `d_child` under a path parent of probability `p_x` can have
    /// positive net benefit. Derived by solving `B − T_oh > 0` for `p`:
    ///
    /// ```text
    /// p·ΔT(d) − p_x·ΔT(d−1) − (1 − p/p_x)·T_driver > 0
    ///   ⟺ p > (p_x·ΔT(d−1) + T_driver) / (ΔT(d) + T_driver/p_x)
    /// ```
    ///
    /// Used to prune candidate enumeration: children below this
    /// probability (and all their descendants at greater depth and lower
    /// probability when ΔT's increments shrink) can never be prefetched.
    pub fn min_useful_probability(&self, p_x: f64, d_child: u32) -> f64 {
        debug_assert!(p_x > 0.0 && d_child >= 1);
        let dt_child = crate::timing::delta_t_pf(d_child, &self.params, self.s);
        let dt_parent = crate::timing::delta_t_pf(d_child - 1, &self.params, self.s);
        let denom = dt_child + self.params.t_driver / p_x;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        (p_x * dt_parent + self.params.t_driver) / denom
    }

    /// `C_pr` (Eq. 11) of ejecting a prefetched block expected in
    /// `d_remaining` periods with path probability `p_b`.
    pub fn prefetch_eject_cost(&self, p_b: f64, d_remaining: u32) -> f64 {
        cost::prefetch_eject_cost(p_b, d_remaining, self.config.x, &self.params, self.s)
    }

    /// `C_dc` (Eq. 13) of shrinking the demand cache at marginal hit rate
    /// `marginal_hit_rate`.
    pub fn demand_eject_cost(&self, marginal_hit_rate: f64) -> f64 {
        cost::demand_eject_cost(marginal_hit_rate, &self.params)
    }

    /// The constant `T_driver + T_stall(x)` factor every Eq. 11 cost in one
    /// victim scan shares (`s` only changes between periods). Non-negative;
    /// when it is zero, every prefetch ejection cost collapses to `0.0` and
    /// ordering degenerates to recency.
    pub fn eject_scale(&self) -> f64 {
        self.params.t_driver + crate::timing::t_stall(self.config.x, &self.params, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_ewma_converges_to_observed_rate() {
        let mut m = CostBenefitModel::patterson();
        for _ in 0..500 {
            m.observe_period(3);
        }
        assert!((m.s() - 3.0).abs() < 0.01, "s = {}", m.s());
    }

    #[test]
    fn h_tracks_hit_fraction() {
        let mut m = CostBenefitModel::patterson();
        assert_eq!(m.h(), 1.0);
        m.observe_period(4);
        m.observe_prefetch_hit();
        assert_eq!(m.h(), 0.25);
    }

    #[test]
    fn net_benefit_subtracts_overhead() {
        let m = CostBenefitModel::patterson();
        let b = m.benefit(0.5, 1, 1.0);
        let oh = m.t_oh(0.5, 1.0);
        assert!((m.net_benefit(0.5, 1, 1.0) - (b - oh)).abs() < 1e-12);
        assert!(oh > 0.0);
    }

    #[test]
    fn wrappers_agree_with_free_functions() {
        let m = CostBenefitModel::patterson();
        let p = SystemParams::patterson();
        assert_eq!(m.prefetch_eject_cost(0.4, 6), cost::prefetch_eject_cost(0.4, 6, 1, &p, m.s()));
        assert_eq!(m.demand_eject_cost(0.02), cost::demand_eject_cost(0.02, &p));
        assert_eq!(m.benefit(0.4, 2, 0.8), benefit::benefit(0.4, 2, 0.8, &p, m.s()));
    }

    #[test]
    #[should_panic(expected = "s_alpha")]
    fn invalid_alpha_panics() {
        CostBenefitModel::new(
            SystemParams::patterson(),
            ModelConfig { s_alpha: 0.0, ..ModelConfig::default() },
        );
    }
}
