//! Batched cost-benefit kernels with runtime CPU-feature dispatch.
//!
//! The engine's per-period hot loop scores every frontier candidate with
//! the paper's arithmetic — benefit `B(b)` (Eq. 1), overhead `T_oh`
//! (Eq. 14), re-prefetch cost `C_pr` (Eq. 11). This module evaluates those
//! formulas over struct-of-arrays batches (`p_b[]`, `p_x[]`, `d_b[]` →
//! `net[]`) instead of one candidate at a time, with the depth-dependent
//! stall terms `ΔT_pf(d)` pre-tabulated in a [`DepthTable`] (they depend
//! only on `(params, s)`, which change at most once per access period).
//!
//! ## Dispatch
//!
//! Three implementations share one element-wise body:
//!
//! * `scalar` — a plain per-element loop; the **reference** every other
//!   path is property-tested against, and the only path compiled on
//!   non-x86_64 targets (aarch64 autovectorizes it under baseline NEON);
//! * `avx2` / `avx512f` — the same body instantiated inside
//!   `#[target_feature]` functions so LLVM may vectorize with wider
//!   registers, selected at runtime via `is_x86_feature_detected!`.
//!
//! ## Determinism contract
//!
//! Every path is element-wise with the *identical* operation order
//! (multiply, divide, subtract, `max` — each IEEE-754 correctly rounded;
//! no FMA contraction, no reassociation, no fast-math). Lane `i` of every
//! batch therefore produces the same bits on every path, on every batch
//! size, on every CPU — which is what lets `--kernel scalar` vs
//! `--kernel auto` produce byte-identical simulation output, and what the
//! proptests in `crates/core/tests/kernels.rs` enforce.

use crate::params::SystemParams;
use crate::timing;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Fixed inner-loop width: the element count gathered into local arrays
/// before the arithmetic loop. 8 f64 lanes = one ZMM register / two YMM
/// registers; small enough that LLVM fully unrolls the gather.
const LANES: usize = 8;

/// Memo table of `ΔT_pf(d)` (Eq. 2) for `d = 0..=max_depth`, valid for one
/// `(params, s)` pair. `s` only moves between access periods
/// ([`crate::model::CostBenefitModel::observe_period`]), so the engine
/// rebuilds this once per `s` update instead of recomputing `t_stall`
/// inside every benefit call.
#[derive(Clone, Debug, Default)]
pub struct DepthTable {
    dt: Vec<f64>,
}

impl DepthTable {
    /// Fill the table for `d = 0..=max_depth` from the scalar reference
    /// [`timing::delta_t_pf`] (bit-identical by construction).
    pub fn rebuild(&mut self, params: &SystemParams, s: f64, max_depth: u32) {
        self.dt.clear();
        self.dt.extend((0..=max_depth).map(|d| timing::delta_t_pf(d, params, s)));
    }

    /// `ΔT_pf(d)`; panics when `d` exceeds the tabulated depth.
    #[inline]
    pub fn get(&self, d: u32) -> f64 {
        self.dt[d as usize]
    }

    /// The raw table (`[ΔT_pf(0), …, ΔT_pf(max_depth)]`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.dt
    }

    /// Entry count (`max_depth + 1` after a rebuild, 0 before).
    #[inline]
    pub fn len(&self) -> usize {
        self.dt.len()
    }

    /// True before the first [`Self::rebuild`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dt.is_empty()
    }

    /// Table-based [`crate::model::CostBenefitModel::min_useful_probability`]:
    /// the same formula with `ΔT_pf` read from the memo instead of
    /// recomputed, bit-identical because the tabulated values are the very
    /// outputs of the scalar `delta_t_pf` the model calls.
    #[inline]
    pub fn min_useful_probability(&self, t_driver: f64, p_x: f64, d_child: u32) -> f64 {
        debug_assert!(p_x > 0.0 && d_child >= 1);
        let dt_child = self.get(d_child);
        let dt_parent = self.get(d_child - 1);
        let denom = dt_child + t_driver / p_x;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        (p_x * dt_parent + t_driver) / denom
    }
}

/// CLI-selectable kernel policy (`--kernel scalar|auto`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Force the scalar reference path (debugging, CI byte-diffing).
    Scalar,
    /// Best path the running CPU supports (the default).
    Auto,
}

impl std::str::FromStr for KernelChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelChoice::Scalar),
            "auto" => Ok(KernelChoice::Auto),
            other => Err(format!("unknown kernel '{other}' (expected scalar|auto)")),
        }
    }
}

type NetFn = unsafe fn(&[f64], &[f64], &[u32], &[f64], f64, &mut [f64]);
type BenefitFn = unsafe fn(&[f64], &[f64], &[u32], &[f64], &mut [f64]);
type EjectFn = unsafe fn(&[f64], &[u32], u32, f64, &mut [f64]);

/// One dispatchable kernel implementation: a name for telemetry plus the
/// three batched entry points. The function pointers are `unsafe fn`
/// because the vector variants carry `#[target_feature]`; instances are
/// only ever constructed for features the running CPU reported, which is
/// the safety invariant the public wrapper methods rely on.
pub struct KernelImpl {
    /// Path name (`scalar`, `avx2`, `avx512`) — surfaces in run logs,
    /// pfserve STATS and bench artifacts as `kernel=`.
    pub name: &'static str,
    net: NetFn,
    benefit: BenefitFn,
    eject: EjectFn,
}

impl std::fmt::Debug for KernelImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelImpl").field("name", &self.name).finish()
    }
}

impl KernelImpl {
    /// Batched net desirability `B(b) − T_oh(b)` (Eq. 1 minus Eq. 14):
    /// `out[i] = p_b[i]·ΔT(d_b[i]) − p_x[i]·ΔT(d_b[i]−1)
    ///           − max(1 − p_b[i]/p_x[i], 0)·T_driver`.
    /// `out` is cleared and resized to the batch length.
    pub fn net_benefit_batch(
        &self,
        p_b: &[f64],
        p_x: &[f64],
        d_b: &[u32],
        dt: &DepthTable,
        t_driver: f64,
        out: &mut Vec<f64>,
    ) {
        let n = p_b.len();
        assert!(p_x.len() == n && d_b.len() == n, "SoA columns must have equal length");
        debug_assert!(d_b.iter().all(|&d| d >= 1 && (d as usize) < dt.len()));
        out.clear();
        out.resize(n, 0.0);
        // SAFETY: `self` was only constructed for a CPU feature that
        // `is_x86_feature_detected!` confirmed at dispatch time.
        unsafe { (self.net)(p_b, p_x, d_b, dt.as_slice(), t_driver, out) }
    }

    /// Batched `B(b)` alone (Eq. 1), same layout as
    /// [`Self::net_benefit_batch`].
    pub fn benefit_batch(
        &self,
        p_b: &[f64],
        p_x: &[f64],
        d_b: &[u32],
        dt: &DepthTable,
        out: &mut Vec<f64>,
    ) {
        let n = p_b.len();
        assert!(p_x.len() == n && d_b.len() == n, "SoA columns must have equal length");
        debug_assert!(d_b.iter().all(|&d| d >= 1 && (d as usize) < dt.len()));
        out.clear();
        out.resize(n, 0.0);
        // SAFETY: as in `net_benefit_batch`.
        unsafe { (self.benefit)(p_b, p_x, d_b, dt.as_slice(), out) }
    }

    /// Batched `C_pr` (Eq. 11) with the scan-invariant factor
    /// `scale = T_driver + T_stall(x)` precomputed
    /// ([`crate::model::CostBenefitModel::eject_scale`]):
    /// `out[i] = 0` when `d_remaining[i] ≤ x`, else
    /// `p_b[i]·scale / (d_remaining[i] − x)`.
    pub fn eject_cost_batch(
        &self,
        p_b: &[f64],
        d_remaining: &[u32],
        x: u32,
        scale: f64,
        out: &mut Vec<f64>,
    ) {
        let n = p_b.len();
        assert!(d_remaining.len() == n, "SoA columns must have equal length");
        out.clear();
        out.resize(n, 0.0);
        // SAFETY: as in `net_benefit_batch`.
        unsafe { (self.eject)(p_b, d_remaining, x, scale, out) }
    }
}

// ---------------------------------------------------------------------------
// Element-wise lanes: the single source of truth for operation order.
// ---------------------------------------------------------------------------

/// One net-benefit lane, operation-for-operation the composition of
/// `benefit::benefit` and `overhead::t_oh` with `ΔT_pf` pre-read.
#[inline(always)]
fn net_lane(p_b: f64, p_x: f64, dt_d: f64, dt_dm1: f64, t_driver: f64) -> f64 {
    let b = p_b * dt_d - p_x * dt_dm1;
    let oh = (1.0 - p_b / p_x).max(0.0) * t_driver;
    b - oh
}

/// One benefit lane (Eq. 1).
#[inline(always)]
fn benefit_lane(p_b: f64, p_x: f64, dt_d: f64, dt_dm1: f64) -> f64 {
    p_b * dt_d - p_x * dt_dm1
}

/// One eject-cost lane (Eq. 11 with the shared scale hoisted).
#[inline(always)]
fn eject_lane(p_b: f64, d_remaining: u32, x: u32, scale: f64) -> f64 {
    if d_remaining <= x {
        return 0.0;
    }
    p_b * scale / (d_remaining - x) as f64
}

// ---------------------------------------------------------------------------
// Batch bodies. `*_ref` is the plain reference loop; `*_lanes` gathers the
// depth-indexed ΔT values into fixed-width local arrays first so the
// arithmetic loop is free of data-dependent indexing and LLVM can
// vectorize it. Both apply `*_lane` per element, so outputs are
// bit-identical by construction.
// ---------------------------------------------------------------------------

/// Reference net-benefit loop (the retained scalar path).
pub fn net_benefit_batch_ref(
    p_b: &[f64],
    p_x: &[f64],
    d_b: &[u32],
    dt: &[f64],
    t_driver: f64,
    out: &mut [f64],
) {
    for i in 0..out.len() {
        let d = d_b[i] as usize;
        out[i] = net_lane(p_b[i], p_x[i], dt[d], dt[d - 1], t_driver);
    }
}

/// Reference benefit loop.
pub fn benefit_batch_ref(p_b: &[f64], p_x: &[f64], d_b: &[u32], dt: &[f64], out: &mut [f64]) {
    for i in 0..out.len() {
        let d = d_b[i] as usize;
        out[i] = benefit_lane(p_b[i], p_x[i], dt[d], dt[d - 1]);
    }
}

/// Reference eject-cost loop.
pub fn eject_cost_batch_ref(p_b: &[f64], d_remaining: &[u32], x: u32, scale: f64, out: &mut [f64]) {
    for i in 0..out.len() {
        out[i] = eject_lane(p_b[i], d_remaining[i], x, scale);
    }
}

#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn net_benefit_batch_lanes(
    p_b: &[f64],
    p_x: &[f64],
    d_b: &[u32],
    dt: &[f64],
    t_driver: f64,
    out: &mut [f64],
) {
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        let mut dt_d = [0.0; LANES];
        let mut dt_m = [0.0; LANES];
        for l in 0..LANES {
            let d = d_b[i + l] as usize;
            dt_d[l] = dt[d];
            dt_m[l] = dt[d - 1];
        }
        for l in 0..LANES {
            out[i + l] = net_lane(p_b[i + l], p_x[i + l], dt_d[l], dt_m[l], t_driver);
        }
        i += LANES;
    }
    net_benefit_batch_ref(&p_b[i..], &p_x[i..], &d_b[i..], dt, t_driver, &mut out[i..]);
}

#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn benefit_batch_lanes(p_b: &[f64], p_x: &[f64], d_b: &[u32], dt: &[f64], out: &mut [f64]) {
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        let mut dt_d = [0.0; LANES];
        let mut dt_m = [0.0; LANES];
        for l in 0..LANES {
            let d = d_b[i + l] as usize;
            dt_d[l] = dt[d];
            dt_m[l] = dt[d - 1];
        }
        for l in 0..LANES {
            out[i + l] = benefit_lane(p_b[i + l], p_x[i + l], dt_d[l], dt_m[l]);
        }
        i += LANES;
    }
    benefit_batch_ref(&p_b[i..], &p_x[i..], &d_b[i..], dt, &mut out[i..]);
}

#[inline(always)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn eject_cost_batch_lanes(p_b: &[f64], d_remaining: &[u32], x: u32, scale: f64, out: &mut [f64]) {
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            out[i + l] = eject_lane(p_b[i + l], d_remaining[i + l], x, scale);
        }
        i += LANES;
    }
    eject_cost_batch_ref(&p_b[i..], &d_remaining[i..], x, scale, &mut out[i..]);
}

// ---------------------------------------------------------------------------
// Dispatch table entries.
// ---------------------------------------------------------------------------

unsafe fn net_scalar(
    p_b: &[f64],
    p_x: &[f64],
    d_b: &[u32],
    dt: &[f64],
    t_driver: f64,
    out: &mut [f64],
) {
    net_benefit_batch_ref(p_b, p_x, d_b, dt, t_driver, out);
}

unsafe fn benefit_scalar(p_b: &[f64], p_x: &[f64], d_b: &[u32], dt: &[f64], out: &mut [f64]) {
    benefit_batch_ref(p_b, p_x, d_b, dt, out);
}

unsafe fn eject_scalar(p_b: &[f64], d_remaining: &[u32], x: u32, scale: f64, out: &mut [f64]) {
    eject_cost_batch_ref(p_b, d_remaining, x, scale, out);
}

/// The scalar reference kernel: always available, and the oracle the
/// vector paths are property-tested against.
pub static SCALAR: KernelImpl =
    KernelImpl { name: "scalar", net: net_scalar, benefit: benefit_scalar, eject: eject_scalar };

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn net_avx2(
        p_b: &[f64],
        p_x: &[f64],
        d_b: &[u32],
        dt: &[f64],
        t_driver: f64,
        out: &mut [f64],
    ) {
        net_benefit_batch_lanes(p_b, p_x, d_b, dt, t_driver, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn benefit_avx2(p_b: &[f64], p_x: &[f64], d_b: &[u32], dt: &[f64], out: &mut [f64]) {
        benefit_batch_lanes(p_b, p_x, d_b, dt, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn eject_avx2(
        p_b: &[f64],
        d_remaining: &[u32],
        x: u32,
        scale: f64,
        out: &mut [f64],
    ) {
        eject_cost_batch_lanes(p_b, d_remaining, x, scale, out);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn net_avx512(
        p_b: &[f64],
        p_x: &[f64],
        d_b: &[u32],
        dt: &[f64],
        t_driver: f64,
        out: &mut [f64],
    ) {
        net_benefit_batch_lanes(p_b, p_x, d_b, dt, t_driver, out);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn benefit_avx512(
        p_b: &[f64],
        p_x: &[f64],
        d_b: &[u32],
        dt: &[f64],
        out: &mut [f64],
    ) {
        benefit_batch_lanes(p_b, p_x, d_b, dt, out);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn eject_avx512(
        p_b: &[f64],
        d_remaining: &[u32],
        x: u32,
        scale: f64,
        out: &mut [f64],
    ) {
        eject_cost_batch_lanes(p_b, d_remaining, x, scale, out);
    }
}

#[cfg(target_arch = "x86_64")]
static AVX2: KernelImpl = KernelImpl {
    name: "avx2",
    net: x86::net_avx2,
    benefit: x86::benefit_avx2,
    eject: x86::eject_avx2,
};

#[cfg(target_arch = "x86_64")]
static AVX512: KernelImpl = KernelImpl {
    name: "avx512",
    net: x86::net_avx512,
    benefit: x86::benefit_avx512,
    eject: x86::eject_avx512,
};

/// The best kernel the running CPU supports (ignores any forced choice).
pub fn detect() -> &'static KernelImpl {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return &AVX512;
        }
        if is_x86_feature_detected!("avx2") {
            return &AVX2;
        }
    }
    &SCALAR
}

/// Every kernel the running CPU can execute (scalar first). Lets tests
/// exercise each dispatch path in one process.
pub fn all_available() -> Vec<&'static KernelImpl> {
    #[allow(unused_mut)]
    let mut v = vec![&SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            v.push(&AVX2);
        }
        if is_x86_feature_detected!("avx512f") {
            v.push(&AVX512);
        }
    }
    v
}

/// Process-wide forced choice (0 = auto, 1 = scalar). Set once at CLI
/// startup; engines read it at construction. Because every path is
/// bit-identical, the choice affects throughput and the `kernel=`
/// telemetry field — never results, checkpoints, or fingerprints.
static FORCED: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<&'static KernelImpl> = OnceLock::new();

/// Force the kernel path for every engine constructed afterwards
/// (`--kernel scalar|auto`).
pub fn force(choice: KernelChoice) {
    FORCED.store(matches!(choice, KernelChoice::Scalar) as u8, Ordering::Relaxed);
}

/// The kernel new engines will use: the scalar reference when forced,
/// otherwise the detected best path (memoized).
pub fn active() -> &'static KernelImpl {
    if FORCED.load(Ordering::Relaxed) == 1 {
        return &SCALAR;
    }
    DETECTED.get_or_init(detect)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(s: f64) -> DepthTable {
        let mut dt = DepthTable::default();
        dt.rebuild(&SystemParams::patterson(), s, 8);
        dt
    }

    #[test]
    fn depth_table_matches_scalar_timing() {
        let p = SystemParams::patterson();
        for s in [0.0, 0.7, 3.2] {
            let mut dt = DepthTable::default();
            dt.rebuild(&p, s, 8);
            assert_eq!(dt.len(), 9);
            for d in 0..=8 {
                assert_eq!(dt.get(d).to_bits(), timing::delta_t_pf(d, &p, s).to_bits());
            }
        }
    }

    #[test]
    fn net_lane_matches_model_net_benefit() {
        let m = crate::model::CostBenefitModel::patterson();
        let dt = table(m.s());
        for (p_b, d, p_x) in [(0.5, 1, 1.0), (0.25, 3, 0.5), (0.9, 8, 0.9), (1e-4, 2, 0.3)] {
            let got = net_lane(p_b, p_x, dt.get(d), dt.get(d - 1), m.params().t_driver);
            assert_eq!(got.to_bits(), m.net_benefit(p_b, d, p_x).to_bits());
        }
    }

    #[test]
    fn eject_lane_matches_model_eject_cost() {
        let m = crate::model::CostBenefitModel::patterson();
        let x = m.config().x;
        let scale = m.eject_scale();
        for (p_b, d) in [(0.5, 5), (0.9, 1), (0.9, 0), (0.1, 40)] {
            let got = eject_lane(p_b, d, x, scale);
            assert_eq!(got.to_bits(), m.prefetch_eject_cost(p_b, d).to_bits());
        }
    }

    #[test]
    fn table_cutoff_matches_model_cutoff() {
        let m = crate::model::CostBenefitModel::patterson();
        let dt = table(m.s());
        for d in 1..=8 {
            for p_x in [1.0, 0.5, 0.01, 1e-6] {
                let got = dt.min_useful_probability(m.params().t_driver, p_x, d);
                assert_eq!(got.to_bits(), m.min_useful_probability(p_x, d).to_bits());
            }
        }
    }

    #[test]
    fn choice_parses() {
        assert_eq!("scalar".parse::<KernelChoice>().unwrap(), KernelChoice::Scalar);
        assert_eq!("auto".parse::<KernelChoice>().unwrap(), KernelChoice::Auto);
        assert!("sse9".parse::<KernelChoice>().is_err());
    }

    #[test]
    fn force_switches_active_kernel() {
        force(KernelChoice::Scalar);
        assert_eq!(active().name, "scalar");
        force(KernelChoice::Auto);
        assert_eq!(active().name, detect().name);
        // Leave the process-wide default as tests found it.
        force(KernelChoice::Auto);
    }

    #[test]
    fn scalar_is_always_available() {
        let all = all_available();
        assert_eq!(all[0].name, "scalar");
        assert!(all.iter().any(|k| std::ptr::eq(*k, detect())));
    }

    #[test]
    fn every_path_is_bit_identical_on_a_smoke_batch() {
        let dt = table(1.3);
        let n = 37;
        let p_x: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64 * 0.11)).collect();
        let p_b: Vec<f64> =
            p_x.iter().enumerate().map(|(i, &x)| x * (0.9 - 0.02 * i as f64).max(0.05)).collect();
        let d_b: Vec<u32> = (0..n).map(|i| 1 + (i as u32 % 8)).collect();
        let d_rem: Vec<u32> = (0..n).map(|i| i as u32 % 12).collect();
        let mut want = Vec::new();
        SCALAR.net_benefit_batch(&p_b, &p_x, &d_b, &dt, 0.58, &mut want);
        let mut want_ben = Vec::new();
        SCALAR.benefit_batch(&p_b, &p_x, &d_b, &dt, &mut want_ben);
        let mut want_ej = Vec::new();
        SCALAR.eject_cost_batch(&p_b, &d_rem, 1, 0.58, &mut want_ej);
        for k in all_available() {
            let mut got = Vec::new();
            k.net_benefit_batch(&p_b, &p_x, &d_b, &dt, 0.58, &mut got);
            assert_eq!(bits(&got), bits(&want), "net path {}", k.name);
            k.benefit_batch(&p_b, &p_x, &d_b, &dt, &mut got);
            assert_eq!(bits(&got), bits(&want_ben), "benefit path {}", k.name);
            k.eject_cost_batch(&p_b, &d_rem, 1, 0.58, &mut got);
            assert_eq!(bits(&got), bits(&want_ej), "eject path {}", k.name);
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
