//! The cost-benefit prefetching engine: the paper's Section 7 algorithm.
//!
//! [`CostBenefitEngine`] bundles the prefetch tree, the cost-benefit model
//! (with its dynamic `s` estimate), and the online stack-distance estimator
//! that prices demand-cache shrinking. Tree-based policies compose it:
//! `tree` uses it alone, `tree-next-limit` adds one-block-lookahead,
//! `tree-lvc` adds last-visited-child prefetching.
//!
//! Each access period the engine:
//!
//! 1. records the reference in the stack-distance estimator and the tree
//!    (advancing the LZ cursor);
//! 2. runs the **benefit frontier**: a best-first queue over descendants of
//!    the cursor ordered by net benefit `B(b) − T_oh(b)` (Eq. 1, 14). The
//!    top candidate is compared against the cheapest replacement cost
//!    (min of Eq. 11 over the prefetch cache and Eq. 13 for the demand
//!    LRU); it is prefetched — or skipped if already resident — and its
//!    children join the frontier. The round ends when the best remaining
//!    net benefit no longer exceeds the replacement cost (Section 7,
//!    step 4), realizing "prefetch along multiple paths simultaneously".

use crate::calibration::CalibrationTracker;
use crate::kernel::{self, DepthTable, KernelImpl};
use crate::model::{CostBenefitModel, ModelConfig};
use crate::params::SystemParams;
use crate::policy::{PeriodActivity, RefKind, Victim};
use crate::resilience::Quarantine;
use prefetch_cache::{BufferCache, PrefetchMeta, StackDistanceEstimator};
use prefetch_telemetry::{Phase, PhaseTimer, PhaseTimes};
use prefetch_trace::BlockId;
use prefetch_tree::{AccessOutcome, Candidate, CandidateBatch, PrefetchTree};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// Bound on the ejected-block tracking map (calibration bookkeeping).
/// Ejections past the cap still accumulate predicted cost but their
/// realized side is uncounted (reported via `eject_untracked`), keeping
/// memory bounded without perturbing determinism.
const EJECT_TRACK_CAP: usize = 4096;

/// Configuration of the cost-benefit engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Cost-benefit model tunables (re-prefetch lead `x`, `s` smoothing).
    pub model: ModelConfig,
    /// Maximum tree depth the frontier may descend below the cursor.
    pub max_depth: u32,
    /// Hard cap on prefetches issued per access period (safety valve; the
    /// cost comparison is the real stopping rule).
    pub max_per_period: u32,
    /// Hard cap on candidates examined per access period, bounding the
    /// per-reference work when large cached subtrees sit below the cursor.
    pub max_considered_per_period: u32,
    /// Candidates with path probability below this are not pursued.
    pub min_probability: f64,
    /// Exponential decay of the stack-distance histogram (1.0 = cumulative).
    pub stack_decay: f64,
    /// Prefetch-tree node limit (`usize::MAX` = unlimited) — Figure 13.
    pub node_limit: usize,
    /// With a finite `node_limit`: freeze the tree at the budget instead
    /// of evicting LRU leaves (see `prefetch_tree::OverflowPolicy`). Off
    /// by default — eviction is the paper's Section 9.3 scheme, and the
    /// default keeps every paper figure bit-identical.
    pub freeze_at_node_limit: bool,
    /// Extension beyond the paper: after an LZ reset, anchor candidate
    /// enumeration at the root's child for the current block (order-1
    /// context) instead of the bare root. Off by default for paper
    /// fidelity; the `tree-reanchor` policy and the ablation bench turn it
    /// on.
    pub reanchor_after_reset: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            model: ModelConfig::default(),
            max_depth: 8,
            max_per_period: 64,
            max_considered_per_period: 256,
            min_probability: 1e-4,
            stack_decay: 0.99999,
            node_limit: usize::MAX,
            freeze_at_node_limit: false,
            reanchor_after_reset: false,
        }
    }
}

/// Frontier entry ordered by net benefit.
struct FrontierEntry {
    net: f64,
    cand: Candidate,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.net == other.net
    }
}
impl Eq for FrontierEntry {}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.net.total_cmp(&other.net)
    }
}

/// Per-period memo of everything the frontier arithmetic derives from the
/// dynamic prefetch rate `s`: the `ΔT_pf(d)` table the batch kernels read
/// and the frontier-seed probability cutoff. `s` only moves in
/// [`CostBenefitModel::observe_period`] (end of each prefetch round), so
/// the memo is refreshed at most once per period — and *only* when `s`'s
/// bits actually changed, which an EWMA at a fixed point never does.
struct PeriodMemo {
    /// `s.to_bits()` the memo was built for.
    s_bits: u64,
    /// `ΔT_pf(d)` for `d = 0..=max_depth`.
    dt: DepthTable,
    /// `min_useful_probability(1.0, 1)`: the frontier-seed cutoff, a pure
    /// function of `(params, s)`.
    seed_cutoff: f64,
    /// Rebuild count (regression handle: must track `s` changes exactly).
    rebuilds: u64,
}

impl PeriodMemo {
    fn new(model: &CostBenefitModel, max_depth: u32) -> Self {
        let mut memo =
            PeriodMemo { s_bits: 0, dt: DepthTable::default(), seed_cutoff: 0.0, rebuilds: 0 };
        memo.rebuild(model, max_depth);
        memo
    }

    fn rebuild(&mut self, model: &CostBenefitModel, max_depth: u32) {
        self.s_bits = model.s().to_bits();
        self.dt.rebuild(model.params(), model.s(), max_depth);
        self.seed_cutoff = model.min_useful_probability(1.0, 1);
        self.rebuilds += 1;
    }

    /// Rebuild iff the model's `s` no longer matches the memo.
    fn refresh(&mut self, model: &CostBenefitModel, max_depth: u32) {
        if model.s().to_bits() != self.s_bits {
            self.rebuild(model, max_depth);
        }
    }
}

/// Tree + model + H(n) estimator + the Section 7 prefetch loop.
pub struct CostBenefitEngine {
    tree: PrefetchTree,
    model: CostBenefitModel,
    stack: StackDistanceEstimator,
    cfg: EngineConfig,
    period: u64,
    /// SoA candidate scratch: enumeration emits kernel-ready columns.
    batch: CandidateBatch,
    /// Kernel output column, parallel to `batch`.
    net: Vec<f64>,
    /// Batched Eq. 1/14 kernels, resolved at construction from the
    /// process-wide choice ([`kernel::active`]). Every path is
    /// bit-identical, so this affects throughput only — never results.
    kern: &'static KernelImpl,
    /// `s`-derived memo: `ΔT_pf` table + frontier-seed cutoff.
    memo: PeriodMemo,
    quarantine: Quarantine,
    timer: PhaseTimer,
    calibration: CalibrationTracker,
    /// Ejected prefetched blocks awaiting their realized re-fetch cost
    /// (block → Eq. 11 predicted cost at ejection), bounded by
    /// [`EJECT_TRACK_CAP`].
    ejected: HashMap<BlockId, f64>,
}

impl CostBenefitEngine {
    /// Build an engine.
    pub fn new(params: SystemParams, cfg: EngineConfig) -> Self {
        let tree = if cfg.node_limit == usize::MAX {
            PrefetchTree::new()
        } else {
            let overflow = if cfg.freeze_at_node_limit {
                prefetch_tree::OverflowPolicy::Freeze
            } else {
                prefetch_tree::OverflowPolicy::Evict
            };
            PrefetchTree::with_node_budget(cfg.node_limit, overflow)
        };
        let model = CostBenefitModel::new(params, cfg.model);
        let memo = PeriodMemo::new(&model, cfg.max_depth);
        CostBenefitEngine {
            tree,
            model,
            stack: StackDistanceEstimator::new(cfg.stack_decay),
            cfg,
            period: 0,
            batch: CandidateBatch::new(),
            net: Vec::new(),
            kern: kernel::active(),
            memo,
            quarantine: Quarantine::default(),
            timer: PhaseTimer::null(),
            calibration: CalibrationTracker::new(),
            ejected: HashMap::new(),
        }
    }

    /// Name of the batch-kernel path this engine evaluates Eq. 1/14
    /// through (`scalar`, `avx2`, `avx512`) — the `kernel=` telemetry
    /// value.
    pub fn kernel_name(&self) -> &'static str {
        self.kern.name
    }

    /// Override the batch-kernel path for this engine (tests and the
    /// frontier microbenchmark; CLIs use the process-wide
    /// [`kernel::force`] instead). All paths are bit-identical, so this
    /// never changes results.
    pub fn set_kernel(&mut self, kern: &'static KernelImpl) {
        self.kern = kern;
    }

    /// The memoized frontier-seed probability cutoff
    /// (`min_useful_probability(1.0, 1)` for the current `s`), before the
    /// `min_probability` floor is applied.
    pub fn seed_cutoff(&self) -> f64 {
        self.memo.seed_cutoff
    }

    /// How many times the `s`-derived memo (ΔT_pf table + seed cutoff) has
    /// been rebuilt, including the build at construction. Regression
    /// handle: increments exactly when `s`'s bits change.
    pub fn depth_table_rebuilds(&self) -> u64 {
        self.memo.rebuilds
    }

    /// Turn on per-phase profiling (off by default — the NullTelemetry
    /// path costs one branch per probe).
    pub fn enable_profiling(&mut self) {
        self.timer.enable();
    }

    /// Accumulated per-phase times (all zero unless profiling is on).
    pub fn phase_times(&self) -> PhaseTimes {
        self.timer.times()
    }

    /// The underlying tree (read access for policies and diagnostics).
    pub fn tree(&self) -> &PrefetchTree {
        &self.tree
    }

    /// Warm-start: replace the engine's tree with one restored from a
    /// `pftree-snap/v1` snapshot. The restored tree carries its own node
    /// budget, overflow policy, parse position and statistics (complete
    /// training state), so continued training is bit-identical to the
    /// snapshotted tree's future; the engine keeps its own model and
    /// stack-distance state, which the snapshot does not cover.
    pub fn install_tree(&mut self, tree: PrefetchTree) {
        self.tree = tree;
    }

    /// The cost-benefit model (read access).
    pub fn model(&self) -> &CostBenefitModel {
        &self.model
    }

    /// Mutable model access (policies report prefetch hits).
    pub fn model_mut(&mut self) -> &mut CostBenefitModel {
        &mut self.model
    }

    /// Current access period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The fault quarantine (read access for diagnostics).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Predicted-vs-realized estimator calibration accumulators.
    pub fn calibration(&self) -> &CalibrationTracker {
        &self.calibration
    }

    /// A prefetched block is being ejected with Eq. 11 predicted cost
    /// `cost`: accumulate the prediction and start tracking the block so
    /// its next reference realizes the actual re-fetch cost.
    fn track_ejection(&mut self, block: BlockId, cost: f64) {
        let tracked = self.ejected.len() < EJECT_TRACK_CAP;
        if tracked {
            self.ejected.insert(block, cost);
        }
        self.calibration.record_predicted_eject(cost, tracked);
    }

    /// The simulator served a reference to `block` as `kind` with
    /// `stall_ms` of stall. Realizes the calibration counterparts of the
    /// engine's earlier predictions: a prefetch hit realizes its expected
    /// saving (`T_disk − stall`, the demand stall avoided); any reference to a
    /// tracked ejected block realizes its Eq. 11 re-fetch cost (the miss
    /// stall, or zero when it came back as a hit).
    pub fn observe_outcome(&mut self, block: BlockId, kind: RefKind, stall_ms: f64) {
        if kind == RefKind::PrefetchHit {
            let saved = self.model.params().t_disk - stall_ms;
            self.calibration.record_realized_benefit(saved);
        }
        if self.ejected.remove(&block).is_some() {
            let realized = if kind == RefKind::Miss { stall_ms } else { 0.0 };
            self.calibration.record_realized_eject(realized);
        }
    }

    /// A prefetch read of `block` failed on the disk array. Returns `true`
    /// if the failure pushed the block into quarantine, after which
    /// [`Self::prefetch_round`] stops re-issuing it until a successful
    /// read clears it.
    pub fn note_prefetch_fault(&mut self, block: BlockId) -> bool {
        self.quarantine.record_failure(block)
    }

    /// A read of `block` succeeded; clears any quarantine record.
    pub fn note_read_success(&mut self, block: BlockId) {
        self.quarantine.record_success(block);
    }

    /// Record the reference in the H(n) estimator and the prefetch tree.
    /// Call once per reference, before [`Self::prefetch_round`].
    pub fn record_reference(&mut self, block: BlockId) -> AccessOutcome {
        let tok = self.timer.begin();
        self.stack.record(block.0);
        let out = self.tree.record_access(block);
        self.timer.end(Phase::TreeUpdate, tok);
        out
    }

    /// Observe whether the cursor node's last-visited child is already
    /// resident (Figure 16). Call *before* [`Self::record_reference`], on
    /// the pre-access cursor.
    pub fn lvc_already_cached(&self, cache: &BufferCache) -> Option<bool> {
        let cursor = self.tree.cursor();
        let lvc = self.tree.last_visited_child(cursor)?;
        let block = self.tree.block(lvc)?;
        Some(cache.contains(block))
    }

    /// The cheapest Eq. 11 prefetch ejection, answered by the cache's lazy
    /// victim heap in amortised O(log n) instead of the historical O(n)
    /// scan. The heap orders by the scale-free ratio `p/(d_remaining − x)`;
    /// the winning block's cost is then recomputed through the exact
    /// [`CostBenefitModel::prefetch_eject_cost`] arithmetic so the returned
    /// value is bit-identical to what the scan produced. Under
    /// `debug_assertions` every answer is re-verified against the retained
    /// exact scan. Public so the victim-selection microbenchmark can time
    /// the heap path against [`Self::exact_prefetch_eject_scan`] directly.
    pub fn best_prefetch_eject(&self, cache: &BufferCache) -> Option<(BlockId, f64)> {
        let block = if self.model.eject_scale() > 0.0 {
            cache.cheapest_prefetch_victim(self.period, self.model.config().x)?
        } else {
            // Degenerate zero timing scale: every cost is exactly 0.0 and
            // the scan's strict `<` keeps its first (most recent) entry.
            cache.prefetch_iter().next()?.0
        };
        let meta = cache.prefetch_meta(block)?;
        let elapsed = self.period.saturating_sub(meta.issued_at);
        let remaining = (meta.distance as u64).saturating_sub(elapsed) as u32;
        let cost = self.model.prefetch_eject_cost(meta.probability, remaining);
        debug_assert_eq!(
            Some((block, cost.to_bits())),
            self.exact_prefetch_eject_scan(cache).map(|(b, c)| (b, c.to_bits())),
            "victim heap diverged from the exact Eq. 11 scan at period {}",
            self.period
        );
        Some((block, cost))
    }

    /// Reference implementation of the Eq. 11 victim choice: the exact
    /// linear scan over the prefetch partition that
    /// [`Self::best_prefetch_eject`] replaces. Kept public for equivalence
    /// tests and the victim-selection microbenchmark.
    pub fn exact_prefetch_eject_scan(&self, cache: &BufferCache) -> Option<(BlockId, f64)> {
        let mut best_pr: Option<(BlockId, f64)> = None;
        for (b, meta) in cache.prefetch_iter() {
            let elapsed = self.period.saturating_sub(meta.issued_at);
            let remaining = (meta.distance as u64).saturating_sub(elapsed) as u32;
            let c = self.model.prefetch_eject_cost(meta.probability, remaining);
            if best_pr.is_none_or(|(_, bc)| c < bc) {
                best_pr = Some((b, c));
            }
        }
        best_pr
    }

    /// Cheapest replacement victim and its cost per Eq. 11 vs Eq. 13.
    /// Returns cost 0 with no victim when the cache has free buffers.
    pub fn cheapest_victim(&self, cache: &BufferCache) -> (Option<Victim>, f64) {
        if !cache.is_full() {
            return (None, 0.0);
        }
        // Eq. 11: cheapest prefetched block, via the lazy victim heap.
        let best_pr = self.best_prefetch_eject(cache);
        // Eq. 13: shrink the demand cache at its current size.
        let dc = if cache.demand_len() > 1 {
            Some(self.model.demand_eject_cost(self.stack.marginal_hit_rate(cache.demand_len())))
        } else {
            // Never take the last demand buffer (it holds the block being
            // accessed) for a prefetch.
            None
        };
        match (best_pr, dc) {
            (Some((b, cp)), Some(cd)) => {
                if cp <= cd {
                    (Some(Victim::Prefetch(b)), cp)
                } else {
                    (Some(Victim::DemandLru), cd)
                }
            }
            (Some((b, cp)), None) => (Some(Victim::Prefetch(b)), cp),
            (None, Some(cd)) => (Some(Victim::DemandLru), cd),
            (None, None) => (None, f64::INFINITY),
        }
    }

    /// [`Self::demand_victim`] with the time charged to the cost-benefit
    /// phase when profiling is on.
    pub fn demand_victim_timed(&mut self, cache: &BufferCache) -> Victim {
        let tok = self.timer.begin();
        let v = self.demand_victim(cache);
        self.timer.end(Phase::CostBenefit, tok);
        if let Victim::Prefetch(b) = v {
            // `demand_victim` chose the cheapest Eq. 11 ejection, so its
            // cost is exactly the heap winner's.
            let cost = self.best_prefetch_eject(cache).map_or(0.0, |(_, c)| c);
            self.track_ejection(b, cost);
        }
        v
    }

    /// Victim for a *demand* fetch: same comparison, but the demand LRU is
    /// always available as a fallback (the incoming block will immediately
    /// occupy a demand buffer anyway).
    pub fn demand_victim(&self, cache: &BufferCache) -> Victim {
        let best_pr = self.best_prefetch_eject(cache);
        let cd = if cache.demand_len() > 0 {
            Some(self.model.demand_eject_cost(self.stack.marginal_hit_rate(cache.demand_len())))
        } else {
            None
        };
        match (best_pr, cd) {
            (Some((b, cp)), Some(cdv)) if cp <= cdv => Victim::Prefetch(b),
            (_, Some(_)) => Victim::DemandLru,
            (Some((b, _)), None) => Victim::Prefetch(b),
            (None, None) => unreachable!("demand_victim called on an empty full cache"),
        }
    }

    /// Run the Section 7 cost-benefit prefetch loop for this access period
    /// and advance the period counter. `last_block` is the block the
    /// period just referenced (used only by the re-anchoring extension);
    /// `act` accumulates what happened.
    pub fn prefetch_round(
        &mut self,
        last_block: BlockId,
        cache: &mut BufferCache,
        act: &mut PeriodActivity,
    ) {
        // `s` moved at the end of the previous round (or an external
        // `model_mut` touch): re-derive the ΔT_pf table and seed cutoff
        // once, instead of inside every benefit evaluation below.
        self.memo.refresh(&self.model, self.cfg.max_depth);
        let anchor = if self.cfg.reanchor_after_reset {
            self.tree.prediction_anchor(last_block)
        } else {
            self.tree.cursor()
        };
        let mut frontier: BinaryHeap<FrontierEntry> = BinaryHeap::new();
        // Enumerate only children that could possibly have positive net
        // benefit (children are weight-sorted, so this is O(useful), not
        // O(fan-out) — the root can have tens of thousands of children).
        let tok = self.timer.begin();
        let cutoff = self.memo.seed_cutoff.max(self.cfg.min_probability);
        self.batch.clear();
        self.tree.child_candidates_pruned_soa(anchor, 1.0, 0, cutoff, &mut self.batch);
        self.kern.net_benefit_batch(
            &self.batch.p_b,
            &self.batch.p_x,
            &self.batch.d_b,
            &self.memo.dt,
            self.model.params().t_driver,
            &mut self.net,
        );
        for i in 0..self.batch.len() {
            frontier.push(FrontierEntry { net: self.net[i], cand: self.batch.candidate(i) });
        }
        self.timer.end(Phase::CandidateSelection, tok);

        let mut issued: u32 = 0;
        let mut considered: u32 = 0;
        while let Some(entry) = frontier.pop() {
            if issued >= self.cfg.max_per_period || considered >= self.cfg.max_considered_per_period
            {
                break;
            }
            // The heap is net-ordered: once the best remaining candidate
            // has no positive net benefit, no candidate (or descendant —
            // ΔT_pf's increments shrink with depth while probabilities
            // shrink along paths) can justify a prefetch. Stop the round.
            if entry.net <= 0.0 {
                break;
            }
            let cand = entry.cand;
            if cand.probability < self.cfg.min_probability {
                // Net-ordered heap, so skip (don't break) — but don't
                // expand either.
                continue;
            }
            considered += 1;
            act.candidates_considered += 1;

            if self.quarantine.is_quarantined(cand.block) {
                // The array keeps refusing this block; don't burn a slot
                // (or T_oh) on it, and don't descend through it either —
                // its subtree would be reached via the same failing read.
                act.candidates_quarantined += 1;
                continue;
            }

            if cache.contains(cand.block) {
                // Chosen for prefetch but already resident (Figure 7);
                // treat as settled and extend the path one deeper.
                act.candidates_already_cached += 1;
                self.expand(&cand, &mut frontier);
                continue;
            }

            // Step 2/3: cheapest replacement vs. net benefit.
            let tok = self.timer.begin();
            let (victim, cost) = self.cheapest_victim(cache);
            self.timer.end(Phase::CostBenefit, tok);
            if entry.net < cost {
                break;
            }
            if let Some(v) = victim {
                if let Victim::Prefetch(b) = v {
                    // `cost` is the Eq. 11 side of the min when the
                    // prefetch partition supplied the victim.
                    self.track_ejection(b, cost);
                }
                match crate::policy::apply_victim(v, cache) {
                    true => act.prefetch_evictions += 1,
                    false => act.demand_evictions_for_prefetch += 1,
                }
            }
            self.calibration
                .record_predicted_benefit(self.model.expected_saving(cand.probability, cand.depth));
            cache.insert_prefetch(
                cand.block,
                PrefetchMeta {
                    probability: cand.probability,
                    distance: cand.depth,
                    issued_at: self.period,
                    sequential: false,
                },
            );
            issued += 1;
            act.prefetched_blocks.push(cand.block);
            act.prefetches_issued += 1;
            act.prefetch_probability_sum += cand.probability;
            self.expand(&cand, &mut frontier);
        }

        self.model.observe_period(issued);
        self.period += 1;
    }

    fn expand(&mut self, cand: &Candidate, frontier: &mut BinaryHeap<FrontierEntry>) {
        if cand.depth >= self.cfg.max_depth {
            return;
        }
        let tok = self.timer.begin();
        // Table-based cutoff: bit-identical to the model's
        // `min_useful_probability` (the memo holds the very ΔT_pf values
        // that formula recomputes).
        let cutoff = self
            .memo
            .dt
            .min_useful_probability(self.model.params().t_driver, cand.probability, cand.depth + 1)
            .max(self.cfg.min_probability);
        self.batch.clear();
        self.tree.child_candidates_pruned_soa(
            cand.node,
            cand.probability,
            cand.depth,
            cutoff,
            &mut self.batch,
        );
        self.kern.net_benefit_batch(
            &self.batch.p_b,
            &self.batch.p_x,
            &self.batch.d_b,
            &self.memo.dt,
            self.model.params().t_driver,
            &mut self.net,
        );
        for i in 0..self.batch.len() {
            frontier.push(FrontierEntry { net: self.net[i], cand: self.batch.candidate(i) });
        }
        self.timer.end(Phase::CandidateSelection, tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CostBenefitEngine {
        CostBenefitEngine::new(SystemParams::patterson(), EngineConfig::default())
    }

    /// Train the tree on several laps of a cycle so predictions are strong.
    fn trained_engine(cycle: &[u64], laps: usize) -> CostBenefitEngine {
        let mut e = engine();
        for _ in 0..laps {
            for &b in cycle {
                e.record_reference(BlockId(b));
            }
        }
        e
    }

    #[test]
    fn prefetches_strongly_predicted_blocks() {
        let mut e = trained_engine(&[1, 2, 3, 4], 50);
        let mut cache = BufferCache::new(16);
        // Anchor the cursor by accessing block 1.
        e.record_reference(BlockId(1));
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        // The blocks following 1 in the cycle are near-certain; at least
        // one should be prefetched (cache has free buffers: cost 0).
        assert!(act.prefetches_issued >= 1, "no prefetches issued: {act:?}");
        let prefetched: Vec<u64> = cache.prefetch_iter().map(|(b, _)| b.0).collect();
        assert!(prefetched.contains(&2) || prefetched.contains(&3), "prefetched {prefetched:?}");
    }

    #[test]
    fn does_not_prefetch_from_an_untrained_tree() {
        let mut e = engine();
        let mut cache = BufferCache::new(16);
        // First-ever access: the parse resets to the root, whose only
        // child is the block itself — which is resident, so nothing can
        // be prefetched.
        cache.insert_demand(BlockId(1));
        e.record_reference(BlockId(1));
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        assert_eq!(act.prefetches_issued, 0);
        assert_eq!(act.candidates_already_cached, 1);
    }

    #[test]
    fn already_cached_candidates_are_counted_not_fetched() {
        let mut e = trained_engine(&[1, 2, 3, 4], 50);
        let mut cache = BufferCache::new(16);
        // Pre-insert the likely candidates as demand blocks.
        for b in [2u64, 3, 4] {
            cache.insert_demand(BlockId(b));
        }
        e.record_reference(BlockId(1));
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        assert!(act.candidates_already_cached >= 1, "{act:?}");
    }

    #[test]
    fn stops_when_cost_exceeds_benefit() {
        // A tiny cache full of *valuable* demand blocks (tight loop → huge
        // marginal hit rate) must not be raided for speculative prefetches
        // of weak candidates.
        let mut e = engine();
        let mut cache = BufferCache::new(4);
        // Loop over exactly 4 blocks: every block is hit at stack distance
        // 3, so H(4)−H(3) is large.
        for lap in 0..200 {
            for b in [10u64, 20, 30, 40] {
                if !cache.contains(BlockId(b)) {
                    if cache.is_full() {
                        cache.evict_demand_lru();
                    }
                    cache.insert_demand(BlockId(b));
                } else {
                    cache.reference(BlockId(b));
                }
                e.record_reference(BlockId(b));
                let _ = lap;
            }
        }
        // Train a weak side-branch: 10 is sometimes followed by 99.
        for _ in 0..3 {
            e.record_reference(BlockId(10));
            e.record_reference(BlockId(99));
        }
        for b in [10u64, 20, 30] {
            e.record_reference(BlockId(b));
        }
        let mut act = PeriodActivity::default();
        let demand_before = cache.demand_len();
        e.prefetch_round(BlockId(30), &mut cache, &mut act);
        // Whatever was prefetched must not have displaced the hot demand
        // blocks wholesale.
        assert!(
            cache.demand_len() + 1 >= demand_before,
            "demand cache raided: {} -> {}",
            demand_before,
            cache.demand_len()
        );
    }

    #[test]
    fn cheapest_victim_prefers_stale_prefetch() {
        let mut e = trained_engine(&[1, 2, 3], 30);
        let mut cache = BufferCache::new(2);
        cache.insert_demand(BlockId(100));
        cache.insert_prefetch(
            BlockId(50),
            PrefetchMeta { probability: 0.9, distance: 1, issued_at: 0, sequential: false },
        );
        // Engine period is far past the prefetch's expected use: the stale
        // prefetch should be the cheap victim (cost 0).
        let (victim, cost) = e.cheapest_victim(&cache);
        assert_eq!(victim, Some(Victim::Prefetch(BlockId(50))));
        assert_eq!(cost, 0.0);
        let _ = &mut e;
    }

    #[test]
    fn heap_and_scan_pick_the_same_victim_at_equal_cost() {
        // Two prefetches with identical (p, distance, issued_at) have
        // exactly equal Eq. 11 costs; the scan's strict `<` keeps the
        // first entry in MRU iteration order (the most recent insert),
        // and the heap's tie-break must reproduce that choice exactly.
        let mut e = engine();
        e.period = 2;
        let mut cache = BufferCache::new(16);
        let tied = PrefetchMeta { probability: 0.4, distance: 9, issued_at: 0, sequential: false };
        cache.insert_prefetch(BlockId(10), tied);
        cache.insert_prefetch(BlockId(20), tied); // more recent, must win the tie
        cache.insert_prefetch(
            BlockId(30),
            PrefetchMeta { probability: 0.9, distance: 4, issued_at: 0, sequential: false },
        );

        let heap = e.best_prefetch_eject(&cache);
        let scan = e.exact_prefetch_eject_scan(&cache);
        let (block, cost) = heap.expect("non-empty prefetch partition");
        assert_eq!(block, BlockId(20));
        assert_eq!(
            heap.map(|(b, c)| (b, c.to_bits())),
            scan.map(|(b, c)| (b, c.to_bits())),
            "heap and scan must agree bit for bit"
        );
        assert_eq!(cost.to_bits(), e.model.prefetch_eject_cost(0.4, 7).to_bits());

        // Advancing the period reorders costs lazily; the agreement (and
        // the tie-break) must survive the reheap.
        e.period = 6;
        let heap = e.best_prefetch_eject(&cache);
        let scan = e.exact_prefetch_eject_scan(&cache);
        assert_eq!(
            heap.map(|(b, c)| (b, c.to_bits())),
            scan.map(|(b, c)| (b, c.to_bits())),
            "heap and scan must still agree after the period advances"
        );
    }

    #[test]
    fn free_buffers_cost_nothing() {
        let e = engine();
        let cache = BufferCache::new(8);
        let (victim, cost) = e.cheapest_victim(&cache);
        assert_eq!(victim, None);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn s_estimate_moves_with_observed_prefetching() {
        let mut e = trained_engine(&[1, 2, 3, 4, 5, 6, 7, 8], 80);
        let mut cache = BufferCache::new(64);
        let s0 = e.model().s();
        for _ in 0..30 {
            for b in [1u64, 2, 3, 4, 5, 6, 7, 8] {
                e.record_reference(BlockId(b));
                let mut act = PeriodActivity::default();
                e.prefetch_round(BlockId(b), &mut cache, &mut act);
                // Consume prefetch hits so the cache keeps circulating.
                let _ = cache.reference(BlockId(b));
            }
        }
        // s must have been updated away from its prior at least once.
        assert_ne!(e.model().s(), s0);
        assert!(e.period() > 0);
    }

    #[test]
    fn freeze_flag_reaches_the_tree() {
        let cfg =
            EngineConfig { node_limit: 4, freeze_at_node_limit: true, ..EngineConfig::default() };
        let mut e = CostBenefitEngine::new(SystemParams::patterson(), cfg);
        for b in 0..50u64 {
            e.record_reference(BlockId(b));
        }
        assert_eq!(e.tree().node_count(), 4);
        assert!(e.tree().stats().nodes_capped > 0, "budget refusals must be counted");
        assert_eq!(e.tree().stats().nodes_evicted, 0, "frozen trees never evict");
    }

    #[test]
    fn respects_max_per_period() {
        let cfg = EngineConfig { max_per_period: 2, ..EngineConfig::default() };
        let mut e = CostBenefitEngine::new(SystemParams::patterson(), cfg);
        for _ in 0..60 {
            for b in [1u64, 2, 3, 4, 5, 6] {
                e.record_reference(BlockId(b));
            }
        }
        let mut cache = BufferCache::new(32);
        e.record_reference(BlockId(1));
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        assert!(act.prefetches_issued <= 2);
    }

    #[test]
    fn reanchoring_predicts_at_substring_boundaries() {
        // Dilute the root with many one-shot children, then train a
        // deterministic pair X → Y. After a reset, the root-anchored
        // engine sees only diluted candidates, while the re-anchored one
        // predicts Y from the order-1 context of X.
        let build = |reanchor: bool| {
            let cfg = EngineConfig { reanchor_after_reset: reanchor, ..EngineConfig::default() };
            let mut e = CostBenefitEngine::new(SystemParams::patterson(), cfg);
            for i in 0..200u64 {
                e.record_reference(BlockId(1000 + i)); // unique: dilutes root
            }
            // Four full (7, 8, 2000) rounds: builds root→7→8 with weight,
            // and leaves the parse deep at node "7 8 2000".
            for _ in 0..4 {
                e.record_reference(BlockId(7));
                e.record_reference(BlockId(8));
                e.record_reference(BlockId(2000));
            }
            // Access 8 (parse moves to the root's "8" child), then 7 —
            // novel under that node, so the parse resets with 7 as the
            // last access. The engine now stands at the root having just
            // seen 7, whose root child has a trained successor 8.
            e.record_reference(BlockId(8));
            let out = e.record_reference(BlockId(7));
            assert!(out.reset, "setup expects the access to end a substring");
            e
        };
        let run = |mut e: CostBenefitEngine| {
            let mut cache = BufferCache::new(64);
            let mut act = PeriodActivity::default();
            e.prefetch_round(BlockId(7), &mut cache, &mut act);
            cache.contains(BlockId(8))
        };
        assert!(
            run(build(true)),
            "re-anchored engine failed to prefetch the trained successor after a reset"
        );
        assert!(
            !run(build(false)),
            "root-anchored engine should be blind here (root children are diluted)"
        );
    }

    #[test]
    fn quarantined_blocks_are_not_reissued() {
        let mut e = trained_engine(&[1, 2, 3, 4], 50);
        // Establish that block 2 would normally be prefetched after 1.
        e.record_reference(BlockId(1));
        let mut cache = BufferCache::new(16);
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        assert!(
            cache.contains(BlockId(2)) || cache.contains(BlockId(3)),
            "setup expects a successor of 1 to be prefetched"
        );

        // Fail its prefetch until quarantined, then re-run the round.
        let victim = if cache.contains(BlockId(2)) { BlockId(2) } else { BlockId(3) };
        cache.evict_prefetch(victim);
        assert!(!e.note_prefetch_fault(victim));
        assert!(e.note_prefetch_fault(victim), "default threshold is 2");
        assert!(e.quarantine().is_quarantined(victim));

        let mut cache = BufferCache::new(16);
        let mut quarantined_skips = 0;
        for _ in 0..4 {
            // Cursor cycles the trained loop; victim stays quarantined.
            for &b in &[1u64, 2, 3, 4] {
                e.record_reference(BlockId(b));
                let mut act = PeriodActivity::default();
                e.prefetch_round(BlockId(b), &mut cache, &mut act);
                quarantined_skips += act.candidates_quarantined;
            }
        }
        assert!(!cache.contains(victim), "quarantined block was re-prefetched");
        assert!(quarantined_skips >= 1, "quarantine skip was never counted");

        // A successful read lifts the quarantine and prefetching resumes.
        e.note_read_success(victim);
        assert!(!e.quarantine().is_quarantined(victim));
        let mut cache = BufferCache::new(16);
        e.record_reference(BlockId(1));
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(1), &mut cache, &mut act);
        assert!(act.prefetches_issued >= 1);
    }

    #[test]
    fn lvc_already_cached_reports_cursor_child() {
        let mut e = trained_engine(&[1, 2, 3], 10);
        let mut cache = BufferCache::new(8);
        // Position cursor at node for "1" whose lvc is "2".
        e.record_reference(BlockId(1));
        // Without 2 cached:
        if let Some(flag) = e.lvc_already_cached(&cache) {
            assert!(!flag);
        }
        cache.insert_demand(BlockId(2));
        if let Some(flag) = e.lvc_already_cached(&cache) {
            assert!(flag);
        }
    }
}
