//! # prefetch-core
//!
//! The primary contribution of Vellanki & Chervenak, *A Cost-Benefit Scheme
//! for High Performance Predictive Prefetching* (SC 1999): a prefetching
//! scheme that selects candidate blocks from an LZ prefetch tree by their
//! probability of access and decides *whether* to prefetch each one with a
//! cost-benefit analysis adapted from Patterson's informed prefetching to
//! probabilistic hints.
//!
//! ## Layout
//!
//! * [`params`] — the system model constants (`T_hit`, `T_driver`,
//!   `T_disk`, `T_cpu`; Section 3/8.1);
//! * [`timing`] — stall/overlap model, Eq. 2-6;
//! * [`benefit`] — the buffer-allocation benefit `B(b)`, Eq. 1;
//! * [`cost`] — replacement costs `C_pr` (Eq. 11) and `C_dc` (Eq. 13);
//! * [`overhead`] — wasted-initiation overhead `T_oh`, Eq. 14;
//! * [`model`] — the assembled model with its dynamic `s`/`h` state
//!   (Figure 4);
//! * [`kernel`] — batched SoA evaluation of Eq. 1/11/14 with runtime
//!   CPU-feature dispatch (scalar reference + AVX2/AVX-512 paths,
//!   bit-identical by contract);
//! * [`engine`] — the Section 7 algorithm: benefit frontier + cheapest
//!   victim + stopping rule;
//! * [`policy`] — the eight policies evaluated in the paper;
//! * [`resilience`] — graceful degradation under injected disk faults:
//!   retry backoff pricing and a prefetch quarantine.
//!
//! ## Quick example
//!
//! ```
//! use prefetch_core::policy::{PrefetchPolicy, RefContext, RefKind, PeriodActivity, TreePolicy};
//! use prefetch_cache::BufferCache;
//! use prefetch_trace::BlockId;
//!
//! let mut policy = TreePolicy::patterson();
//! let mut cache = BufferCache::new(64);
//! // Train on a repeating pattern; the tree learns 1 → 2 → 3.
//! for _ in 0..20 {
//!     for b in [1u64, 2, 3] {
//!         let ctx = RefContext {
//!             block: BlockId(b),
//!             kind: RefKind::DemandHit,
//!             next_block: None,
//!             period: 0,
//!         };
//!         let mut act = PeriodActivity::default();
//!         policy.after_reference(&ctx, &mut cache, &mut act);
//!     }
//! }
//! // The successors of the current position are now prefetched.
//! assert!(cache.prefetch_len() + cache.demand_len() > 0);
//! ```

pub mod benefit;
pub mod calibration;
pub mod cost;
pub mod engine;
pub mod kernel;
pub mod model;
pub mod overhead;
pub mod params;
pub mod policy;
pub mod resilience;
pub mod timing;

pub use calibration::CalibrationTracker;
pub use engine::{CostBenefitEngine, EngineConfig};
pub use kernel::{DepthTable, KernelChoice, KernelImpl};
pub use model::{CostBenefitModel, ModelConfig};
pub use params::SystemParams;
pub use resilience::{Quarantine, RetryPolicy};
