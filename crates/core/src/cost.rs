//! Replacement costs: Equations 11 and 13 of the paper.
//!
//! When a prefetch (or a demand fetch) needs a buffer, the scheme prices
//! both possible victims and takes the cheaper:
//!
//! * **Prefetch-cache ejection** (Eq. 11): an ejected, not-yet-referenced
//!   block may have to be re-fetched; spread over the `d_b − x` access
//!   periods of bufferage the ejection frees,
//!   `C_pr(b) = p_b·(T_driver + T_stall(x)) / (d_b − x)` where `x` is the
//!   lead (in periods) with which the block would be re-prefetched.
//! * **Demand-cache shrinking** (Eq. 13): losing the LRU buffer costs the
//!   accesses that would have hit exactly there,
//!   `C_dc(n) = (H(n) − H(n−1))·(T_driver + T_disk)`.

use crate::params::SystemParams;
use crate::timing::t_stall;

/// `C_pr(b)` (Eq. 11): cost per unit bufferage of ejecting prefetched block
/// `b` with path probability `p_b` that is expected to be referenced
/// `d_remaining` periods from now, assuming it would be re-prefetched `x`
/// periods before its use.
///
/// A block already *overdue* (`d_remaining <= x`) was mispredicted — its
/// expected reference has passed — so ejecting it is free. The stall term
/// uses the current prefetch rate `s` (Eq. 6).
#[inline]
pub fn prefetch_eject_cost(
    p_b: f64,
    d_remaining: u32,
    x: u32,
    params: &SystemParams,
    s: f64,
) -> f64 {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&p_b));
    if d_remaining <= x {
        return 0.0;
    }
    let bufferage = (d_remaining - x) as f64;
    p_b * (params.t_driver + t_stall(x, params, s)) / bufferage
}

/// `C_dc(n)` (Eq. 13): cost per unit bufferage of shrinking an LRU demand
/// cache whose marginal hit rate at its current size is
/// `marginal_hit_rate = H(n) − H(n−1)`.
#[inline]
pub fn demand_eject_cost(marginal_hit_rate: f64, params: &SystemParams) -> f64 {
    debug_assert!((0.0..=1.0 + 1e-9).contains(&marginal_hit_rate));
    marginal_hit_rate * (params.t_driver + params.t_disk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::patterson()
    }

    #[test]
    fn demand_cost_is_linear_in_marginal_rate() {
        assert_eq!(demand_eject_cost(0.0, &p()), 0.0);
        let c = demand_eject_cost(0.01, &p());
        assert!((c - 0.01 * 15.580).abs() < 1e-12);
        assert!((demand_eject_cost(0.02, &p()) - 2.0 * c).abs() < 1e-12);
    }

    #[test]
    fn prefetch_cost_matches_equation_11() {
        // With Patterson constants T_stall(1) = 0, so
        // C_pr = p·T_driver/(d−x).
        let c = prefetch_eject_cost(0.5, 5, 1, &p(), 0.0);
        assert!((c - 0.5 * 0.580 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_cost_includes_stall_when_cpu_is_fast() {
        let fast = SystemParams { t_cpu: 2.0, ..p() };
        // T_stall(1) = 15 − (0.243+2.0) = 12.757 with s=0.
        let c = prefetch_eject_cost(1.0, 2, 1, &fast, 0.0);
        assert!((c - (0.580 + 12.757) / 1.0).abs() < 1e-12);
    }

    #[test]
    fn overdue_blocks_are_free_to_eject() {
        assert_eq!(prefetch_eject_cost(0.9, 1, 1, &p(), 0.0), 0.0);
        assert_eq!(prefetch_eject_cost(0.9, 0, 1, &p(), 0.0), 0.0);
    }

    #[test]
    fn sooner_needed_blocks_cost_more() {
        let near = prefetch_eject_cost(0.5, 2, 1, &p(), 0.0);
        let far = prefetch_eject_cost(0.5, 10, 1, &p(), 0.0);
        assert!(near > far, "{near} vs {far}");
    }

    #[test]
    fn higher_probability_costs_more_to_eject() {
        let lo = prefetch_eject_cost(0.1, 4, 1, &p(), 0.0);
        let hi = prefetch_eject_cost(0.9, 4, 1, &p(), 0.0);
        assert!(hi > lo);
    }
}
