//! Prefetching overhead: Equation 14 of the paper.
//!
//! Probabilistic hints mean some prefetched blocks are never referenced;
//! issuing those requests still costs `T_driver` of CPU time. For a
//! candidate `b` one access deeper than `x`, the conditional probability
//! that `x` is reached but `b` is not is `1 − p_b/p_x`, so the expected
//! wasted initiation time is
//!
//! ```text
//! T_oh = (1 − p_b/p_x) · T_driver
//! ```
//!
//! This term is what keeps the scheme from prefetching unboundedly once
//! stall time has been fully hidden — it is subtracted from the benefit
//! before the cost comparison (Section 7, step 3).

use crate::params::SystemParams;

/// `T_oh` (Eq. 14): expected wasted initiation overhead for prefetching
/// block `b` (path probability `p_b`) whose path parent has probability
/// `p_x`.
#[inline]
pub fn t_oh(p_b: f64, p_x: f64, params: &SystemParams) -> f64 {
    debug_assert!(p_x > 0.0, "parent probability must be positive");
    debug_assert!(p_b <= p_x + 1e-9, "child path cannot exceed parent path");
    (1.0 - p_b / p_x).max(0.0) * params.t_driver
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::patterson()
    }

    #[test]
    fn certain_followers_have_no_overhead() {
        assert_eq!(t_oh(0.7, 0.7, &p()), 0.0);
    }

    #[test]
    fn half_likely_follower_costs_half_a_driver() {
        let oh = t_oh(0.35, 0.7, &p());
        assert!((oh - 0.5 * 0.580).abs() < 1e-12);
    }

    #[test]
    fn overhead_bounded_by_t_driver() {
        for (pb, px) in [(0.001, 1.0), (0.5, 0.9), (0.1, 0.1)] {
            let oh = t_oh(pb, px, &p());
            assert!((0.0..=0.580 + 1e-12).contains(&oh));
        }
    }

    #[test]
    fn less_likely_children_cost_more() {
        assert!(t_oh(0.1, 1.0, &p()) > t_oh(0.9, 1.0, &p()));
    }
}
