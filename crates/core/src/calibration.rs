//! Estimator calibration tracking: predicted vs realized stall economics.
//!
//! The cost-benefit scheme stands or falls on its runtime estimators —
//! Eq. 1–6 benefit and Eq. 11 ejection cost are only as good as the
//! probability and latency estimates feeding them. The
//! [`CalibrationTracker`] accumulates, per tenant:
//!
//! * **Benefit side** — at issue time the engine records the expected
//!   stall saving of each prefetch, `p_b · ΔT_pf(d_b)` (Eq. 2 weighted
//!   by the path probability that feeds Eq. 1); when a prefetched block
//!   is later referenced (a prefetch hit), the *realized* saving is the
//!   full demand stall it avoided minus the residual stall actually
//!   charged, `T_disk − stall`. The two sides are commensurable totals:
//!   an honest estimator's expected savings sum to the realized savings,
//!   issues that never hit realize nothing, and systematic
//!   over-prediction (inflated probabilities or an `s` estimate that
//!   hides stalls which actually occur) shows up directly.
//! * **Ejection side** — when a prefetched block is ejected, the engine
//!   records its Eq. 11 predicted re-fetch cost and starts tracking the
//!   block; the next reference to that block realizes the actual cost
//!   (the miss stall, or zero if it returns as a hit).
//!
//! Each side exposes a normalized calibration error in `[0, 1]`:
//! `|predicted − realized| / max(predicted, realized)` — 0 for a
//! perfectly calibrated estimator, → 1 as prediction and reality diverge
//! in either direction. All accumulation is pure `f64` arithmetic over
//! the tenant's own event order, so the tracker obeys the same
//! any-thread-count bit-identity contract as the advice stream.

/// Running predicted-vs-realized accumulators for one engine (one tenant).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CalibrationTracker {
    predicted_benefit_ms: f64,
    realized_benefit_ms: f64,
    benefit_predictions: u64,
    benefit_realizations: u64,
    predicted_eject_ms: f64,
    realized_eject_ms: f64,
    eject_predictions: u64,
    eject_realizations: u64,
    eject_untracked: u64,
}

/// `|predicted − realized| / max(predicted, realized)`, 0 when both are
/// (near) zero.
fn normalized_error(predicted: f64, realized: f64) -> f64 {
    let denom = predicted.max(realized);
    if denom <= f64::EPSILON {
        0.0
    } else {
        (predicted - realized).abs() / denom
    }
}

impl CalibrationTracker {
    /// A fresh tracker with all accumulators at zero.
    pub fn new() -> Self {
        CalibrationTracker::default()
    }

    /// A prefetch was issued with expected stall saving `benefit_ms`
    /// (`p_b · ΔT_pf(d_b)`, Eq. 2 weighted by path probability).
    pub fn record_predicted_benefit(&mut self, benefit_ms: f64) {
        self.predicted_benefit_ms += benefit_ms.max(0.0);
        self.benefit_predictions += 1;
    }

    /// A prefetched block was referenced, realizing `saved_ms` of avoided
    /// stall (`T_disk` minus the residual stall charged).
    pub fn record_realized_benefit(&mut self, saved_ms: f64) {
        self.realized_benefit_ms += saved_ms.max(0.0);
        self.benefit_realizations += 1;
    }

    /// A prefetched block was ejected with Eq. 11 predicted re-fetch cost
    /// `cost_ms`. `tracked` is false when the engine's ejection map was
    /// full and the realized side of this sample cannot be observed.
    pub fn record_predicted_eject(&mut self, cost_ms: f64, tracked: bool) {
        self.predicted_eject_ms += cost_ms.max(0.0);
        self.eject_predictions += 1;
        if !tracked {
            self.eject_untracked += 1;
        }
    }

    /// A tracked ejected block was referenced again, realizing `stall_ms`
    /// of actual re-fetch cost (zero when it came back as a hit).
    pub fn record_realized_eject(&mut self, stall_ms: f64) {
        self.realized_eject_ms += stall_ms.max(0.0);
        self.eject_realizations += 1;
    }

    /// Sum of Eq. 1 predicted stall savings (ms) over issued prefetches.
    pub fn predicted_benefit_ms(&self) -> f64 {
        self.predicted_benefit_ms
    }

    /// Sum of realized stall savings (ms) over prefetch hits.
    pub fn realized_benefit_ms(&self) -> f64 {
        self.realized_benefit_ms
    }

    /// Sum of Eq. 11 predicted ejection costs (ms).
    pub fn predicted_eject_ms(&self) -> f64 {
        self.predicted_eject_ms
    }

    /// Sum of realized re-fetch costs (ms) for tracked ejections.
    pub fn realized_eject_ms(&self) -> f64 {
        self.realized_eject_ms
    }

    /// Prefetches issued (benefit predictions recorded).
    pub fn benefit_predictions(&self) -> u64 {
        self.benefit_predictions
    }

    /// Prefetch hits (benefit realizations recorded).
    pub fn benefit_realizations(&self) -> u64 {
        self.benefit_realizations
    }

    /// Prefetch ejections (cost predictions recorded).
    pub fn eject_predictions(&self) -> u64 {
        self.eject_predictions
    }

    /// Re-references of tracked ejected blocks.
    pub fn eject_realizations(&self) -> u64 {
        self.eject_realizations
    }

    /// Ejections whose realized cost could not be tracked (map full).
    pub fn eject_untracked(&self) -> u64 {
        self.eject_untracked
    }

    /// Normalized benefit calibration error in `[0, 1]` (0 = perfectly
    /// calibrated, including the no-traffic case).
    pub fn benefit_error(&self) -> f64 {
        normalized_error(self.predicted_benefit_ms, self.realized_benefit_ms)
    }

    /// Normalized ejection-cost calibration error in `[0, 1]`.
    pub fn eject_error(&self) -> f64 {
        normalized_error(self.predicted_eject_ms, self.realized_eject_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_zero_error() {
        let mut c = CalibrationTracker::new();
        c.record_predicted_benefit(10.0);
        c.record_realized_benefit(10.0);
        assert_eq!(c.benefit_error(), 0.0);
        assert_eq!(c.eject_error(), 0.0, "no eject traffic is calibrated by definition");
    }

    #[test]
    fn error_is_normalized_and_symmetric() {
        let mut over = CalibrationTracker::new();
        over.record_predicted_benefit(20.0);
        over.record_realized_benefit(10.0);
        let mut under = CalibrationTracker::new();
        under.record_predicted_benefit(10.0);
        under.record_realized_benefit(20.0);
        assert_eq!(over.benefit_error(), 0.5);
        assert_eq!(under.benefit_error(), 0.5);
        assert!(over.benefit_error() <= 1.0);
    }

    #[test]
    fn eject_side_tracks_untracked_samples() {
        let mut c = CalibrationTracker::new();
        c.record_predicted_eject(3.0, true);
        c.record_predicted_eject(4.0, false);
        c.record_realized_eject(2.0);
        assert_eq!(c.eject_predictions(), 2);
        assert_eq!(c.eject_untracked(), 1);
        assert_eq!(c.predicted_eject_ms(), 7.0);
        assert_eq!(c.realized_eject_ms(), 2.0);
        assert!((c.eject_error() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn negative_samples_are_clamped() {
        let mut c = CalibrationTracker::new();
        c.record_realized_benefit(-1.0);
        assert_eq!(c.realized_benefit_ms(), 0.0);
        assert_eq!(c.benefit_realizations(), 1);
    }
}
