//! The batch-kernel determinism contract (PR 10 acceptance):
//!
//! * every dispatch path the running CPU offers is **bit-identical** to
//!   the retained scalar reference, across batch sizes 0..=257
//!   (exhaustive) and random inputs (proptest);
//! * the engine produces identical prefetch decisions under every path;
//! * the `s`-derived memo (ΔT_pf table + frontier-seed cutoff) rebuilds
//!   exactly when `s` changes, and its cutoff always equals the model's
//!   fresh `min_useful_probability(1.0, 1)`.

use prefetch_cache::BufferCache;
use prefetch_core::kernel::{self, DepthTable, KernelImpl};
use prefetch_core::policy::PeriodActivity;
use prefetch_core::{CostBenefitEngine, CostBenefitModel, EngineConfig, ModelConfig, SystemParams};
use prefetch_trace::BlockId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const MAX_DEPTH: u32 = 8;

/// Deterministic candidate-shaped SoA data: `p_x ∈ (0, 1]`,
/// `p_b = p_x·frac ≤ p_x`, `d_b ∈ 1..=MAX_DEPTH`.
fn batch_inputs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<u32>, Vec<u32>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut p_b = Vec::with_capacity(n);
    let mut p_x = Vec::with_capacity(n);
    let mut d_b = Vec::with_capacity(n);
    let mut d_rem = Vec::with_capacity(n);
    for _ in 0..n {
        let px: f64 = rng.gen_range(1e-6..1.0);
        let frac: f64 = rng.gen_range(1e-6..1.0);
        p_b.push(px * frac);
        p_x.push(px);
        d_b.push(rng.gen_range(1..=MAX_DEPTH));
        d_rem.push(rng.gen_range(0..24u32));
    }
    (p_b, p_x, d_b, d_rem)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Acceptance: every dispatch path × every batch size 0..=257,
/// bit-identical to the scalar reference for all three kernels.
#[test]
fn every_path_bit_identical_for_batch_sizes_0_to_257() {
    let params = SystemParams::patterson();
    let paths = kernel::all_available();
    assert!(!paths.is_empty());
    for (si, s) in [0.0, 0.92, 4.7].into_iter().enumerate() {
        let mut dt = DepthTable::default();
        dt.rebuild(&params, s, MAX_DEPTH);
        for n in 0..=257usize {
            let (p_b, p_x, d_b, d_rem) = batch_inputs(n, (si as u64) << 32 | n as u64);
            let mut want_net = Vec::new();
            let mut want_ben = Vec::new();
            let mut want_ej = Vec::new();
            kernel::SCALAR.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut want_net);
            kernel::SCALAR.benefit_batch(&p_b, &p_x, &d_b, &dt, &mut want_ben);
            kernel::SCALAR.eject_cost_batch(&p_b, &d_rem, 1, 0.58 + s, &mut want_ej);
            let mut got = Vec::new();
            for k in &paths {
                k.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut got);
                assert_eq!(bits(&got), bits(&want_net), "net: path {} n {n} s {s}", k.name);
                k.benefit_batch(&p_b, &p_x, &d_b, &dt, &mut got);
                assert_eq!(bits(&got), bits(&want_ben), "benefit: path {} n {n} s {s}", k.name);
                k.eject_cost_batch(&p_b, &d_rem, 1, 0.58 + s, &mut got);
                assert_eq!(bits(&got), bits(&want_ej), "eject: path {} n {n} s {s}", k.name);
            }
        }
    }
}

/// The batched net kernel is bit-identical to the *pre-batching* per-call
/// arithmetic: `CostBenefitModel::net_benefit` one candidate at a time.
#[test]
fn batch_net_matches_per_call_model_arithmetic() {
    let mut model = CostBenefitModel::patterson();
    for round in 0..40u32 {
        model.observe_period(round % 5);
        let mut dt = DepthTable::default();
        dt.rebuild(model.params(), model.s(), MAX_DEPTH);
        let (p_b, p_x, d_b, _) = batch_inputs(97, round as u64);
        for k in kernel::all_available() {
            let mut out = Vec::new();
            k.net_benefit_batch(&p_b, &p_x, &d_b, &dt, model.params().t_driver, &mut out);
            for i in 0..out.len() {
                assert_eq!(
                    out[i].to_bits(),
                    model.net_benefit(p_b[i], d_b[i], p_x[i]).to_bits(),
                    "path {} lane {i} round {round}",
                    k.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random batches, random `s`, random `T_cpu`: every path agrees
    /// with the scalar reference bit-for-bit.
    #[test]
    fn random_batches_bit_identical_across_paths(
        seed in 0u64..1 << 48,
        n in 0usize..300,
        s in 0.0f64..16.0,
        t_cpu in 1.0f64..640.0,
    ) {
        let params = SystemParams::with_t_cpu(t_cpu);
        let mut dt = DepthTable::default();
        dt.rebuild(&params, s, MAX_DEPTH);
        let (p_b, p_x, d_b, d_rem) = batch_inputs(n, seed);
        let scale = params.t_driver + s;
        let mut want_net = Vec::new();
        let mut want_ej = Vec::new();
        kernel::SCALAR.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut want_net);
        kernel::SCALAR.eject_cost_batch(&p_b, &d_rem, 2, scale, &mut want_ej);
        for k in kernel::all_available() {
            let mut got = Vec::new();
            k.net_benefit_batch(&p_b, &p_x, &d_b, &dt, params.t_driver, &mut got);
            prop_assert_eq!(bits(&got), bits(&want_net));
            k.eject_cost_batch(&p_b, &d_rem, 2, scale, &mut got);
            prop_assert_eq!(bits(&got), bits(&want_ej));
        }
    }
}

/// Drive one engine per available kernel path through the same reference
/// stream and assert identical prefetch decisions, cache contents, and
/// model state at every period.
#[test]
fn engine_rounds_identical_under_every_kernel_path() {
    let paths = kernel::all_available();
    let trace: Vec<u64> = {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        (0..4000).map(|_| rng.gen_range(0..40u64)).collect()
    };
    let mut engines: Vec<(&'static KernelImpl, CostBenefitEngine, BufferCache)> = paths
        .iter()
        .map(|k| {
            let mut e = CostBenefitEngine::new(SystemParams::patterson(), EngineConfig::default());
            e.set_kernel(k);
            assert_eq!(e.kernel_name(), k.name);
            (*k, e, BufferCache::new(64))
        })
        .collect();
    for &b in &trace {
        let mut outcomes: Vec<(String, u64, Vec<u64>)> = Vec::new();
        for (k, e, cache) in engines.iter_mut() {
            e.record_reference(BlockId(b));
            let mut act = PeriodActivity::default();
            e.prefetch_round(BlockId(b), cache, &mut act);
            if cache.contains(BlockId(b)) {
                cache.reference(BlockId(b));
            }
            let mut resident: Vec<u64> = cache.prefetch_iter().map(|(blk, _)| blk.0).collect();
            resident.sort_unstable();
            let _ = k;
            outcomes.push((format!("{act:?}"), e.model().s().to_bits(), resident));
        }
        for o in &outcomes[1..] {
            assert_eq!(o.0, outcomes[0].0, "period activity diverged across kernel paths");
            assert_eq!(o.1, outcomes[0].1, "s diverged across kernel paths");
            assert_eq!(o.2, outcomes[0].2, "prefetch cache diverged across kernel paths");
        }
    }
}

/// Satellite regression: the memoized seed cutoff (and the ΔT_pf table it
/// rides with) rebuilds exactly when `s`'s bits change — never otherwise —
/// and always equals the model's freshly computed cutoff.
///
/// The memo is refreshed at the top of each `prefetch_round` against the
/// `s` *entering* the round (the trailing `observe_period` lands in the
/// next round's refresh). So round `k` rebuilds iff
/// `s_entering(k) != s_entering(k−1)`.
#[test]
fn seed_cutoff_rebuilds_only_when_s_changes() {
    // s_alpha = 1.0 pins s to the previous period's prefetch count, so
    // idle periods hold s at exactly 0.0 and the memo must go quiet.
    let cfg = EngineConfig {
        model: ModelConfig { s_alpha: 1.0, s_initial: 0.0, ..ModelConfig::default() },
        ..EngineConfig::default()
    };
    let mut e = CostBenefitEngine::new(SystemParams::patterson(), cfg);
    // Train a strong cycle so later rounds actually issue prefetches
    // (s jumps to the issue count, forcing rebuilds).
    for _ in 0..40 {
        for b in [1u64, 2, 3, 4] {
            e.record_reference(BlockId(b));
        }
    }
    let mut cache = BufferCache::new(16);
    assert_eq!(e.depth_table_rebuilds(), 1, "construction builds the memo once");
    // s the memo currently reflects: training alone never touches s.
    let mut s_memoized = e.model().s().to_bits();
    let mut rebuilds_before = e.depth_table_rebuilds();
    let mut quiet_rounds = 0;
    let mut rebuild_rounds = 0;
    // Phase 1: cold references (unique blocks, no predictions) keep s at
    // 0.0; phase 2: the trained cycle makes prefetches flow and s move;
    // phase 3: cold again, s decays back toward a fixed point.
    let stream: Vec<u64> =
        (1000..1020u64).chain([1, 2, 3, 4].repeat(10)).chain(2000..2010u64).collect();
    for &b in &stream {
        e.record_reference(BlockId(b));
        let s_entering = e.model().s().to_bits();
        // What the memoized cutoff must be after this round's refresh:
        // the model's formula evaluated at the s entering the round.
        let want_cutoff = e.model().min_useful_probability(1.0, 1).to_bits();
        let mut act = PeriodActivity::default();
        e.prefetch_round(BlockId(b), &mut cache, &mut act);
        if cache.contains(BlockId(b)) {
            cache.reference(BlockId(b));
        }
        let delta = e.depth_table_rebuilds() - rebuilds_before;
        let expected = u64::from(s_entering != s_memoized);
        assert_eq!(delta, expected, "memo rebuilt on an unchanged s (or missed a change)");
        match delta {
            0 => quiet_rounds += 1,
            _ => rebuild_rounds += 1,
        }
        // Whatever happened, the memoized cutoff must equal the model's
        // fresh computation for the s the memo was built against.
        assert_eq!(
            e.seed_cutoff().to_bits(),
            want_cutoff,
            "memoized cutoff diverged from the model's formula"
        );
        s_memoized = s_entering;
        rebuilds_before = e.depth_table_rebuilds();
    }
    assert!(quiet_rounds > 0, "expected rounds where s held and the memo went untouched");
    assert!(rebuild_rounds > 0, "expected rounds where s moved and the memo rebuilt");
}
