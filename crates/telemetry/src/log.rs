//! Structured logging facade.
//!
//! Every event is a [`Record`]: a level, an event name, and ordered
//! `key=value` fields. Records render two ways:
//!
//! * **human** (`render_human`) — `LEVEL event key=value ...`, written to
//!   stderr for events at or above the stderr threshold (default
//!   [`Level::Info`]);
//! * **JSONL** (`render_json`) — one JSON object per line with a stable
//!   field order (`ts_ms`, `level`, `event`, then fields in insertion
//!   order), written to the file configured by [`set_json_path`]
//!   regardless of level.
//!
//! The JSON encoder is hand-rolled (the vendored serde derives are inert
//! no-ops, by design), and `render_json` is public so golden-file tests
//! can pin the schema without going through a sink.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Log severity, in ascending order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    /// Stable lowercase name used in both renderings.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A field value. Numbers render unquoted in JSON; non-finite floats
/// render as `null`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

/// One structured log record: level + event name + ordered fields.
#[derive(Clone, Debug)]
pub struct Record {
    level: Level,
    event: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Start a record for `event` at `level`.
    pub fn new(level: Level, event: &'static str) -> Self {
        Record { level, event, fields: Vec::new() }
    }

    /// The record's level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// The record's event name.
    pub fn event(&self) -> &'static str {
        self.event
    }

    /// Append a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, Value::Str(value.into())));
        self
    }

    /// Append an unsigned integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, Value::U64(value)));
        self
    }

    /// Append a signed integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, Value::I64(value)));
        self
    }

    /// Append a float field (non-finite values render as JSON `null`).
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, Value::F64(value)));
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, Value::Bool(value)));
        self
    }

    /// Render as a single JSON object (no trailing newline). Field order
    /// is stable: `ts_ms` (when given), `level`, `event`, then fields in
    /// insertion order — golden tests pin this.
    pub fn render_json(&self, ts_ms: Option<u64>) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        if let Some(ts) = ts_ms {
            out.push_str("\"ts_ms\":");
            out.push_str(&ts.to_string());
            out.push(',');
        }
        out.push_str("\"level\":\"");
        out.push_str(self.level.name());
        out.push_str("\",\"event\":\"");
        out.push_str(self.event);
        out.push('"');
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            match value {
                Value::Str(s) => push_json_str(&mut out, s),
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => {
                    if v.is_finite() {
                        out.push_str(&format!("{v}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Render for a human: `LEVEL event key=value ...`.
    pub fn render_human(&self) -> String {
        let mut out = format!("{:5} {}", self.level.name(), self.event);
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            match value {
                Value::Str(s) => {
                    if s.chars().any(|c| c.is_whitespace() || c == '"') {
                        out.push('"');
                        out.push_str(&s.replace('"', "\\\""));
                        out.push('"');
                    } else {
                        out.push_str(s);
                    }
                }
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => out.push_str(&format!("{v}")),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out
    }

    /// Send the record to the configured sinks: stderr when at or above
    /// the stderr threshold, and the JSONL file (if configured) always.
    pub fn emit(self) {
        sinks().lock().unwrap().emit(&self);
    }
}

/// Convenience constructors for the four levels.
pub fn debug(event: &'static str) -> Record {
    Record::new(Level::Debug, event)
}
pub fn info(event: &'static str) -> Record {
    Record::new(Level::Info, event)
}
pub fn warn(event: &'static str) -> Record {
    Record::new(Level::Warn, event)
}
pub fn error(event: &'static str) -> Record {
    Record::new(Level::Error, event)
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Sinks {
    stderr_level: Level,
    json: Option<BufWriter<File>>,
}

impl Sinks {
    fn emit(&mut self, record: &Record) {
        if record.level >= self.stderr_level {
            eprintln!("{}", record.render_human());
        }
        if let Some(w) = self.json.as_mut() {
            let line = record.render_json(Some(since_start_ms()));
            // A failed log write must never take down the run; drop the
            // sink so we don't retry on every record.
            if writeln!(w, "{line}").is_err() {
                self.json = None;
            }
        }
    }
}

fn sinks() -> &'static Mutex<Sinks> {
    static SINKS: OnceLock<Mutex<Sinks>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Sinks { stderr_level: Level::Info, json: None }))
}

fn since_start_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Set the minimum level echoed to stderr (default [`Level::Info`]).
pub fn set_stderr_level(level: Level) {
    sinks().lock().unwrap().stderr_level = level;
}

/// Open `path` as the JSONL sink; every record (any level) is appended
/// as one JSON object per line. Returns the I/O error if the file can't
/// be created.
pub fn set_json_path(path: &std::path::Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    sinks().lock().unwrap().json = Some(BufWriter::new(file));
    Ok(())
}

/// Flush the JSONL sink (call before process exit).
pub fn flush() {
    if let Some(w) = sinks().lock().unwrap().json.as_mut() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_order_is_stable() {
        let r = info("cell_ok")
            .str("fp", "00000000deadbeef")
            .u64("attempts", 1)
            .bool("restored", false);
        assert_eq!(
            r.render_json(None),
            "{\"level\":\"info\",\"event\":\"cell_ok\",\"fp\":\"00000000deadbeef\",\
             \"attempts\":1,\"restored\":false}"
        );
        assert!(r.render_json(Some(42)).starts_with("{\"ts_ms\":42,\"level\":\"info\""));
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        let r = error("cell_failed").str("error", "panic: \"boom\"\n\tat line\u{1}");
        let json = r.render_json(None);
        assert!(json.contains("\\\"boom\\\""));
        assert!(json.contains("\\n\\tat line\\u0001"));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let r = info("x").f64("a", f64::NAN).f64("b", f64::INFINITY).f64("c", 1.5);
        let json = r.render_json(None);
        assert!(json.contains("\"a\":null"));
        assert!(json.contains("\"b\":null"));
        assert!(json.contains("\"c\":1.5"));
    }

    #[test]
    fn human_rendering_quotes_strings_with_spaces() {
        let r = warn("cell_timeout").str("trace", "cello 1992").u64("limit_ms", 500);
        let human = r.render_human();
        assert!(human.starts_with("warn  cell_timeout"));
        assert!(human.contains("trace=\"cello 1992\""));
        assert!(human.contains("limit_ms=500"));
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn jsonl_sink_captures_all_levels() {
        let dir = std::env::temp_dir().join(format!("telemetry-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        set_json_path(&path).unwrap();
        debug("below_stderr_threshold").u64("n", 1).emit();
        info("visible").str("k", "v").emit();
        flush();
        // Detach the sink so later tests in other files are unaffected.
        sinks().lock().unwrap().json = None;
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"below_stderr_threshold\""));
        assert!(lines[1].contains("\"event\":\"visible\""));
        assert!(lines[0].starts_with("{\"ts_ms\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
