//! Lock-sharded live metrics registry.
//!
//! Keys are `(tenant, metric)`; values are counters, gauges (integer and
//! float), and the existing mergeable log-scaled [`Histogram`]s. The
//! registry is sharded so `prefetch-pool` workers flushing different
//! tenants almost never contend on the hot path, and — critically for the
//! service's any-`--threads` bit-identity contract — the shard is chosen
//! by a deterministic hash of the **tenant key**, not the worker id.
//! Every `(tenant, metric)` cell therefore lives in exactly one shard and
//! is updated in the tenant's own event order regardless of how many
//! workers exist, so float accumulation order (the one non-commutative
//! operation in play) is identical at any thread count and snapshots are
//! byte-identical.
//!
//! Reads merge all shards into one sorted view ([`MetricsRegistry::
//! snapshot`]); the snapshot renders to a JSONL schema
//! ([`Snapshot::render_jsonl`], `pfmetrics/v1`) and a Prometheus-style
//! text exposition ([`Snapshot::render_prometheus`]). Both renderings are
//! byte-stable: entries sort by `(metric, tenant)` and floats print via
//! Rust's shortest-round-trip formatter.

use crate::histogram::Histogram;
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Mutex;

/// Schema tag stamped on every JSONL metrics line.
pub const METRICS_SCHEMA: &str = "pfmetrics/v1";

/// Default shard count (power of two; ~1/64 collision odds between any
/// two concurrently-flushed tenants).
pub const DEFAULT_SHARDS: usize = 64;

/// One metric cell.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count (merge: sum).
    Counter(u64),
    /// Last-written integer level (merge: max — the only cross-shard
    /// combination that is order-independent for a level).
    Gauge(u64),
    /// Last-written float level (merge: keep larger; set is last-write).
    FGauge(f64),
    /// Log-scaled sample distribution (merge: element-wise sum).
    Histogram(Histogram),
}

impl MetricValue {
    /// JSONL/Prometheus type tag.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::FGauge(_) => "fgauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Fold `other` into `self`. Shards never share a `(tenant, metric)`
    /// cell, so this only runs if a caller merges snapshots from separate
    /// registries; the fold is commutative so any merge order agrees.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
            (MetricValue::FGauge(a), MetricValue::FGauge(b)) => *a = a.max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (slot, other) => *slot = other.clone(),
        }
    }
}

/// The metrics of one tenant: metric name → cell. Names are `&'static
/// str` by design — the metric taxonomy is fixed at compile time, only
/// tenants are dynamic. The set is a small `Vec` kept sorted by name:
/// with ~a dozen fixed metrics, a linear scan with a pointer-equality
/// fast path (call sites pass the same literal every time) beats a
/// `BTreeMap`'s string comparisons on every hot-path update.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    values: Vec<(&'static str, MetricValue)>,
}

impl MetricSet {
    /// The cell for `name`, inserted at its sorted position via
    /// `default` on first touch.
    fn cell(
        &mut self,
        name: &'static str,
        default: impl FnOnce() -> MetricValue,
    ) -> &mut MetricValue {
        let pos = self
            .values
            .iter()
            .position(|(n, _)| std::ptr::eq(*n as *const str, name as *const str) || *n == name);
        match pos {
            Some(i) => &mut self.values[i].1,
            None => {
                let i = self.values.partition_point(|(n, _)| *n < name);
                self.values.insert(i, (name, default()));
                &mut self.values[i].1
            }
        }
    }

    /// Add `n` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &'static str, n: u64) {
        match self.cell(name, || MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += n,
            other => *other = MetricValue::Counter(n),
        }
    }

    /// Set gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: u64) {
        *self.cell(name, || MetricValue::Gauge(0)) = MetricValue::Gauge(v);
    }

    /// Raise gauge `name` to at least `v` (high-water mark).
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        match self.cell(name, || MetricValue::Gauge(0)) {
            MetricValue::Gauge(g) => *g = (*g).max(v),
            other => *other = MetricValue::Gauge(v),
        }
    }

    /// Set float gauge `name` to `v`.
    pub fn fgauge_set(&mut self, name: &'static str, v: f64) {
        *self.cell(name, || MetricValue::FGauge(0.0)) = MetricValue::FGauge(v);
    }

    /// Record `sample` into histogram `name` (creating it empty).
    pub fn record(&mut self, name: &'static str, sample: u64) {
        match self.cell(name, || MetricValue::Histogram(Histogram::new())) {
            MetricValue::Histogram(h) => h.record(sample),
            other => {
                let mut h = Histogram::new();
                h.record(sample);
                *other = MetricValue::Histogram(h);
            }
        }
    }

    /// Record every sample in `samples` into histogram `name` with a
    /// single cell lookup (the per-sample loop a batch flush would
    /// otherwise pay walks the metric map once per sample).
    pub fn record_many(&mut self, name: &'static str, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        match self.cell(name, || MetricValue::Histogram(Histogram::new())) {
            MetricValue::Histogram(h) => {
                for s in samples {
                    h.record(*s);
                }
            }
            other => {
                let mut h = Histogram::new();
                for s in samples {
                    h.record(*s);
                }
                *other = MetricValue::Histogram(h);
            }
        }
    }

    /// Fold a pre-accumulated histogram into histogram `name`: callers
    /// that batch samples outside the registry (e.g. a per-tenant
    /// accumulator drained at snapshot boundaries) publish the whole
    /// distribution in one bucket-wise merge.
    pub fn merge_hist(&mut self, name: &'static str, hist: &Histogram) {
        if hist.is_empty() {
            return;
        }
        match self.cell(name, || MetricValue::Histogram(Histogram::new())) {
            MetricValue::Histogram(h) => h.merge(hist),
            other => *other = MetricValue::Histogram(hist.clone()),
        }
    }

    /// Iterate cells in metric-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (*k, v))
    }

    /// Whether no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Deterministic tenant-key hash (FNV-1a; the std `HashMap` hasher is
/// per-process randomized, which would be fine for shard *placement* but
/// FNV keeps placement reproducible for tests and debugging too).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a [`std::hash::Hasher`] for the in-shard tenant maps: SipHash is
/// overkill for short protocol-validated tenant names and shows up on
/// the per-batch flush path (two lookups per update). Std-only, keeping
/// the crate dependency-free.
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

#[derive(Clone, Default)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

type ShardMap = HashMap<String, MetricSet, FnvBuild>;

/// A lock-sharded `(tenant, metric)` → [`MetricValue`] registry.
///
/// The hot path ([`MetricsRegistry::update`]) takes exactly one shard
/// lock, chosen by tenant hash; see the module docs for why that (and not
/// per-worker sharding) preserves bit-identical snapshots at any thread
/// count.
pub struct MetricsRegistry {
    shards: Vec<Mutex<ShardMap>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("shards", &self.shards.len()).finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(DEFAULT_SHARDS)
    }
}

impl MetricsRegistry {
    /// A registry with `shards` lock shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        MetricsRegistry { shards: (0..shards).map(|_| Mutex::new(ShardMap::default())).collect() }
    }

    fn shard_for(&self, tenant: &str) -> &Mutex<ShardMap> {
        &self.shards[(fnv1a(tenant) % self.shards.len() as u64) as usize]
    }

    /// Apply `f` to `tenant`'s [`MetricSet`] under its shard lock. This is
    /// the hot-path entry point: batch all of a tenant's updates for one
    /// flush into a single closure so the lock is taken once per batch.
    /// The steady state (tenant already present) allocates nothing; only
    /// a tenant's first update pays for the owned key.
    pub fn update(&self, tenant: &str, f: impl FnOnce(&mut MetricSet)) {
        let mut shard = self.shard_for(tenant).lock().unwrap_or_else(|e| e.into_inner());
        if !shard.contains_key(tenant) {
            shard.insert(tenant.to_string(), MetricSet::default());
        }
        f(shard.get_mut(tenant).expect("inserted above"));
    }

    /// Merge every shard into one deterministic point-in-time view,
    /// sorted by `(metric, tenant)`. Collects into a `Vec` and sorts once
    /// — far cheaper than a `BTreeMap` at snapshot cadence — and merges
    /// adjacent duplicates, which can only arise if a caller somehow fed
    /// one tenant into two shards (never within one registry).
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<((&'static str, String), MetricValue)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (tenant, set) in shard.iter() {
                entries.extend(
                    set.iter().map(|(name, value)| ((name, tenant.clone()), value.clone())),
                );
            }
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|dup, keep| {
            let same = dup.0 == keep.0;
            if same {
                keep.1.merge(&dup.1);
            }
            same
        });
        Snapshot { entries }
    }
}

/// A merged, sorted point-in-time view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Sorted by `(metric, tenant)`, no duplicate keys.
    entries: Vec<((&'static str, String), MetricValue)>,
}

/// Escape a tenant name for embedding in JSON/Prometheus label strings,
/// appending to `out`. Tenant names are protocol-validated to a
/// conservative charset, but the renderer should not rely on that; the
/// common clean case is a single `push_str` with no allocation.
fn escape_into(out: &mut String, s: &str) {
    if !s.chars().any(|c| matches!(c, '"' | '\\') || (c as u32) < 0x20) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning an owned `String`.
#[cfg(test)]
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

impl Snapshot {
    /// Number of `(metric, tenant)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(metric, tenant, value)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &str, &MetricValue)> {
        self.entries.iter().map(|((m, t), v)| (*m, t.as_str(), v))
    }

    /// Render the `pfmetrics/v1` JSONL schema: one object per `(metric,
    /// tenant)` line, sorted by `(metric, tenant)`. Scalars carry
    /// `"value"`; histograms carry `count/sum/min/max/p50/p90/p99`. The
    /// global scope (tenant `""`) renders as `"tenant":""`.
    pub fn render_jsonl(&self) -> String {
        // Rendering runs at snapshot cadence over O(tenants) lines, so it
        // writes straight into one buffer: no per-line temporaries.
        let mut out = String::with_capacity(self.entries.len() * 80);
        for ((metric, tenant), value) in &self.entries {
            out.push_str("{\"schema\":\"");
            out.push_str(METRICS_SCHEMA);
            out.push_str("\",\"metric\":\"");
            escape_into(&mut out, metric);
            out.push_str("\",\"tenant\":\"");
            escape_into(&mut out, tenant);
            out.push_str("\",\"type\":\"");
            out.push_str(value.type_name());
            out.push('"');
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::FGauge(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\
                         \"p99\":{}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.p50(),
                        h.p90(),
                        h.p99()
                    );
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Render a Prometheus-style text exposition. Each metric gets one
    /// `# TYPE` header; tenants become a `tenant="..."` label (the global
    /// scope, tenant `""`, renders unlabeled); histograms render as
    /// summaries with `quantile` labels plus `_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 48);
        let mut last_metric: Option<&'static str> = None;
        for ((metric, tenant), value) in &self.entries {
            if last_metric != Some(metric) {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) | MetricValue::FGauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# TYPE {metric} {kind}");
                last_metric = Some(metric);
            }
            // Append `metric{tenant="...",extra}` (label braces elided
            // when both parts are empty) straight into `out`.
            let label = |out: &mut String, extra: &str| match (tenant.is_empty(), extra.is_empty())
            {
                (true, true) => {}
                (true, false) => {
                    out.push('{');
                    out.push_str(extra);
                    out.push('}');
                }
                (false, _) => {
                    out.push_str("{tenant=\"");
                    escape_into(out, tenant);
                    out.push('"');
                    if !extra.is_empty() {
                        out.push(',');
                        out.push_str(extra);
                    }
                    out.push('}');
                }
            };
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(metric);
                    label(&mut out, "");
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::FGauge(v) => {
                    out.push_str(metric);
                    label(&mut out, "");
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Histogram(h) => {
                    for (q, v) in [
                        ("quantile=\"0.5\"", h.p50()),
                        ("quantile=\"0.9\"", h.p90()),
                        ("quantile=\"0.99\"", h.p99()),
                    ] {
                        out.push_str(metric);
                        label(&mut out, q);
                        let _ = writeln!(out, " {v}");
                    }
                    out.push_str(metric);
                    out.push_str("_sum");
                    label(&mut out, "");
                    let _ = writeln!(out, " {}", h.sum());
                    out.push_str(metric);
                    out.push_str("_count");
                    label(&mut out, "");
                    let _ = writeln!(out, " {}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let reg = MetricsRegistry::new(8);
        reg.update("a", |m| {
            m.add("events", 3);
            m.gauge_max("queue_hwm", 7);
            m.gauge_max("queue_hwm", 5);
            m.fgauge_set("cal", 0.25);
            m.record("stall_us", 100);
        });
        reg.update("a", |m| m.add("events", 2));
        let snap = reg.snapshot();
        let mut it = snap.iter();
        let (m, t, v) = it.next().unwrap();
        assert_eq!((m, t), ("cal", "a"));
        assert_eq!(v, &MetricValue::FGauge(0.25));
        let (m, _, v) = it.next().unwrap();
        assert_eq!(m, "events");
        assert_eq!(v, &MetricValue::Counter(5));
        let (m, _, v) = it.next().unwrap();
        assert_eq!(m, "queue_hwm");
        assert_eq!(v, &MetricValue::Gauge(7));
        let (m, _, v) = it.next().unwrap();
        assert_eq!(m, "stall_us");
        match v {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(it.next().is_none());
    }

    #[test]
    fn snapshot_sorts_by_metric_then_tenant() {
        let reg = MetricsRegistry::new(4);
        for tenant in ["zz", "aa", "mm"] {
            reg.update(tenant, |m| m.add("events", 1));
        }
        reg.update("aa", |m| m.gauge_set("depth", 2));
        let keys: Vec<_> = reg.snapshot().iter().map(|(m, t, _)| (m, t.to_string())).collect();
        assert_eq!(
            keys,
            vec![
                ("depth", "aa".to_string()),
                ("events", "aa".to_string()),
                ("events", "mm".to_string()),
                ("events", "zz".to_string()),
            ]
        );
    }

    #[test]
    fn shard_count_does_not_change_snapshot_bytes() {
        let tenants: Vec<String> = (0..40).map(|i| format!("t{i:05}")).collect();
        let mut renders = Vec::new();
        for shards in [1, 2, 64, 129] {
            let reg = MetricsRegistry::new(shards);
            for (i, t) in tenants.iter().enumerate() {
                reg.update(t, |m| {
                    m.add("events", i as u64 + 1);
                    m.fgauge_set("cal", i as f64 * 0.125);
                    m.record("stall_us", (i as u64 * 37) % 5000);
                });
            }
            let snap = reg.snapshot();
            renders.push((snap.render_jsonl(), snap.render_prometheus()));
        }
        for pair in &renders[1..] {
            assert_eq!(pair, &renders[0]);
        }
    }

    #[test]
    fn global_scope_renders_unlabeled_in_prometheus() {
        let reg = MetricsRegistry::new(2);
        reg.update("", |m| m.add("sheds", 4));
        reg.update("t1", |m| m.add("sheds", 1));
        let text = reg.snapshot().render_prometheus();
        assert_eq!(text, "# TYPE sheds counter\nsheds 4\nsheds{tenant=\"t1\"} 1\n");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
