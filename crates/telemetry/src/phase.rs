//! Per-phase profiling timers.
//!
//! The simulator's hot loop decomposes into five phases (tree update,
//! candidate selection, cost-benefit evaluation, cache operations, I/O
//! submission). A [`PhaseTimer`] accumulates wall-clock nanoseconds per
//! phase into a [`PhaseTimes`] table. The disabled timer — the
//! "NullTelemetry" path, [`PhaseTimer::null`] — reduces every probe to a
//! single branch on a bool, so uninstrumented runs pay effectively
//! nothing.
//!
//! Two probe styles are offered:
//!
//! * explicit [`PhaseTimer::begin`] / [`PhaseTimer::end`] around a region
//!   (the token is `None` when disabled, so `end` is a no-op);
//! * RAII [`PhaseTimer::scope`], which returns a [`ScopeGuard`] that
//!   charges the phase on drop.

use std::time::Instant;

/// The five profiled phases of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// LZ prefetch-tree maintenance (`record_reference`).
    TreeUpdate,
    /// Enumerating and expanding prefetch candidates.
    CandidateSelection,
    /// Cost-benefit comparisons (victim selection, frontier pricing).
    CostBenefit,
    /// Cache lookups, insertions, and evictions.
    CacheOps,
    /// Demand fetches and prefetch submission to the disk model.
    IoSubmission,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::TreeUpdate,
        Phase::CandidateSelection,
        Phase::CostBenefit,
        Phase::CacheOps,
        Phase::IoSubmission,
    ];

    /// Stable snake_case name used in logs, JSON artifacts, and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TreeUpdate => "tree_update",
            Phase::CandidateSelection => "candidate_selection",
            Phase::CostBenefit => "cost_benefit",
            Phase::CacheOps => "cache_ops",
            Phase::IoSubmission => "io_submission",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated nanoseconds per [`Phase`]. Mergeable (element-wise add),
/// subtractable (for before/after snapshots), and cheap to copy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    ns: [u64; 5],
}

impl PhaseTimes {
    /// Nanoseconds accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Milliseconds accumulated in `phase`.
    pub fn ms(&self, phase: Phase) -> f64 {
        self.ns[phase.index()] as f64 / 1e6
    }

    /// Add `ns` nanoseconds to `phase`.
    #[inline]
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] += ns;
    }

    /// Fold another table into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a += b;
        }
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Whether any phase accumulated time.
    pub fn is_zero(&self) -> bool {
        self.total_ns() == 0
    }

    /// Per-phase saturating difference (`self - earlier`), for snapshot
    /// deltas around a region of interest.
    pub fn minus(&self, earlier: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for (i, o) in out.ns.iter_mut().enumerate() {
            *o = self.ns[i].saturating_sub(earlier.ns[i]);
        }
        out
    }
}

/// A per-run profiling timer. Disabled timers ([`PhaseTimer::null`])
/// skip the clock entirely: `begin` returns `None` and `end` is a no-op.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    enabled: bool,
    times: PhaseTimes,
}

impl PhaseTimer {
    /// A timer that is enabled iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        PhaseTimer { enabled, times: PhaseTimes::default() }
    }

    /// The NullTelemetry path: a disabled timer whose probes cost one
    /// branch each.
    pub fn null() -> Self {
        PhaseTimer::new(false)
    }

    /// Whether probes are live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn probes on (accumulated times are kept).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Start timing a region. Returns `None` when disabled; pass the
    /// token to [`PhaseTimer::end`].
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Charge the elapsed time since `begin` to `phase`. No-op when the
    /// token is `None` (disabled timer).
    #[inline]
    pub fn end(&mut self, phase: Phase, token: Option<Instant>) {
        if let Some(start) = token {
            self.times.add_ns(phase, start.elapsed().as_nanos() as u64);
        }
    }

    /// RAII probe: charges `phase` when the guard drops.
    pub fn scope(&mut self, phase: Phase) -> ScopeGuard<'_> {
        let start = self.begin();
        ScopeGuard { timer: self, phase, start }
    }

    /// The accumulated table.
    pub fn times(&self) -> PhaseTimes {
        self.times
    }

    /// Fold a table into this timer (e.g. a policy's engine-side times
    /// into the simulator's own).
    pub fn absorb(&mut self, other: &PhaseTimes) {
        self.times.merge(other);
    }
}

/// RAII guard from [`PhaseTimer::scope`]; charges its phase on drop.
pub struct ScopeGuard<'a> {
    timer: &'a mut PhaseTimer,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.timer.end(self.phase, self.start.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = PhaseTimer::null();
        assert!(!t.is_enabled());
        let tok = t.begin();
        assert!(tok.is_none());
        t.end(Phase::TreeUpdate, tok);
        {
            let _g = t.scope(Phase::CacheOps);
            std::hint::black_box(0u64);
        }
        assert!(t.times().is_zero());
    }

    #[test]
    fn enabled_timer_accumulates_into_the_right_phase() {
        let mut t = PhaseTimer::new(true);
        let tok = t.begin();
        assert!(tok.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(Phase::CostBenefit, tok);
        assert!(t.times().get(Phase::CostBenefit) > 0);
        assert_eq!(t.times().get(Phase::TreeUpdate), 0);
    }

    #[test]
    fn scope_guard_charges_on_drop() {
        let mut t = PhaseTimer::new(true);
        {
            let _g = t.scope(Phase::IoSubmission);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(t.times().get(Phase::IoSubmission) > 0);
    }

    #[test]
    fn merge_and_minus_are_element_wise() {
        let mut a = PhaseTimes::default();
        a.add_ns(Phase::TreeUpdate, 10);
        a.add_ns(Phase::CacheOps, 5);
        let mut b = PhaseTimes::default();
        b.add_ns(Phase::TreeUpdate, 3);
        b.add_ns(Phase::IoSubmission, 7);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.get(Phase::TreeUpdate), 13);
        assert_eq!(merged.get(Phase::CacheOps), 5);
        assert_eq!(merged.get(Phase::IoSubmission), 7);
        assert_eq!(merged.total_ns(), 25);
        let delta = merged.minus(&a);
        assert_eq!(delta, b);
        // Saturating: subtracting a larger table clamps to zero.
        assert!(a.minus(&merged).is_zero());
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["tree_update", "candidate_selection", "cost_benefit", "cache_ops", "io_submission"]
        );
    }
}
