//! Log-scaled fixed-bucket histogram.
//!
//! Values are unitless `u64`s; callers pick the tick (the simulator
//! records latencies as rounded integer microseconds). Buckets are
//! organized as octaves of 16 linear sub-buckets: values below 16 get
//! exact buckets, and every larger value lands in a bucket whose width is
//! 1/16 of its lower bound, so the relative quantization error is at most
//! 6.25% at any magnitude. The layout is fixed (976 buckets, ~8 KB), which
//! makes histograms mergeable by plain element-wise addition — shard
//! locally, merge globally, and the result is bit-identical to histogram
//! of the concatenated samples.

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16

/// Total buckets: 16 exact low buckets plus 60 octaves × 16 sub-buckets
/// (the top octave covers values up to `u64::MAX`).
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB as usize;

/// Serialization format version (first word of [`Histogram::to_words`]).
pub const HISTOGRAM_VERSION: u64 = 1;

/// Bucket index of a value. Monotone in `v`; exact below 16.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (((msb - SUB_BITS + 1) as u64 * SUB) + ((v >> shift) - SUB)) as usize
    }
}

/// Smallest value mapping to bucket `idx` (the inverse of
/// [`bucket_index`] on bucket lower bounds).
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB - 1;
        (SUB + idx % SUB) << octave
    }
}

/// Largest value mapping to bucket `idx`.
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1) - 1
    }
}

/// A mergeable log-scaled histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    /// Exact sum of samples (f64: overflow-safe for any realistic run;
    /// serialized via `to_bits`, the journal's bit-cast convention).
    sum: f64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0.0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty; exact, not quantized).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q × count)`, clamped to
    /// the observed max (0 when empty). Quantization error ≤ 6.25%.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one. Merging shards in any order
    /// (or grouping) yields bit-identical state to recording the
    /// concatenated samples directly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bit-exact sparse serialization: `[version, count, sum.to_bits(),
    /// min, max, pairs, (bucket, count)...]` with only non-zero buckets
    /// listed. Round-trips through [`Histogram::from_words`] exactly.
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = vec![
            HISTOGRAM_VERSION,
            self.count,
            self.sum.to_bits(),
            self.min,
            self.max,
            self.counts.iter().filter(|&&c| c != 0).count() as u64,
        ];
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                words.push(idx as u64);
                words.push(c);
            }
        }
        words
    }

    /// Decode [`Histogram::to_words`] output. `None` on a malformed or
    /// version-mismatched word stream.
    pub fn from_words(words: &[u64]) -> Option<Histogram> {
        let (&version, rest) = words.split_first()?;
        if version != HISTOGRAM_VERSION || rest.len() < 5 {
            return None;
        }
        let pairs = rest[4] as usize;
        if rest.len() != 5 + 2 * pairs {
            return None;
        }
        let mut h = Histogram::new();
        h.count = rest[0];
        h.sum = f64::from_bits(rest[1]);
        h.min = rest[2];
        h.max = rest[3];
        for pair in rest[5..].chunks_exact(2) {
            let idx = pair[0] as usize;
            if idx >= BUCKETS {
                return None;
            }
            h.counts[idx] = pair[1];
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_get_exact_buckets() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << shift).saturating_add(off << shift.saturating_sub(4)));
            }
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < BUCKETS, "index {idx} out of range at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        for idx in 0..BUCKETS {
            let low = bucket_low(idx);
            assert_eq!(bucket_index(low), idx, "low bound of {idx}");
            assert_eq!(bucket_index(bucket_high(idx)), idx, "high bound of {idx}");
            if idx > 0 {
                assert!(low > bucket_low(idx - 1));
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for idx in 16..BUCKETS {
            let low = bucket_low(idx) as f64;
            let high = bucket_high(idx) as f64;
            assert!((high - low) / low <= 1.0 / 16.0 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50() as f64;
        assert!((p50 - 500.0).abs() / 500.0 <= 0.07, "p50 {p50}");
        let p99 = h.p99() as f64;
        assert!((p99 - 990.0).abs() / 990.0 <= 0.07, "p99 {p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 31 + 7) % 100_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 3 == 0 {
                a.record(s)
            } else {
                b.record(s)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn words_round_trip_bit_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let words = h.to_words();
        let back = Histogram::from_words(&words).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.sum().to_bits(), h.sum().to_bits(), "sum must be bit-exact");
        // Malformed streams are rejected, not misread.
        assert!(Histogram::from_words(&words[..words.len() - 1]).is_none());
        assert!(Histogram::from_words(&[99, 0, 0, 0, 0, 0]).is_none());
        assert!(Histogram::from_words(&[]).is_none());
    }
}
