//! # prefetch-telemetry
//!
//! Observability primitives for the prefetching workspace, built the same
//! way as the vendored stubs: std-only, offline-friendly, no third-party
//! dependencies. Three pieces:
//!
//! * [`Histogram`] — a log-scaled fixed-bucket latency/size histogram with
//!   `u64` counts: mergeable across shards, p50/p90/p99/max queries, and a
//!   bit-exact word serialization consistent with the checkpoint journal's
//!   bit-cast convention.
//! * [`log`] — a structured logging facade: leveled events with `key=value`
//!   fields, rendered to a human sink on stderr and (optionally) a JSONL
//!   file sink, so every harness outcome is a typed, greppable record.
//! * [`phase`] — [`PhaseTimer`]/[`ScopeGuard`] profiling over the
//!   simulator's five hot phases, with a disabled ("NullTelemetry") path
//!   that costs one branch per probe so tier-1 timing is unaffected.
//! * [`registry`] — a lock-sharded live [`MetricsRegistry`] keyed by
//!   `(tenant, metric)`, sharded by tenant hash so snapshots stay
//!   bit-identical at any worker count, with JSONL and Prometheus-style
//!   renderers.
//! * [`flight`] — the [`FlightRecorder`], a fixed-size per-tenant ring of
//!   request-lifecycle trace events stamped with sequence numbers (never
//!   wall clock), dumped on panic/WAL-degrade for post-mortem context.

pub mod flight;
pub mod histogram;
pub mod log;
pub mod phase;
pub mod registry;

pub use flight::{FlightEvent, FlightRecorder};
pub use histogram::Histogram;
pub use phase::{Phase, PhaseTimer, PhaseTimes, ScopeGuard};
pub use registry::{MetricSet, MetricValue, MetricsRegistry, Snapshot};
