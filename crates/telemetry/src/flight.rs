//! Flight recorder: a fixed-size ring of request-lifecycle trace events.
//!
//! Each tenant carries one recorder; stages along the request path
//! (admission → queue → shard dispatch → engine decision → WAL
//! group-commit → response) append one event apiece. Events are stamped
//! with a **monotone per-recorder sequence number, never wall clock**, so
//! a dump is a pure function of the tenant's own ordered event stream and
//! is byte-identical under any `--threads` count — the same bit-identity
//! contract the advice stream obeys.
//!
//! Recording is designed for the per-reference hot path: details are
//! stored in compact **binary** form ([`Detail`]) and rendered to text
//! only when a dump is actually requested (quarantine, `TRACE`, drain
//! report). A steady-state record is a handful of word writes into a
//! pre-filled ring slot — no allocation, no `core::fmt`.
//!
//! The ring holds the most recent `cap` events; older events are replaced
//! and counted in [`FlightRecorder::dropped`]. The ring is dumped into
//! the quarantine/FINAL report when a tenant panics or its WAL degrades,
//! preserving the post-mortem context that exit-time counters lose.

/// Append `v` in decimal to `out` without going through `core::fmt` —
/// the formatting machinery costs more than the digits on dump paths
/// that render many events.
pub fn push_dec(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Stage-specific payload of one trace event, kept in binary form until
/// a dump renders it. Hot-path stages use the fixed-shape variants;
/// `Text` is for rare, once-per-tenant stages (admission).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Detail {
    /// No payload.
    None,
    /// Free-form text (cold paths only — this allocates).
    Text(String),
    /// One `key=value` numeric pair, rendered as `{key}={value}`.
    Kv(&'static str, u64),
    /// An engine decision: advice sequence number, how the reference
    /// was served (`h`/`p`/`m`), virtual stall in whole microseconds,
    /// and how many blocks were prefetched. Rendered as
    /// `ev={ev} kind={kind} stall_us={stall_us} pf={pf}`.
    Decision {
        /// Advice sequence number of the reference.
        ev: u64,
        /// Reference kind tag: `h` demand hit, `p` prefetch hit, `m` miss.
        kind: char,
        /// Virtual stall charged to the reference, whole microseconds.
        stall_us: u64,
        /// Blocks prefetched this period.
        pf: u64,
    },
}

impl Detail {
    /// Render into `out` exactly as the dump line shows it.
    fn render_into(&self, out: &mut String) {
        match self {
            Detail::None => {}
            Detail::Text(s) => out.push_str(s),
            Detail::Kv(key, v) => {
                out.push_str(key);
                out.push('=');
                push_dec(out, *v);
            }
            Detail::Decision { ev, kind, stall_us, pf } => {
                out.push_str("ev=");
                push_dec(out, *ev);
                out.push_str(" kind=");
                out.push(*kind);
                out.push_str(" stall_us=");
                push_dec(out, *stall_us);
                out.push_str(" pf=");
                push_dec(out, *pf);
            }
        }
    }
}

/// One trace event: which lifecycle stage, with a stage-specific binary
/// detail, stamped with the recorder's sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone per-recorder sequence number (0-based, counts every
    /// recorded event including ones since evicted from the ring).
    pub seq: u64,
    /// Lifecycle stage tag (e.g. `admission`, `queue`, `dispatch`,
    /// `decision`, `wal`, `response`).
    pub stage: &'static str,
    /// Stage-specific detail payload.
    pub detail: Detail,
}

/// A bounded ring buffer of [`FlightEvent`]s.
///
/// Storage is a flat `Vec` that fills once and then wraps: `head` points
/// at the oldest event, and a steady-state record *overwrites that slot
/// in place* — no element moves and no deque bookkeeping.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    ring: Vec<FlightEvent>,
    /// Index of the oldest event once the ring has wrapped; 0 before.
    head: usize,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder { cap, next_seq: 0, dropped: 0, ring: Vec::with_capacity(cap), head: 0 }
    }

    /// Append one event, evicting the oldest when full.
    pub fn record(&mut self, stage: &'static str, detail: Detail) {
        if self.ring.len() < self.cap {
            self.ring.push(FlightEvent { seq: self.next_seq, stage, detail });
        } else {
            let slot = &mut self.ring[self.head];
            slot.seq = self.next_seq;
            slot.stage = stage;
            slot.detail = detail;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
        self.next_seq += 1;
    }

    /// Append a free-form text event (cold paths only).
    pub fn record_text(&mut self, stage: &'static str, detail: String) {
        self.record(stage, Detail::Text(detail));
    }

    /// Append a `key=value` numeric event.
    pub fn record_kv(&mut self, stage: &'static str, key: &'static str, v: u64) {
        self.record(stage, Detail::Kv(key, v));
    }

    /// Append an engine-decision event (the per-reference hot path).
    pub fn record_decision(&mut self, ev: u64, kind: char, stall_us: u64, pf: u64) {
        self.record("decision", Detail::Decision { ev, kind, stall_us, pf });
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        let (wrapped, front) = self.ring.split_at(self.head);
        front.iter().chain(wrapped.iter())
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Render the ring as dump lines `"<seq> <stage> <detail>"` (oldest
    /// first), for embedding in TRACE responses or quarantine reports.
    pub fn dump_lines(&self) -> Vec<String> {
        self.events()
            .map(|e| {
                let mut line = String::with_capacity(48);
                push_dec(&mut line, e.seq);
                line.push(' ');
                line.push_str(e.stage);
                line.push(' ');
                e.detail.render_into(&mut line);
                // `Detail::None` renders empty; keep the historical
                // two-space-free form by trimming the trailing separator.
                if line.ends_with(' ') {
                    line.pop();
                }
                line
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record_kv("decision", "ev", i);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(fr.dump_lines()[0], "2 decision ev=2");
    }

    #[test]
    fn sequence_numbers_are_monotone_from_zero() {
        let mut fr = FlightRecorder::new(8);
        fr.record_text("admission", "cache=64".to_string());
        fr.record_kv("queue", "n", 1);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn decision_renders_all_fields() {
        let mut fr = FlightRecorder::new(4);
        fr.record_decision(7, 'p', 1500, 3);
        assert_eq!(fr.dump_lines(), vec!["0 decision ev=7 kind=p stall_us=1500 pf=3"]);
    }

    #[test]
    fn wrapped_ring_dumps_oldest_first() {
        let mut fr = FlightRecorder::new(2);
        for i in 0..5u64 {
            fr.record_kv("decision", "ev", i);
        }
        assert_eq!(fr.dump_lines(), vec!["3 decision ev=3", "4 decision ev=4"]);
        assert_eq!(fr.dropped(), 3);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.record("a", Detail::None);
        fr.record("b", Detail::None);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.cap(), 1);
        assert_eq!(fr.dropped(), 1);
    }
}
