//! Injectable durability faults.
//!
//! The log layer asks a [`WriteFaults`] implementation, per operation,
//! whether to sabotage the write path. Implementations live with the
//! workspace's fault-plan machinery (`prefetch-disk`'s
//! `DurabilityFaultPlan`) so every fault stream is seeded and
//! deterministic; this crate only defines the interface it consumes.

/// What to do to one append operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendFault {
    /// Write only the first `keep` bytes of the record buffer, then fail —
    /// the torn tail a crash mid-append leaves behind.
    ShortWrite {
        /// Bytes of the record buffer actually written.
        keep: usize,
    },
    /// Flip bit `bit` (counting from the buffer start) and report success —
    /// silent media corruption, caught later by the record fingerprint.
    BitFlip {
        /// Absolute bit index into the record buffer.
        bit: u32,
    },
}

/// Per-operation durability fault decisions (see the module docs).
pub trait WriteFaults: Send {
    /// Fault for append number `index` (0-based) of a `len`-byte record
    /// buffer, or `None` for a healthy write.
    fn on_append(&mut self, index: u64, len: usize) -> Option<AppendFault>;

    /// Whether sync number `index` (0-based) fails with an injected error.
    fn on_sync(&mut self, index: u64) -> bool;
}
