//! The append-only log writer and its group-commit policy.

use crate::fault::{AppendFault, WriteFaults};
use crate::record::{encode_record, file_header, FILE_HEADER_LEN};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When group commits fsync the dirty logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync at every commit point (durability = everything acknowledged).
    Always,
    /// Never sync during operation (the OS flushes when it pleases).
    Never,
    /// Sync once every `n` appended records.
    EveryN(u64),
    /// Sync when at least this many milliseconds passed since the last.
    IntervalMs(u64),
}

impl FsyncPolicy {
    /// Stable name for logs and bench artifacts.
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Never => "never".into(),
            FsyncPolicy::EveryN(n) => format!("every-n={n}"),
            FsyncPolicy::IntervalMs(ms) => format!("interval-ms={ms}"),
        }
    }
}

/// Tracks appends across a set of logs and decides, at each commit
/// point, whether the policy calls for an fsync pass.
#[derive(Debug)]
pub struct GroupCommit {
    policy: FsyncPolicy,
    pending: u64,
    last_sync: Instant,
}

impl GroupCommit {
    /// A fresh tracker (counts from zero, interval from now).
    pub fn new(policy: FsyncPolicy) -> Self {
        GroupCommit { policy, pending: 0, last_sync: Instant::now() }
    }

    /// The policy this tracker enforces.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Record `appended` new records since the last call.
    pub fn note(&mut self, appended: u64) {
        self.pending += appended;
    }

    /// Whether a sync pass is due now; resets the counters when it is.
    pub fn due(&mut self) -> bool {
        if self.pending == 0 {
            return false;
        }
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryN(n) => self.pending >= n.max(1),
            FsyncPolicy::IntervalMs(ms) => self.last_sync.elapsed().as_millis() as u64 >= ms,
        };
        if due {
            self.pending = 0;
            self.last_sync = Instant::now();
        }
        due
    }
}

/// An append-only record log (see [`crate::record`] for the format).
///
/// The writer tracks how many appends happened since the last [`sync`]
/// (`AppendLog::dirty`); the owner decides when to sync (group commit via
/// [`GroupCommit`], or explicitly at close/drain). Injected faults
/// ([`WriteFaults`]) sabotage individual operations deterministically.
///
/// [`sync`]: AppendLog::sync
pub struct AppendLog {
    path: PathBuf,
    file: File,
    len: u64,
    appends: u64,
    syncs: u64,
    dirty: u64,
    faults: Option<Box<dyn WriteFaults>>,
}

impl std::fmt::Debug for AppendLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppendLog")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("dirty", &self.dirty)
            .finish()
    }
}

impl AppendLog {
    /// Create (or truncate) the log at `path` and write a fresh header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&file_header())?;
        Ok(AppendLog {
            path: path.to_path_buf(),
            file,
            len: FILE_HEADER_LEN as u64,
            appends: 0,
            syncs: 0,
            dirty: 1, // the header itself is not yet durable
            faults: None,
        })
    }

    /// Reopen an existing log for appending, truncating to `valid_len`
    /// (from a [`crate::scan`] — drops any torn tail). A `valid_len` of
    /// zero recreates the file, header included.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<Self> {
        if valid_len < FILE_HEADER_LEN as u64 {
            return Self::create(path);
        }
        // Append mode: every write lands at EOF, which after the
        // truncation is exactly `valid_len`.
        let file = OpenOptions::new().append(true).open(path)?;
        file.set_len(valid_len)?;
        Ok(AppendLog {
            path: path.to_path_buf(),
            file,
            len: valid_len,
            appends: 0,
            syncs: 0,
            dirty: 1, // the truncation is not yet durable
            faults: None,
        })
    }

    /// Install a deterministic fault stream (tests only).
    pub fn set_faults(&mut self, faults: Option<Box<dyn WriteFaults>>) {
        self.faults = faults;
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical file length (header + every appended record).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records beyond the header.
    pub fn is_empty(&self) -> bool {
        self.len <= FILE_HEADER_LEN as u64
    }

    /// Operations (appends or truncations) since the last successful sync.
    pub fn dirty(&self) -> u64 {
        self.dirty
    }

    /// Successful syncs over this log's lifetime.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Append one record. On error (real I/O or injected short write) the
    /// log must be considered broken — the file may hold a torn tail that
    /// only a fresh [`crate::scan`] + [`AppendLog::resume`] can repair.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut buf = encode_record(payload);
        let index = self.appends;
        self.appends += 1;
        let fault = self.faults.as_mut().and_then(|f| f.on_append(index, buf.len()));
        match fault {
            Some(AppendFault::ShortWrite { keep }) => {
                let keep = keep.min(buf.len().saturating_sub(1));
                self.file.write_all(&buf[..keep])?;
                self.len += keep as u64;
                self.dirty += 1;
                Err(io::Error::other("injected short write"))
            }
            Some(AppendFault::BitFlip { bit }) => {
                let bit = bit as usize % (buf.len() * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
                self.file.write_all(&buf)?;
                self.len += buf.len() as u64;
                self.dirty += 1;
                Ok(())
            }
            None => {
                self.file.write_all(&buf)?;
                self.len += buf.len() as u64;
                self.dirty += 1;
                Ok(())
            }
        }
    }

    /// Make every appended record durable (no-op when nothing is dirty).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty == 0 {
            return Ok(());
        }
        let index = self.syncs;
        if self.faults.as_mut().is_some_and(|f| f.on_sync(index)) {
            return Err(io::Error::other("injected fsync error"));
        }
        self.file.sync_data()?;
        self.syncs += 1;
        self.dirty = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{scan, Tail};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pfwal-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_scan_roundtrip_and_resume() {
        let path = tmp("roundtrip.wal");
        let mut log = AppendLog::create(&path).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.sync().unwrap();
        assert_eq!(log.syncs(), 1);
        let valid = {
            let s = scan(&path).unwrap();
            assert_eq!(s.tail, Tail::Clean);
            assert_eq!(s.records, vec![b"one".to_vec(), b"two".to_vec()]);
            s.valid_len
        };
        drop(log);
        let mut log = AppendLog::resume(&path, valid).unwrap();
        log.append(b"three").unwrap();
        log.sync().unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_truncates_a_torn_tail() {
        let path = tmp("torn.wal");
        let mut log = AppendLog::create(&path).unwrap();
        log.append(b"kept").unwrap();
        log.sync().unwrap();
        // Simulate a crash mid-append: raw partial record bytes.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[7, 0, 0, 0, 1, 2]).unwrap(); // len=7, half a fingerprint
        drop(f);
        let s = scan(&path).unwrap();
        assert!(matches!(s.tail, Tail::Torn { .. }));
        assert_eq!(s.records, vec![b"kept".to_vec()]);
        let mut log = AppendLog::resume(&path, s.valid_len).unwrap();
        log.append(b"after").unwrap();
        log.sync().unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.tail, Tail::Clean);
        assert_eq!(s.records, vec![b"kept".to_vec(), b"after".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    struct OneShot(u64, AppendFault);
    impl WriteFaults for OneShot {
        fn on_append(&mut self, index: u64, _len: usize) -> Option<AppendFault> {
            (index == self.0).then_some(self.1)
        }
        fn on_sync(&mut self, _index: u64) -> bool {
            false
        }
    }

    #[test]
    fn injected_short_write_leaves_a_resumable_torn_tail() {
        let path = tmp("short.wal");
        let mut log = AppendLog::create(&path).unwrap();
        log.append(b"good").unwrap();
        log.set_faults(Some(Box::new(OneShot(1, AppendFault::ShortWrite { keep: 5 }))));
        assert!(log.append(b"doomed record").is_err());
        drop(log);
        let s = scan(&path).unwrap();
        assert!(matches!(s.tail, Tail::Torn { .. }), "{:?}", s.tail);
        assert_eq!(s.records, vec![b"good".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_bit_flip_is_caught_by_the_fingerprint() {
        let path = tmp("flip.wal");
        let mut log = AppendLog::create(&path).unwrap();
        log.append(b"good").unwrap();
        // Flip a payload bit of the second record (header is 12 bytes).
        log.set_faults(Some(Box::new(OneShot(1, AppendFault::BitFlip { bit: 12 * 8 + 3 }))));
        log.append(b"silently damaged").unwrap();
        log.sync().unwrap();
        drop(log);
        let s = scan(&path).unwrap();
        assert!(matches!(s.tail, Tail::Corrupt { .. }), "{:?}", s.tail);
        assert_eq!(s.records, vec![b"good".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    struct FailSync;
    impl WriteFaults for FailSync {
        fn on_append(&mut self, _index: u64, _len: usize) -> Option<AppendFault> {
            None
        }
        fn on_sync(&mut self, _index: u64) -> bool {
            true
        }
    }

    #[test]
    fn injected_fsync_error_surfaces_without_corrupting() {
        let path = tmp("fsync.wal");
        let mut log = AppendLog::create(&path).unwrap();
        log.set_faults(Some(Box::new(FailSync)));
        log.append(b"record").unwrap();
        assert!(log.sync().is_err());
        assert_eq!(log.syncs(), 0);
        let s = scan(&path).unwrap();
        assert_eq!(s.records, vec![b"record".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_policies() {
        let mut always = GroupCommit::new(FsyncPolicy::Always);
        always.note(1);
        assert!(always.due());
        assert!(!always.due()); // nothing pending

        let mut never = GroupCommit::new(FsyncPolicy::Never);
        never.note(1_000_000);
        assert!(!never.due());

        let mut every = GroupCommit::new(FsyncPolicy::EveryN(10));
        every.note(4);
        assert!(!every.due());
        every.note(6);
        assert!(every.due());
        assert!(!every.due());

        let mut interval = GroupCommit::new(FsyncPolicy::IntervalMs(3_600_000));
        interval.note(5);
        assert!(!interval.due(), "an hour has not passed");
        let mut instant = GroupCommit::new(FsyncPolicy::IntervalMs(0));
        instant.note(1);
        assert!(instant.due());
    }
}
