//! The on-disk record format and the open-time scan.
//!
//! ```text
//! file   := header record*
//! header := "PFWL" u16(version=1) u16(reserved=0)           ; 8 bytes
//! record := u32(len) u64(fingerprint) payload[len]          ; 12 + len bytes
//! ```
//!
//! All integers are little-endian; `fingerprint` is FNV-1a over the
//! payload bytes. `len` is bounded by [`MAX_RECORD_LEN`] so a damaged
//! length field can never drive an allocation from garbage.
//!
//! ## Torn vs corrupt
//!
//! An append is one `write_all` of the complete record buffer, so a crash
//! leaves a strict prefix of the appended bytes. The scanner exploits
//! that to classify damage precisely:
//!
//! * record extends past EOF, or an all-zero header at the tail (some
//!   filesystems zero-fill recovered extents) → [`Tail::Torn`]: drop the
//!   tail, the log is usable from the last complete record;
//! * a *fully present* record whose fingerprint mismatches, or an insane
//!   length field → [`Tail::Corrupt`]: this cannot be a crash artifact,
//!   only bit rot or an overwrite — the caller must distrust the log.

use prefetch_hash::Fnv64;

/// Magic + version + reserved prefix of every log file.
pub const FILE_HEADER_LEN: usize = 8;
/// Per-record prefix: `u32` length + `u64` fingerprint.
pub const RECORD_HEADER_LEN: usize = 12;
/// Upper bound on one record's payload; a length field above this is
/// corruption by definition (no writer produces it).
pub const MAX_RECORD_LEN: usize = 1 << 20;

const MAGIC: &[u8; 4] = b"PFWL";
const VERSION: u16 = 1;

/// Fingerprint of a record payload (FNV-1a, stable across platforms).
pub fn fingerprint(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.bytes(payload);
    h.finish()
}

/// Render the file header.
pub(crate) fn file_header() -> [u8; FILE_HEADER_LEN] {
    let mut out = [0u8; FILE_HEADER_LEN];
    out[..4].copy_from_slice(MAGIC);
    out[4..6].copy_from_slice(&VERSION.to_le_bytes());
    out
}

/// Render one record (header + payload) into a fresh buffer.
pub(crate) fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_RECORD_LEN,
        "record payload must be 1..={MAX_RECORD_LEN} bytes"
    );
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fingerprint(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// How the scan ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tail {
    /// Every byte belonged to a complete, verified record.
    Clean,
    /// A crash artifact: the bytes at `at` are a strict prefix of a record
    /// (or a zero-filled extent). Truncating to `at` yields a valid log.
    Torn {
        /// Offset of the first byte that is not part of a complete record.
        at: u64,
        /// Bytes dropped by truncating there.
        dropped: u64,
    },
    /// Damage no crash can produce (fingerprint mismatch on a complete
    /// record, insane length, bad magic): the log must not be trusted.
    Corrupt {
        /// Offset of the offending record (or 0 for a bad header).
        at: u64,
        /// Human-readable cause.
        reason: String,
    },
}

/// Result of scanning a log file.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Every verified record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the verified prefix (header + complete records); the
    /// offset a resuming writer truncates to.
    pub valid_len: u64,
    /// How the file ended.
    pub tail: Tail,
}

impl Scan {
    /// Whether the log can be resumed (possibly after truncation) —
    /// i.e. the damage, if any, is a crash artifact, not corruption.
    pub fn resumable(&self) -> bool {
        !matches!(self.tail, Tail::Corrupt { .. })
    }
}

/// Scan a log file from disk. An absent file scans as empty and clean.
pub fn scan(path: &std::path::Path) -> std::io::Result<Scan> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan_bytes(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(Scan { records: Vec::new(), valid_len: 0, tail: Tail::Clean })
        }
        Err(e) => Err(e),
    }
}

/// Scan an in-memory image of a log file (see the module docs for the
/// torn/corrupt classification rules).
pub fn scan_bytes(bytes: &[u8]) -> Scan {
    let n = bytes.len();
    if n == 0 {
        return Scan { records: Vec::new(), valid_len: 0, tail: Tail::Clean };
    }
    if n < FILE_HEADER_LEN {
        // A crash during creation leaves a short header prefix.
        let torn = Tail::Torn { at: 0, dropped: n as u64 };
        if bytes == &file_header()[..n] || bytes.iter().all(|&b| b == 0) {
            return Scan { records: Vec::new(), valid_len: 0, tail: torn };
        }
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            tail: Tail::Corrupt { at: 0, reason: "short file with foreign bytes".into() },
        };
    }
    if &bytes[..4] != MAGIC {
        if bytes[..FILE_HEADER_LEN].iter().all(|&b| b == 0) {
            return Scan {
                records: Vec::new(),
                valid_len: 0,
                tail: Tail::Torn { at: 0, dropped: n as u64 },
            };
        }
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            tail: Tail::Corrupt { at: 0, reason: "bad magic".into() },
        };
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            tail: Tail::Corrupt { at: 0, reason: format!("unsupported version {version}") },
        };
    }
    if bytes[6] != 0 || bytes[7] != 0 {
        return Scan {
            records: Vec::new(),
            valid_len: 0,
            tail: Tail::Corrupt { at: 0, reason: "nonzero reserved header bytes".into() },
        };
    }

    let mut records = Vec::new();
    let mut at = FILE_HEADER_LEN;
    loop {
        if at == n {
            return Scan { records, valid_len: at as u64, tail: Tail::Clean };
        }
        let torn = |records: Vec<Vec<u8>>| Scan {
            records,
            valid_len: at as u64,
            tail: Tail::Torn { at: at as u64, dropped: (n - at) as u64 },
        };
        let corrupt = |records: Vec<Vec<u8>>, reason: String| Scan {
            records,
            valid_len: at as u64,
            tail: Tail::Corrupt { at: at as u64, reason },
        };
        if n - at < RECORD_HEADER_LEN {
            return torn(records);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let fp = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        if len == 0 && fp == 0 {
            // Zero-filled extent: a crash artifact on some filesystems.
            return torn(records);
        }
        if len == 0 || len > MAX_RECORD_LEN {
            return corrupt(records, format!("record length {len} out of range"));
        }
        if at + RECORD_HEADER_LEN + len > n {
            return torn(records);
        }
        let payload = &bytes[at + RECORD_HEADER_LEN..at + RECORD_HEADER_LEN + len];
        if fingerprint(payload) != fp {
            // The record is fully present, so a prefix-writing crash
            // cannot explain the mismatch: a bit flipped.
            return corrupt(records, format!("record fingerprint mismatch at offset {at}"));
        }
        records.push(payload.to_vec());
        at += RECORD_HEADER_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = file_header().to_vec();
        for p in payloads {
            buf.extend_from_slice(&encode_record(p));
        }
        buf
    }

    #[test]
    fn roundtrip_and_clean_scan() {
        let img = image(&[b"alpha", b"b", &[0u8; 300]]);
        let scan = scan_bytes(&img);
        assert_eq!(scan.tail, Tail::Clean);
        assert_eq!(scan.valid_len, img.len() as u64);
        assert_eq!(scan.records, vec![b"alpha".to_vec(), b"b".to_vec(), vec![0u8; 300]]);
    }

    #[test]
    fn truncation_at_every_boundary_is_torn_or_shorter_clean() {
        let img = image(&[b"one", b"two", b"three"]);
        let full = scan_bytes(&img);
        for cut in 0..img.len() {
            let scan = scan_bytes(&img[..cut]);
            assert!(scan.resumable(), "cut at {cut} must stay resumable");
            assert!(scan.records.len() <= full.records.len());
            // The surviving records are exactly a prefix of the originals.
            assert_eq!(scan.records[..], full.records[..scan.records.len()]);
            assert!(scan.valid_len <= cut as u64);
        }
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let img = image(&[b"first record", b"second record"]);
        let clean = scan_bytes(&img).records;
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut dmg = img.clone();
                dmg[byte] ^= 1 << bit;
                let scan = scan_bytes(&dmg);
                // Either the damage is detected (torn/corrupt) or — when
                // it hit a length/fingerprint header in a way that still
                // parses — the decoded records must not silently differ
                // while claiming a clean tail.
                if scan.tail == Tail::Clean {
                    assert_ne!(
                        scan.records, clean,
                        "flip at byte {byte} bit {bit} must not decode cleanly to the originals"
                    );
                    // A clean-scanning flip can only happen if it moved a
                    // record boundary onto another valid record, which the
                    // fingerprint makes a 2^-64 event; treat as failure.
                    panic!("flip at byte {byte} bit {bit} produced a clean scan");
                }
            }
        }
    }

    #[test]
    fn zero_fill_tail_is_torn_not_corrupt() {
        let mut img = image(&[b"x"]);
        let valid = img.len() as u64;
        img.extend_from_slice(&[0u8; 40]);
        let scan = scan_bytes(&img);
        assert_eq!(scan.tail, Tail::Torn { at: valid, dropped: 40 });
        assert_eq!(scan.valid_len, valid);
    }

    #[test]
    fn payload_flip_in_last_record_is_corrupt() {
        let mut img = image(&[b"abc", b"tail-record"]);
        let last = img.len() - 3;
        img[last] ^= 0x10;
        let scan = scan_bytes(&img);
        assert!(matches!(scan.tail, Tail::Corrupt { .. }), "{:?}", scan.tail);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn foreign_file_is_corrupt() {
        let scan = scan_bytes(b"not a wal file at all, definitely");
        assert!(matches!(scan.tail, Tail::Corrupt { .. }));
    }
}
