//! Atomic whole-file replacement: the write-then-rename discipline shared
//! by the checkpoint journal, the tree snapshots, and pfserve's recovery
//! metadata. The destination is never in a torn state — a crash at any
//! instant leaves either the previous file or the complete new one.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Write `bytes` to `tmp`, fsync, and atomically rename over `dst`.
///
/// The parent directory is fsync'd best-effort afterwards: where the
/// platform honours it, the rename itself is durable; where it does not,
/// the worst case is the previous file — never corruption.
pub fn replace_file(tmp: &Path, dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(tmp, dst)?;
    if let Some(dir) = dst.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`replace_file`] with the conventional sibling temp path
/// (`<dst>.tmp`, extension appended rather than replaced).
pub fn replace_file_auto(dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = dst.as_os_str().to_owned();
    tmp.push(".tmp");
    replace_file(Path::new(&tmp), dst, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_is_atomic_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("pfwal-atomic-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let dst = dir.join("artifact.bin");
        replace_file_auto(&dst, b"generation 1").unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"generation 1");
        replace_file_auto(&dst, b"generation 2, longer").unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"generation 2, longer");
        assert!(!dir.join("artifact.bin.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
