//! `prefetch-wal`: the crash-durability substrate shared by the
//! checkpoint journal (`prefetch-sim`), the tree snapshots
//! (`prefetch-tree`), and the pfserve write-ahead log (`prefetch-serve`).
//!
//! Two disciplines cover every durable artifact in the workspace:
//!
//! * **Append-only logs** ([`AppendLog`], [`record`]): fingerprinted,
//!   length-prefixed binary records appended to a file and group-committed
//!   under a configurable [`FsyncPolicy`]. Because an append is a single
//!   prefix-write of one record buffer, a crash can only leave a *strict
//!   prefix* of the bytes — so on open ([`scan`]) a record that extends
//!   past EOF is a **torn tail** (truncated, work re-runs), while a
//!   fully-present record whose FNV-1a fingerprint mismatches can only be
//!   **corruption** (bit rot, a flipped bit) and is surfaced as a typed
//!   [`Tail::Corrupt`] for the caller to quarantine.
//! * **Atomic replace-writes** ([`atomic::replace_file`]): whole-file
//!   artifacts (checkpoint journals, tree snapshots) are written to a
//!   sibling temp file, fsync'd, and renamed over the live file, so a
//!   crash leaves either the old file or the new one — never a torn one.
//!
//! Both paths accept injectable durability faults ([`WriteFaults`]:
//! short writes, fsync errors, silent bit flips) so the degradation
//! machinery above them is exercised deterministically in tests.

#![warn(missing_docs)]

pub mod atomic;
pub mod fault;
pub mod log;
pub mod record;

pub use fault::{AppendFault, WriteFaults};
pub use log::{AppendLog, FsyncPolicy, GroupCommit};
pub use record::{
    scan, scan_bytes, Scan, Tail, FILE_HEADER_LEN, MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
