//! Acceptance property for `pftree-snap/v1`: training interrupted by a
//! snapshot/restore cycle is indistinguishable from uninterrupted
//! training, across all four synthetic trace generators. "Indistinguishable"
//! is checked three ways — the advice stream over the continuation (the
//! highest-weight child at the prediction anchor after every access), the
//! statistics counters, and the canonical serialized image of the final
//! tree (byte equality implies every weight, edge, LRU link, cursor, and
//! counter matches).

use prefetch_trace::synth::TraceKind;
use prefetch_trace::BlockId;
use prefetch_tree::{OverflowPolicy, PrefetchTree};
use proptest::prelude::*;

fn snap(t: &PrefetchTree) -> Vec<u8> {
    let mut buf = Vec::new();
    t.write_snapshot(&mut buf).unwrap();
    buf
}

fn advise(t: &PrefetchTree, last: BlockId) -> Option<u64> {
    let anchor = t.prediction_anchor(last);
    t.children(anchor).next().and_then(|c| t.block(c)).map(|b| b.0)
}

fn train(t: &mut PrefetchTree, blocks: &[BlockId]) -> Vec<Option<u64>> {
    blocks
        .iter()
        .map(|&b| {
            t.record_access(b);
            advise(t, b)
        })
        .collect()
}

fn check_resume(mut control: PrefetchTree, mut half: PrefetchTree, blocks: &[BlockId], mid: usize) {
    train(&mut control, &blocks[..mid]);
    let control_advice = train(&mut control, &blocks[mid..]);

    train(&mut half, &blocks[..mid]);
    let image = snap(&half);
    let mut resumed = PrefetchTree::read_snapshot(&mut image.as_slice()).unwrap();
    resumed.check_invariants();
    let resumed_advice = train(&mut resumed, &blocks[mid..]);

    assert_eq!(resumed_advice, control_advice, "advice diverged after restore");
    assert_eq!(resumed.stats(), control.stats(), "stats diverged after restore");
    assert_eq!(snap(&resumed), snap(&control), "final state diverged after restore");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_is_bit_identical_across_generators(
        ki in 0usize..4,
        refs in 64usize..1500,
        seed in any::<u64>(),
        split in 0usize..1 << 20,
    ) {
        let kind = TraceKind::ALL[ki];
        let blocks: Vec<BlockId> = kind.generate(refs, seed).blocks().collect();
        let mid = split % blocks.len();
        check_resume(PrefetchTree::new(), PrefetchTree::new(), &blocks, mid);
    }

    /// The same property under a tight node budget: the snapshot carries
    /// the LRU recency order and the free list, so eviction decisions
    /// after restore match the uninterrupted run exactly.
    #[test]
    fn resume_is_bit_identical_under_eviction(
        ki in 0usize..4,
        refs in 64usize..1500,
        seed in any::<u64>(),
        split in 0usize..1 << 20,
        limit in 16usize..96,
    ) {
        let kind = TraceKind::ALL[ki];
        let blocks: Vec<BlockId> = kind.generate(refs, seed).blocks().collect();
        let mid = split % blocks.len();
        let mk = || PrefetchTree::with_node_budget(limit, OverflowPolicy::Evict);
        check_resume(mk(), mk(), &blocks, mid);
    }
}
