//! Eviction churn under `OverflowPolicy::Evict`: long random streams
//! against a tight node budget exercise the arena's free list (every
//! evicted `NodeId` must be recycled, never leaked), the stats
//! accounting identities, and the children/edge-index invariants after
//! thousands of create/evict cycles.

use prefetch_trace::BlockId;
use prefetch_tree::{NodeId, OverflowPolicy, PrefetchTree};
use proptest::prelude::*;

/// Highest arena slot index reachable from the root. With budget `L` the
/// arena allocates at most `L + 1` slots ever (one transient overshoot
/// before `maybe_evict` trims back), so recycling is observable from the
/// public API: no reachable id may exceed that.
fn max_reachable_index(t: &PrefetchTree) -> usize {
    let mut queue: Vec<NodeId> = vec![t.root()];
    let mut max = 0;
    while let Some(n) = queue.pop() {
        max = max.max(n.index());
        queue.extend(t.children(n));
    }
    max
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn evict_churn_recycles_ids_and_keeps_invariants(
        blocks in proptest::collection::vec(0u64..40, 200..2000),
        limit in 8usize..64,
    ) {
        let mut t = PrefetchTree::with_node_budget(limit, OverflowPolicy::Evict);
        let mut high_water = 0usize;
        for (i, &b) in blocks.iter().enumerate() {
            t.record_access(BlockId(b));
            high_water = high_water.max(t.node_count());
            prop_assert!(t.node_count() <= limit, "budget exceeded at access {i}");
        }
        t.check_invariants();

        let s = t.stats();
        // Every access either followed an existing edge or created a node
        // (Evict never refuses a creation).
        prop_assert_eq!(s.accesses, s.predictable + s.nodes_created);
        prop_assert_eq!(s.nodes_capped, 0);
        // Created minus evicted is exactly what remains (`node_count`
        // already excludes the root).
        prop_assert_eq!(s.nodes_created - s.nodes_evicted, t.node_count() as u64);
        // Free-list recycling: once at the budget, eviction must feed
        // allocation — the arena never grows past limit + 1 slots.
        prop_assert!(
            max_reachable_index(&t) <= limit + 1,
            "leaked arena slots: reachable id {} with limit {}",
            max_reachable_index(&t),
            limit
        );
        // And the same bound holds for exact memory: churn must not
        // accrete bytes once the population is capped.
        if high_water == limit {
            let bytes_now = t.bytes_in_use();
            for &b in &blocks {
                t.record_access(BlockId(b.wrapping_add(7)));
            }
            t.check_invariants();
            prop_assert!(
                t.bytes_in_use() <= bytes_now * 2,
                "unbounded growth under churn: {} -> {}",
                bytes_now,
                t.bytes_in_use()
            );
        }
    }

    #[test]
    fn freeze_counts_every_refusal(
        blocks in proptest::collection::vec(0u64..40, 200..2000),
        limit in 8usize..64,
    ) {
        let mut t = PrefetchTree::with_node_budget(limit, OverflowPolicy::Freeze);
        for &b in &blocks {
            t.record_access(BlockId(b));
        }
        t.check_invariants();
        let s = t.stats();
        // Every access followed an edge, created a node, or was refused.
        prop_assert_eq!(s.accesses, s.predictable + s.nodes_created + s.nodes_capped);
        prop_assert_eq!(s.nodes_evicted, 0);
        prop_assert_eq!(t.node_count() as u64, s.nodes_created);
    }

    /// Snapshot/restore in the middle of eviction churn preserves the
    /// free list: the restored tree keeps recycling ids within the same
    /// arena bound instead of growing fresh slots.
    #[test]
    fn restore_preserves_free_list_recycling(
        blocks in proptest::collection::vec(0u64..40, 400..1200),
        limit in 8usize..48,
    ) {
        let mid = blocks.len() / 2;
        let mut t = PrefetchTree::with_node_budget(limit, OverflowPolicy::Evict);
        for &b in &blocks[..mid] {
            t.record_access(BlockId(b));
        }
        let mut buf = Vec::new();
        t.write_snapshot(&mut buf).unwrap();
        let mut back = PrefetchTree::read_snapshot(&mut buf.as_slice()).unwrap();
        for &b in &blocks[mid..] {
            back.record_access(BlockId(b));
        }
        back.check_invariants();
        prop_assert!(back.node_count() <= limit);
        prop_assert!(max_reachable_index(&back) <= limit + 1);
    }
}
