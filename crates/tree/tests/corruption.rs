//! Corruption robustness: any byte-level damage to a serialized tree —
//! truncation, bit flips, random byte rewrites — must surface as a typed
//! `TreeIoError`, never a panic, for both the legacy preorder format
//! (`read_tree`, `PFLZ`) and the full-state snapshot (`read_snapshot`,
//! `pftree-snap/v1`). When a mutation happens to still parse, the decoded
//! tree must satisfy every structural invariant: the readers admit
//! nothing they cannot vouch for.

use prefetch_trace::BlockId;
use prefetch_tree::io::{read_tree, write_tree};
use prefetch_tree::PrefetchTree;
use proptest::prelude::*;

fn trained(blocks: &[u64]) -> PrefetchTree {
    let mut t = PrefetchTree::new();
    for &b in blocks {
        t.record_access(BlockId(b));
    }
    t
}

fn legacy_bytes(t: &PrefetchTree) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tree(t, &mut buf).unwrap();
    buf
}

fn snap_bytes(t: &PrefetchTree) -> Vec<u8> {
    let mut buf = Vec::new();
    t.write_snapshot(&mut buf).unwrap();
    buf
}

/// Small alphabet so the tree has real structure (shared prefixes,
/// multi-child nodes) rather than a root fan.
fn blocks() -> proptest::collection::VecStrategy<core::ops::Range<u64>> {
    proptest::collection::vec(0u64..12, 1..200)
}

/// (position-seed, new-byte) pairs applied to the serialized image.
fn mutations() -> proptest::collection::VecStrategy<(core::ops::Range<usize>, core::ops::Range<u8>)>
{
    proptest::collection::vec((0usize..1 << 20, 0u8..255), 1..16)
}

fn mutate(buf: &mut [u8], muts: &[(usize, u8)]) {
    for &(pos, byte) in muts {
        let at = pos % buf.len();
        buf[at] = byte;
    }
}

proptest! {
    #[test]
    fn mutated_legacy_stream_errors_but_never_panics(
        blocks in blocks(),
        muts in mutations(),
    ) {
        let mut buf = legacy_bytes(&trained(&blocks));
        mutate(&mut buf, &muts);
        if let Ok(t) = read_tree(&mut &buf[..]) {
            t.check_invariants();
        }
    }

    #[test]
    fn truncated_legacy_stream_errors_but_never_panics(
        blocks in blocks(),
        keep in 0usize..1 << 20,
    ) {
        let buf = legacy_bytes(&trained(&blocks));
        let cut = keep % buf.len();
        if let Ok(t) = read_tree(&mut &buf[..cut]) {
            t.check_invariants();
        }
    }

    #[test]
    fn mutated_snapshot_errors_but_never_panics(
        blocks in blocks(),
        muts in mutations(),
    ) {
        let mut buf = snap_bytes(&trained(&blocks));
        mutate(&mut buf, &muts);
        if let Ok(t) = PrefetchTree::read_snapshot(&mut &buf[..]) {
            t.check_invariants();
        }
    }

    #[test]
    fn truncated_snapshot_errors_but_never_panics(
        blocks in blocks(),
        keep in 0usize..1 << 20,
    ) {
        let buf = snap_bytes(&trained(&blocks));
        let cut = keep % buf.len();
        if let Ok(t) = PrefetchTree::read_snapshot(&mut &buf[..cut]) {
            t.check_invariants();
        }
    }

    /// Payload damage behind an intact header must be caught by the
    /// FNV-1a fingerprint — a flipped payload byte can never restore
    /// silently.
    #[test]
    fn snapshot_payload_flips_are_always_detected(
        blocks in blocks(),
        pos in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let mut buf = snap_bytes(&trained(&blocks));
        // Header: magic(4) + version(2) + codec(2) + fingerprint(8) + len(8).
        const HEADER: usize = 24;
        prop_assert!(buf.len() > HEADER, "snapshots always carry a payload");
        let at = HEADER + pos % (buf.len() - HEADER);
        buf[at] ^= 1 << bit;
        prop_assert!(PrefetchTree::read_snapshot(&mut &buf[..]).is_err());
    }
}

#[test]
fn arbitrary_garbage_is_rejected() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(41);
    for len in [0usize, 1, 6, 24, 25, 100, 4096] {
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert!(read_tree(&mut &noise[..]).is_err(), "legacy accepted {len}B of noise");
        assert!(
            PrefetchTree::read_snapshot(&mut &noise[..]).is_err(),
            "snapshot accepted {len}B of noise"
        );
    }
}
