//! `pftree-snap/v1`: versioned, compressed, fingerprinted tree snapshots.
//!
//! [`crate::io::write_tree`] persists *predictions* (structure + weights);
//! this module persists the *complete* training state — arena arrays, the
//! free list, the parse cursor, LRU recency, statistics, and the node
//! budget — so a restored tree's future is **bit-identical** to the
//! snapshotted tree's future. That is what `pfserve --snapshot-dir`
//! warm-starts from and what lets a drained tenant resume exactly where
//! it stopped (the same guarantee the PR 3 checkpoint journal gives
//! sweeps, achieved the same way: raw state, never re-derived state).
//!
//! ## On-disk format (see DESIGN.md §12)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PFSN"
//! 4       2     version (u16 LE) — readers reject versions they don't know
//! 6       2     codec  (u16 LE) — 0 = raw, 1 = canonical-Huffman
//! 8       8     FNV-1a fingerprint of the uncompressed payload (u64 LE)
//! 16      8     uncompressed payload length (u64 LE)
//! 24      ..    frame body
//! ```
//!
//! The payload is a varint stream of the tree's raw state. The tree *is*
//! an LZ parse, so the payload is already an LZ match encoding of the
//! trace it learned; the codec layer entropy-codes its bytes with a
//! canonical Huffman table (256 code lengths, then an MSB-first
//! bit stream). When the coded form wouldn't pay — tiny trees, high-entropy
//! varints — the writer stores the payload raw, so a snapshot is never
//! bigger than raw + 24 bytes of header.
//!
//! Restoration validates every structural invariant (see
//! [`crate::PrefetchTree`]'s `from_raw`) so corrupt or adversarial bytes
//! yield a typed [`TreeIoError`], never a panic.

use crate::io::{get_varint, put_varint, TreeIoError};
use crate::stats::TreeStats;
use crate::tree::PrefetchTree;
use prefetch_hash::Fnv64;
use std::io::{Read, Write};
use std::path::Path;

pub(crate) const MAGIC: [u8; 4] = *b"PFSN";
pub(crate) const VERSION: u16 = 1;
const CODEC_RAW: u16 = 0;
const CODEC_HUFFMAN: u16 = 1;
/// Bit-at-a-time canonical decoding accumulates into a u64; depths beyond
/// this would need a payload larger than 2^56 bytes to arise.
const MAX_CODE_LEN: u32 = 56;

/// What a snapshot write produced — sizes for benchmarks and the
/// compression-ratio tables in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotInfo {
    /// Uncompressed payload bytes (the varint state stream).
    pub payload_bytes: usize,
    /// Bytes written, including the 24-byte header.
    pub encoded_bytes: usize,
    /// Whether the Huffman codec paid for itself (false = stored raw).
    pub entropy_coded: bool,
}

/// Complete decoded tree state: the bridge between the byte format and
/// `PrefetchTree::{to_raw, from_raw}`. Parents, positions, child-slot
/// geometry, and the edge index are *derived* (and validated) from the
/// children lists on restore rather than trusted from the wire.
#[derive(Clone, Debug)]
pub(crate) struct RawTree {
    pub node_limit: u64,
    pub overflow: u8,
    pub cursor: u32,
    pub fresh_substring: bool,
    pub lru_head: u32,
    pub lru_tail: u32,
    pub stats: TreeStats,
    pub blocks: Vec<u64>,
    pub weights: Vec<u64>,
    pub lvc: Vec<u32>,
    pub lru_prev: Vec<u32>,
    pub lru_next: Vec<u32>,
    pub children: Vec<Vec<u32>>,
    pub free: Vec<u32>,
}

// ---------------------------------------------------------------------------
// Bit-level I/O
// ---------------------------------------------------------------------------

/// MSB-first bit accumulator flushed byte-at-a-time into a `Vec<u8>`.
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    fn write_bits(&mut self, code: u64, len: u32) {
        debug_assert!((1..=MAX_CODE_LEN).contains(&len));
        self.acc = (self.acc << len) | (code & ((1u64 << len) - 1));
        self.nbits += len;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Flush, zero-padding the final partial byte.
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.out.push(self.acc as u8);
            self.nbits = 0;
        }
        self.out
    }
}

/// MSB-first bit reader with typed exhaustion errors.
struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0, acc: 0, nbits: 0 }
    }

    fn read_bit(&mut self) -> Result<u64, TreeIoError> {
        if self.nbits == 0 {
            let byte =
                *self.buf.get(self.pos).ok_or(TreeIoError::Corrupt("bit stream exhausted"))?;
            self.pos += 1;
            self.acc = u64::from(byte);
            self.nbits = 8;
        }
        self.nbits -= 1;
        Ok((self.acc >> self.nbits) & 1)
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman over payload bytes
// ---------------------------------------------------------------------------

/// Deterministic Huffman code lengths for the byte histogram: ties in the
/// merge heap break on first-created order, so the same payload always
/// yields the same table. Returns `None` when a code would exceed
/// [`MAX_CODE_LEN`] (callers fall back to the raw codec).
fn code_lengths(freq: &[u64; 256]) -> Option<[u8; 256]> {
    #[derive(PartialEq, Eq)]
    struct Item {
        freq: u64,
        order: u32,
        node: u32,
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse: BinaryHeap is a max-heap, we want min-first.
            other.freq.cmp(&self.freq).then_with(|| other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    // Tree nodes: 0..256 are symbol leaves, internals appended after.
    let mut kids: Vec<(u32, u32)> = Vec::new();
    let mut order = 0u32;
    for (sym, &f) in freq.iter().enumerate() {
        if f > 0 {
            heap.push(Item { freq: f, order, node: sym as u32 });
            order += 1;
        }
    }
    match heap.len() {
        0 => return Some([0; 256]),
        1 => {
            // A single distinct symbol still needs one bit per occurrence.
            let mut lens = [0u8; 256];
            lens[heap.pop().expect("len 1").node as usize] = 1;
            return Some(lens);
        }
        _ => {}
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let node = 256 + kids.len() as u32;
        kids.push((a.node, b.node));
        heap.push(Item { freq: a.freq.saturating_add(b.freq), order, node });
        order += 1;
    }
    // Walk depths down from the final merge.
    let root = heap.pop().expect("one root").node;
    let mut lens = [0u8; 256];
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        if node < 256 {
            if depth > MAX_CODE_LEN {
                return None;
            }
            lens[node as usize] = depth as u8;
        } else {
            let (a, b) = kids[(node - 256) as usize];
            stack.push((a, depth + 1));
            stack.push((b, depth + 1));
        }
    }
    Some(lens)
}

/// Canonical code assignment: symbols sorted by (length, value) get
/// consecutive codes — the table on the wire is just the 256 lengths.
fn canonical_codes(lens: &[u8; 256]) -> Result<[(u64, u8); 256], TreeIoError> {
    let mut by_len: Vec<(u8, u8)> = Vec::new(); // (len, symbol)
    for (sym, &l) in lens.iter().enumerate() {
        if l > 0 {
            if u32::from(l) > MAX_CODE_LEN {
                return Err(TreeIoError::Corrupt("huffman code too long"));
            }
            by_len.push((l, sym as u8));
        }
    }
    by_len.sort_unstable();
    let mut codes = [(0u64, 0u8); 256];
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(l, sym) in &by_len {
        code <<= l - prev_len;
        prev_len = l;
        codes[sym as usize] = (code, l);
        code = code.checked_add(1).ok_or(TreeIoError::Corrupt("huffman table overflows"))?;
        // Kraft check: the last code of length l must fit in l bits.
        if code > (1u64 << l) {
            return Err(TreeIoError::Corrupt("huffman lengths violate kraft inequality"));
        }
    }
    Ok(codes)
}

fn huffman_encode(payload: &[u8]) -> Option<Vec<u8>> {
    let mut freq = [0u64; 256];
    for &b in payload {
        freq[b as usize] += 1;
    }
    let lens = code_lengths(&freq)?;
    let codes = canonical_codes(&lens).ok()?;
    let mut w = BitWriter::new();
    w.out.extend_from_slice(&lens);
    for &b in payload {
        let (code, len) = codes[b as usize];
        w.write_bits(code, u32::from(len));
    }
    Some(w.finish())
}

fn huffman_decode(body: &[u8], payload_len: usize) -> Result<Vec<u8>, TreeIoError> {
    if body.len() < 256 {
        return Err(TreeIoError::Corrupt("huffman table truncated"));
    }
    let mut lens = [0u8; 256];
    lens.copy_from_slice(&body[..256]);
    let codes = canonical_codes(&lens)?;
    // Invert canonically: per length, the first code and the symbol list.
    let mut first_code = [0u64; (MAX_CODE_LEN + 2) as usize];
    let mut count = [0u32; (MAX_CODE_LEN + 2) as usize];
    let mut syms_by_len: Vec<Vec<u8>> = vec![Vec::new(); (MAX_CODE_LEN + 2) as usize];
    let mut by_len: Vec<(u8, u8)> = Vec::new();
    for (sym, &l) in lens.iter().enumerate() {
        if l > 0 {
            by_len.push((l, sym as u8));
        }
    }
    if by_len.is_empty() && payload_len > 0 {
        return Err(TreeIoError::Corrupt("empty huffman table for nonempty payload"));
    }
    by_len.sort_unstable();
    for &(l, sym) in &by_len {
        let li = l as usize;
        if count[li] == 0 {
            first_code[li] = codes[sym as usize].0;
        }
        count[li] += 1;
        syms_by_len[li].push(sym);
    }
    let mut r = BitReader::new(&body[256..]);
    let mut out = Vec::with_capacity(payload_len);
    while out.len() < payload_len {
        let mut code = 0u64;
        let mut len = 0usize;
        loop {
            code = (code << 1) | r.read_bit()?;
            len += 1;
            if len > MAX_CODE_LEN as usize {
                return Err(TreeIoError::Corrupt("huffman code exceeds max length"));
            }
            let offset = code.wrapping_sub(first_code[len]);
            if count[len] > 0 && offset < u64::from(count[len]) {
                out.push(syms_by_len[len][offset as usize]);
                break;
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    for &v in vs {
        put_varint(out, u64::from(v));
    }
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, TreeIoError> {
    let v = get_varint(buf, pos)?;
    u32::try_from(v).map_err(|_| TreeIoError::Corrupt("value exceeds u32"))
}

fn encode_payload(raw: &RawTree) -> Vec<u8> {
    let n = raw.blocks.len();
    let mut out = Vec::with_capacity(32 + n * 8);
    put_varint(&mut out, raw.node_limit);
    out.push(raw.overflow);
    put_varint(&mut out, u64::from(raw.cursor));
    out.push(u8::from(raw.fresh_substring));
    put_varint(&mut out, u64::from(raw.lru_head));
    put_varint(&mut out, u64::from(raw.lru_tail));
    for s in [
        raw.stats.accesses,
        raw.stats.predictable,
        raw.stats.lvc_opportunities,
        raw.stats.lvc_repeats,
        raw.stats.nodes_created,
        raw.stats.nodes_evicted,
        raw.stats.nodes_capped,
        raw.stats.resets,
    ] {
        put_varint(&mut out, s);
    }
    put_varint(&mut out, n as u64);
    for &b in &raw.blocks {
        put_varint(&mut out, b);
    }
    for &w in &raw.weights {
        put_varint(&mut out, w);
    }
    put_u32s(&mut out, &raw.lvc);
    put_u32s(&mut out, &raw.lru_prev);
    put_u32s(&mut out, &raw.lru_next);
    for kids in &raw.children {
        put_varint(&mut out, kids.len() as u64);
        put_u32s(&mut out, kids);
    }
    put_varint(&mut out, raw.free.len() as u64);
    put_u32s(&mut out, &raw.free);
    out
}

fn decode_payload(buf: &[u8]) -> Result<RawTree, TreeIoError> {
    let pos = &mut 0usize;
    let node_limit = get_varint(buf, pos)?;
    let overflow = *buf.get(*pos).ok_or(TreeIoError::Corrupt("truncated overflow byte"))?;
    *pos += 1;
    let cursor = get_u32(buf, pos)?;
    let fresh = *buf.get(*pos).ok_or(TreeIoError::Corrupt("truncated fresh flag"))?;
    *pos += 1;
    if fresh > 1 {
        return Err(TreeIoError::Corrupt("bad fresh flag"));
    }
    let lru_head = get_u32(buf, pos)?;
    let lru_tail = get_u32(buf, pos)?;
    let mut s = [0u64; 8];
    for v in &mut s {
        *v = get_varint(buf, pos)?;
    }
    let stats = TreeStats {
        accesses: s[0],
        predictable: s[1],
        lvc_opportunities: s[2],
        lvc_repeats: s[3],
        nodes_created: s[4],
        nodes_evicted: s[5],
        nodes_capped: s[6],
        resets: s[7],
    };
    let n = get_varint(buf, pos)? as usize;
    // Every node costs at least one byte in each array below: a count that
    // exceeds the remaining bytes is corrupt, not a huge allocation.
    if n == 0 || n > buf.len() - *pos {
        return Err(TreeIoError::Corrupt("implausible node count"));
    }
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(get_varint(buf, pos)?);
    }
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(get_varint(buf, pos)?);
    }
    let read_u32s = |count: usize, pos: &mut usize| -> Result<Vec<u32>, TreeIoError> {
        let mut v = Vec::with_capacity(count);
        for _ in 0..count {
            v.push(get_u32(buf, pos)?);
        }
        Ok(v)
    };
    let lvc = read_u32s(n, pos)?;
    let lru_prev = read_u32s(n, pos)?;
    let lru_next = read_u32s(n, pos)?;
    let mut children = Vec::with_capacity(n);
    let mut total_kids = 0usize;
    for _ in 0..n {
        let k = get_varint(buf, pos)? as usize;
        total_kids += k;
        // Each live non-root node is someone's child exactly once.
        if k >= n || total_kids >= n {
            return Err(TreeIoError::Corrupt("child count exceeds node count"));
        }
        children.push(read_u32s(k, pos)?);
    }
    let free_len = get_varint(buf, pos)? as usize;
    if free_len >= n {
        return Err(TreeIoError::Corrupt("free list longer than arena"));
    }
    let free = read_u32s(free_len, pos)?;
    if *pos != buf.len() {
        return Err(TreeIoError::Corrupt("trailing payload bytes"));
    }
    Ok(RawTree {
        node_limit,
        overflow,
        cursor,
        fresh_substring: fresh == 1,
        lru_head,
        lru_tail,
        stats,
        blocks,
        weights,
        lvc,
        lru_prev,
        lru_next,
        children,
        free,
    })
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

fn fingerprint(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.bytes(payload);
    h.finish()
}

impl PrefetchTree {
    /// Write a `pftree-snap/v1` snapshot of the complete training state.
    /// The restored tree continues bit-identically (see module docs).
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> Result<SnapshotInfo, TreeIoError> {
        let payload = encode_payload(&self.to_raw());
        let coded = huffman_encode(&payload).filter(|c| c.len() < payload.len());
        let (codec, body): (u16, &[u8]) = match &coded {
            Some(c) => (CODEC_HUFFMAN, c),
            None => (CODEC_RAW, &payload),
        };
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&codec.to_le_bytes());
        header.extend_from_slice(&fingerprint(&payload).to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(body)?;
        w.flush()?;
        Ok(SnapshotInfo {
            payload_bytes: payload.len(),
            encoded_bytes: 24 + body.len(),
            entropy_coded: codec == CODEC_HUFFMAN,
        })
    }

    /// Read a snapshot written by [`PrefetchTree::write_snapshot`],
    /// validating the header, fingerprint, and every structural invariant.
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<PrefetchTree, TreeIoError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        if buf.len() < 24 || buf[..4] != MAGIC {
            return Err(TreeIoError::BadHeader);
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION {
            return Err(TreeIoError::UnsupportedVersion(version));
        }
        let codec = u16::from_le_bytes([buf[6], buf[7]]);
        let want_print = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let body = &buf[24..];
        let payload: Vec<u8> = match codec {
            CODEC_RAW => {
                if body.len() as u64 != payload_len {
                    return Err(TreeIoError::Corrupt("raw body length mismatch"));
                }
                body.to_vec()
            }
            CODEC_HUFFMAN => {
                // Each payload byte needs ≥1 coded bit: bounds allocation.
                if payload_len > (body.len().saturating_sub(256) as u64).saturating_mul(8) {
                    return Err(TreeIoError::Corrupt("implausible payload length"));
                }
                huffman_decode(body, payload_len as usize)?
            }
            _ => return Err(TreeIoError::Corrupt("unknown codec")),
        };
        let got_print = fingerprint(&payload);
        if got_print != want_print {
            return Err(TreeIoError::FingerprintMismatch {
                expected: want_print,
                actual: got_print,
            });
        }
        let raw = decode_payload(&payload)?;
        PrefetchTree::from_raw(raw).map_err(TreeIoError::Corrupt)
    }

    /// Snapshot to a file (atomic: tmp + fsync + rename via
    /// [`prefetch_wal::atomic::replace_file`], the write-then-rename
    /// discipline shared with the checkpoint journal, so a crash mid-write
    /// never leaves a torn snapshot under the final name).
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<SnapshotInfo, TreeIoError> {
        let path = path.as_ref();
        let tmp = path.with_extension("pftree.tmp");
        let mut buf = Vec::new();
        let info = self.write_snapshot(&mut buf)?;
        prefetch_wal::atomic::replace_file(&tmp, path, &buf)?;
        Ok(info)
    }

    /// Load a snapshot file written by [`PrefetchTree::save_snapshot`].
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<PrefetchTree, TreeIoError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_snapshot(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OverflowPolicy;
    use prefetch_trace::BlockId;

    fn snap_bytes(t: &PrefetchTree) -> Vec<u8> {
        let mut buf = Vec::new();
        t.write_snapshot(&mut buf).unwrap();
        buf
    }

    fn trained(accesses: usize, blocks: u64, seed: u64) -> PrefetchTree {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut t = PrefetchTree::new();
        for _ in 0..accesses {
            t.record_access(BlockId(rng.gen_range(0..blocks)));
        }
        t
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for t in [
            trained(5_000, 40, 7),
            trained(200, 1000, 8), // mostly novel blocks
            PrefetchTree::new(),   // empty tree
        ] {
            let bytes = snap_bytes(&t);
            let back = PrefetchTree::read_snapshot(&mut &bytes[..]).unwrap();
            back.check_invariants();
            // Snapshot of the restored tree is byte-identical: node ids,
            // LRU order, cursor, free list and stats all survived.
            assert_eq!(snap_bytes(&back), bytes);
            assert_eq!(back.node_count(), t.node_count());
            assert_eq!(back.stats(), t.stats());
            assert_eq!(back.cursor(), t.cursor());
        }
    }

    #[test]
    fn continued_training_is_bit_identical() {
        use rand::{Rng, SeedableRng};
        for (limit, overflow) in [
            (usize::MAX, OverflowPolicy::Evict),
            (64, OverflowPolicy::Evict),
            (64, OverflowPolicy::Freeze),
        ] {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
            let stream: Vec<u64> = (0..4_000).map(|_| rng.gen_range(0..50)).collect();
            let mut uninterrupted = PrefetchTree::with_node_budget(limit, overflow);
            let mut snapped = PrefetchTree::with_node_budget(limit, overflow);
            for &b in &stream[..2_000] {
                uninterrupted.record_access(BlockId(b));
                snapped.record_access(BlockId(b));
            }
            // Snapshot → restore mid-stream.
            let bytes = snap_bytes(&snapped);
            let mut restored = PrefetchTree::read_snapshot(&mut &bytes[..]).unwrap();
            for &b in &stream[2_000..] {
                let a = uninterrupted.record_access(BlockId(b));
                let r = restored.record_access(BlockId(b));
                assert_eq!(a, r, "outcomes diverged (limit {limit}, {overflow:?})");
            }
            assert_eq!(uninterrupted.stats(), restored.stats());
            assert_eq!(snap_bytes(&uninterrupted), snap_bytes(&restored));
        }
    }

    #[test]
    fn entropy_coding_pays_on_real_trees_and_is_skipped_on_tiny_ones() {
        let big = trained(200_000, 60, 3);
        let mut buf = Vec::new();
        let info = big.write_snapshot(&mut buf).unwrap();
        assert!(info.entropy_coded, "a large low-entropy tree should compress");
        assert!(info.encoded_bytes < info.payload_bytes, "compression must pay");

        let tiny = trained(4, 4, 1);
        let mut buf = Vec::new();
        let info = tiny.write_snapshot(&mut buf).unwrap();
        assert!(info.encoded_bytes <= info.payload_bytes + 24, "never worse than raw plus header");
    }

    #[test]
    fn version_negotiation_rejects_unknown_versions() {
        let t = trained(100, 10, 2);
        let mut bytes = snap_bytes(&t);
        bytes[4] = 9; // version 9
        match PrefetchTree::read_snapshot(&mut &bytes[..]) {
            Err(TreeIoError::UnsupportedVersion(9)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_catches_payload_tampering() {
        let t = trained(100, 10, 2);
        let mut bytes = snap_bytes(&t);
        // Find a byte past the header whose flip is caught by the
        // fingerprint (not merely by the entropy decoder).
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(PrefetchTree::read_snapshot(&mut &bytes[..]).is_err());
    }

    #[test]
    fn truncation_and_garbage_error_not_panic() {
        let t = trained(2_000, 30, 4);
        let bytes = snap_bytes(&t);
        for cut in 0..bytes.len().min(64) {
            let shorter = &bytes[..cut];
            assert!(PrefetchTree::read_snapshot(&mut &shorter[..]).is_err(), "cut {cut}");
        }
        assert!(PrefetchTree::read_snapshot(&mut &b"PFSNnonsense"[..]).is_err());
        assert!(PrefetchTree::read_snapshot(&mut &[][..]).is_err());
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("pftree-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pftree");
        let t = trained(3_000, 25, 6);
        t.save_snapshot(&path).unwrap();
        let back = PrefetchTree::load_snapshot(&path).unwrap();
        assert_eq!(snap_bytes(&back), snap_bytes(&t));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_preserves_eviction_state() {
        // Under a node limit the free list and LRU order steer future
        // evictions; a snapshot taken mid-churn must preserve them.
        let mut t = PrefetchTree::with_node_limit(16);
        for b in 0..500u64 {
            t.record_access(BlockId(b % 37));
        }
        let bytes = snap_bytes(&t);
        let mut back = PrefetchTree::read_snapshot(&mut &bytes[..]).unwrap();
        for b in 500..1_000u64 {
            let a = t.record_access(BlockId(b % 37));
            let r = back.record_access(BlockId(b % 37));
            assert_eq!(a, r);
        }
        assert_eq!(t.stats(), back.stats());
        assert_eq!(snap_bytes(&t), snap_bytes(&back));
    }
}
