//! Node identity for the arena-backed tree.
//!
//! The seed kept a `Node` struct per tree node (scalars plus a `Vec<u32>`
//! of children); storage now lives in the struct-of-arrays
//! [`crate::arena::Arena`], and this module keeps only what identifies a
//! node and the paper's per-node memory constant.
//!
//! Children-index invariant (held by the arena for every live node `c`
//! with parent `p`): `children(p)[pos_in_parent(c)] == c`, so child
//! removal is O(1) lookup + O(shifted suffix).

/// Sentinel for "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// The per-node memory the paper's Figure 13 assumes (Section 9.3);
/// [`crate::PrefetchTree::approx_memory_bytes`] accounts memory the same
/// way, while `bytes_in_use()` reports the arena's exact footprint.
pub(crate) const PAPER_BYTES: usize = 40;

/// Opaque handle to a node in a [`crate::PrefetchTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into the arena (for diagnostics / serialization).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_exposes_index() {
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn nil_is_not_a_valid_index() {
        assert_eq!(NIL as usize, u32::MAX as usize);
    }
}
