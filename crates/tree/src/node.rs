//! Tree node storage.

use prefetch_trace::BlockId;

/// Sentinel for "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// Opaque handle to a node in a [`crate::PrefetchTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into the arena (for diagnostics / serialization).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One tree node. The paper budgets 40 bytes per node in its memory study
/// (Section 9.3, Figure 13); `crate::PrefetchTree::approx_memory_bytes`
/// accounts memory the same way.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// The disk block this node represents (undefined for the root).
    pub block: BlockId,
    /// Visit count.
    pub weight: u64,
    /// Parent node (NIL for the root).
    pub parent: u32,
    /// This node's position in `parent.children` (kept in sync so child
    /// removal is O(1)).
    pub pos_in_parent: u32,
    /// Child node indices.
    pub children: Vec<u32>,
    /// The child taken on the most recent visit (NIL if never), for the
    /// last-visited-child analysis and the `tree-lvc` policy.
    pub last_visited_child: u32,
    /// Intrusive LRU list links for node limiting.
    pub lru_prev: u32,
    pub lru_next: u32,
}

impl Node {
    /// The per-node memory the paper's Figure 13 assumes.
    pub const PAPER_BYTES: usize = 40;

    pub(crate) fn new(block: BlockId, parent: u32, pos_in_parent: u32) -> Self {
        Node {
            block,
            weight: 0,
            parent,
            pos_in_parent,
            children: Vec::new(),
            last_visited_child: NIL,
            lru_prev: NIL,
            lru_next: NIL,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_leaf_with_zero_weight() {
        let n = Node::new(BlockId(5), 0, 2);
        assert!(n.is_leaf());
        assert_eq!(n.weight, 0);
        assert_eq!(n.parent, 0);
        assert_eq!(n.pos_in_parent, 2);
        assert_eq!(n.last_visited_child, NIL);
    }

    #[test]
    fn node_id_exposes_index() {
        assert_eq!(NodeId(7).index(), 7);
    }
}
