//! # prefetch-tree
//!
//! The Lempel-Ziv **prefetch tree** of Vitter & Krishnan / Curewitz et al.,
//! as used by the SC'99 cost-benefit prefetching paper (Section 2).
//!
//! The tree is a trie over "substrings" of the disk-access stream, parsed
//! LZ78-style: starting from the root, each access follows (and reweights)
//! an existing edge; the first access with no matching edge adds one new
//! node and resets the parse to the root. Node weights count visits, so the
//! probability that block *B* follows the current position is
//! `weight(B-child) / weight(current)`, and the probability of a deeper
//! descendant is the product of edge probabilities along the path — exactly
//! the `p_b` of the paper's benefit equation. The number of edges along
//! that path is the prefetch *distance* `d_b`.
//!
//! Provided here:
//!
//! * [`PrefetchTree`] — arena-based tree with O(1) edge lookup, the LZ
//!   cursor, per-access outcome reporting (predictability, last-visited
//!   child — Tables 2 and 3 of the paper), and optional **LRU node
//!   limiting** (Figure 13; Section 9.3 memory study);
//! * [`Candidate`] and [`PrefetchTree::child_candidates`] — enumeration of
//!   prefetch candidates below any position with path probabilities and
//!   depths, consumed by the cost-benefit frontier in `prefetch-core`;
//! * [`TreeStats`] — the counters behind the paper's Tables 2 and 3.
//!
//! ## The paper's worked example
//!
//! ```
//! use prefetch_tree::PrefetchTree;
//! use prefetch_trace::BlockId;
//!
//! // Accesses (a)(ac)(ab)(aba)(abb)(b) with a=1, b=2, c=3 (paper Fig. 1a).
//! let mut t = PrefetchTree::new();
//! for b in [1u64, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2] {
//!     t.record_access(BlockId(b));
//! }
//! let root = t.root();
//! let a = t.child_by_block(root, BlockId(1)).unwrap();
//! assert_eq!(t.weight(a), 5);                       // node a: weight 5
//! assert_eq!(t.child_probability(root, a), 5.0 / 6.0);
//! ```

pub(crate) mod arena;
pub mod candidates;
pub mod io;
pub mod node;
pub mod snap;
pub mod stats;
pub mod tree;

pub use candidates::{Candidate, CandidateBatch};
pub use io::{read_tree, to_dot, write_tree, TreeIoError};
pub use node::NodeId;
pub use snap::SnapshotInfo;
pub use stats::TreeStats;
pub use tree::{AccessOutcome, OverflowPolicy, PrefetchTree};
