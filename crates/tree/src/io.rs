//! Prefetch-tree persistence and inspection.
//!
//! A trained tree is a valuable artifact — the paper's Section 9.3 shows a
//! ~1.25 MB tree captures a workload's structure — so an operating system
//! (or a long-running simulation campaign) wants to checkpoint it. This
//! module provides:
//!
//! * a compact binary snapshot ([`write_tree`] / [`read_tree`]): preorder
//!   node stream with varint weights, magic + version header, corruption
//!   detected on load;
//! * Graphviz export ([`to_dot`]) for inspecting what the tree learned.
//!
//! Statistics counters and the LRU recency order are *not* serialized: a
//! reloaded tree predicts identically but starts fresh statistics and
//! node-eviction recency (documented limitation; weights are what matter).

use crate::node::NodeId;
use crate::tree::PrefetchTree;
use prefetch_trace::BlockId;
use std::fmt::Write as _;
use std::io::{Read, Write};

const MAGIC: [u8; 4] = *b"PFLZ";
const VERSION: u16 = 1;

/// Errors from tree snapshot I/O.
#[derive(Debug)]
pub enum TreeIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic or version.
    BadHeader,
    /// A `pftree-snap` header with a version this reader does not speak
    /// (version negotiation: refuse loudly rather than misparse).
    UnsupportedVersion(u16),
    /// The decompressed payload does not hash to the header's FNV-1a
    /// fingerprint.
    FingerprintMismatch {
        /// Fingerprint recorded in the header.
        expected: u64,
        /// Fingerprint of the payload actually read.
        actual: u64,
    },
    /// The stream ended early or contained invalid structure.
    Corrupt(&'static str),
}

impl std::fmt::Display for TreeIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeIoError::Io(e) => write!(f, "tree i/o error: {e}"),
            TreeIoError::BadHeader => write!(f, "not a prefetch-tree snapshot (bad magic/version)"),
            TreeIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported pftree-snap version {v} (this reader speaks v1)")
            }
            TreeIoError::FingerprintMismatch { expected, actual } => write!(
                f,
                "snapshot fingerprint mismatch: header {expected:#018x}, payload {actual:#018x}"
            ),
            TreeIoError::Corrupt(what) => write!(f, "corrupt tree snapshot: {what}"),
        }
    }
}

impl std::error::Error for TreeIoError {}

impl From<std::io::Error> for TreeIoError {
    fn from(e: std::io::Error) -> Self {
        TreeIoError::Io(e)
    }
}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TreeIoError> {
    let mut v: u64 = 0;
    for shift in (0..70).step_by(7) {
        let byte = *buf.get(*pos).ok_or(TreeIoError::Corrupt("truncated varint"))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TreeIoError::Corrupt("oversized varint"))
}

/// Serialize a snapshot of `tree`.
///
/// Format after the 6-byte header: root weight (varint), then a preorder
/// stream where each node is `block (varint), weight (varint),
/// child_count (varint)` followed by its children recursively.
pub fn write_tree<W: Write>(tree: &PrefetchTree, w: &mut W) -> Result<(), TreeIoError> {
    let mut out = Vec::with_capacity(16 + tree.node_count() * 6);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_varint(&mut out, tree.weight(tree.root()));
    put_varint(&mut out, tree.child_count(tree.root()) as u64);
    // Iterative preorder to avoid recursion depth limits on long chains.
    let mut stack: Vec<NodeId> = tree.children(tree.root()).collect();
    stack.reverse();
    while let Some(n) = stack.pop() {
        put_varint(&mut out, tree.block(n).expect("non-root").0);
        put_varint(&mut out, tree.weight(n));
        put_varint(&mut out, tree.child_count(n) as u64);
        let mut kids: Vec<NodeId> = tree.children(n).collect();
        kids.reverse();
        stack.extend(kids);
    }
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

/// Load a snapshot written by [`write_tree`]. The reloaded tree predicts
/// identically (same structure, weights, child ordering); parse cursor,
/// statistics and LRU recency start fresh.
pub fn read_tree<R: Read>(r: &mut R) -> Result<PrefetchTree, TreeIoError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 6 || buf[..4] != MAGIC || buf[4..6] != VERSION.to_le_bytes() {
        return Err(TreeIoError::BadHeader);
    }
    let mut pos = 6usize;
    let root_weight = get_varint(&buf, &mut pos)?;
    let root_children = get_varint(&buf, &mut pos)? as usize;

    let mut tree = PrefetchTree::new();
    tree.restore_root_weight(root_weight);
    // (parent node, children still to read, weight budget left at parent):
    // a node's children can never outweigh the node (LZ invariant).
    let mut stack: Vec<(NodeId, usize, u64)> = vec![(tree.root(), root_children, root_weight)];
    while let Some(&mut (parent, ref mut remaining, ref mut budget)) = stack.last_mut() {
        if *remaining == 0 {
            stack.pop();
            continue;
        }
        *remaining -= 1;
        let block = BlockId(get_varint(&buf, &mut pos)?);
        let weight = get_varint(&buf, &mut pos)?;
        if weight == 0 {
            return Err(TreeIoError::Corrupt("zero node weight"));
        }
        if weight > *budget {
            return Err(TreeIoError::Corrupt("children outweigh their parent"));
        }
        *budget -= weight;
        let child_count = get_varint(&buf, &mut pos)? as usize;
        if child_count > 1 << 24 {
            return Err(TreeIoError::Corrupt("absurd child count"));
        }
        let node = tree.restore_child(parent, block, weight).map_err(TreeIoError::Corrupt)?;
        stack.push((node, child_count, weight));
    }
    if pos != buf.len() {
        return Err(TreeIoError::Corrupt("trailing bytes"));
    }
    tree.check_restored();
    Ok(tree)
}

/// Render the subtree below `anchor` (up to `max_depth` levels and
/// `max_nodes` nodes) as Graphviz dot, labelling edges with conditional
/// probabilities.
pub fn to_dot(tree: &PrefetchTree, anchor: NodeId, max_depth: u32, max_nodes: usize) -> String {
    let mut out = String::from("digraph prefetch_tree {\n  rankdir=LR;\n  node [shape=box];\n");
    let label = |n: NodeId| match tree.block(n) {
        Some(b) => format!("b{} (w={})", b.0, tree.weight(n)),
        None => format!("root (w={})", tree.weight(n)),
    };
    let _ = writeln!(out, "  n{} [label=\"{}\"];", anchor.index(), label(anchor));
    let mut queue = std::collections::VecDeque::from([(anchor, 0u32)]);
    let mut emitted = 1usize;
    while let Some((n, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for c in tree.children(n) {
            if emitted >= max_nodes {
                let _ = writeln!(out, "  // truncated at {max_nodes} nodes");
                out.push_str("}\n");
                return out;
            }
            emitted += 1;
            let _ = writeln!(out, "  n{} [label=\"{}\"];", c.index(), label(c));
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:.2}\"];",
                n.index(),
                c.index(),
                tree.child_probability(n, c)
            );
            queue.push_back((c, depth + 1));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> PrefetchTree {
        let mut t = PrefetchTree::new();
        for b in [1u64, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2] {
            t.record_access(BlockId(b));
        }
        t
    }

    fn round_trip(t: &PrefetchTree) -> PrefetchTree {
        let mut buf = Vec::new();
        write_tree(t, &mut buf).unwrap();
        read_tree(&mut &buf[..]).unwrap()
    }

    #[test]
    fn snapshot_preserves_structure_and_weights() {
        let t = trained();
        let back = round_trip(&t);
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.weight(back.root()), t.weight(t.root()));
        // Spot-check the paper example's nodes.
        let a = back.child_by_block(back.root(), BlockId(1)).expect("node a");
        assert_eq!(back.weight(a), 5);
        let ab = back.child_by_block(a, BlockId(2)).expect("node ab");
        assert_eq!(back.weight(ab), 3);
        back.check_invariants();
    }

    #[test]
    fn reloaded_tree_predicts_identically() {
        let t = trained();
        let back = round_trip(&t);
        let orig: Vec<_> = t.candidates_below(t.root(), 3, 16);
        let rest: Vec<_> = back.candidates_below(back.root(), 3, 16);
        assert_eq!(orig.len(), rest.len());
        for (a, b) in orig.iter().zip(&rest) {
            assert_eq!(a.block, b.block);
            assert!((a.probability - b.probability).abs() < 1e-12);
            assert_eq!(a.depth, b.depth);
        }
    }

    #[test]
    fn reloaded_tree_continues_training() {
        let t = trained();
        let mut back = round_trip(&t);
        for b in [1u64, 2, 3, 1, 2, 3] {
            back.record_access(BlockId(b));
        }
        back.check_invariants();
    }

    #[test]
    fn big_random_tree_round_trips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut t = PrefetchTree::new();
        for _ in 0..50_000 {
            t.record_access(BlockId(rng.gen_range(0..200)));
        }
        let back = round_trip(&t);
        assert_eq!(back.node_count(), t.node_count());
        back.check_invariants();
    }

    #[test]
    fn corruption_is_detected() {
        let t = trained();
        let mut buf = Vec::new();
        write_tree(&t, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_tree(&mut &bad[..]), Err(TreeIoError::BadHeader)));
        // Truncations must error, not panic.
        for cut in 1..buf.len().min(12) {
            let shorter = &buf[..buf.len() - cut];
            assert!(read_tree(&mut &shorter[..]).is_err(), "cut {cut} accepted");
        }
        // Trailing garbage.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(read_tree(&mut &padded[..]).is_err());
    }

    #[test]
    fn dot_export_contains_nodes_and_probabilities() {
        let t = trained();
        let dot = to_dot(&t, t.root(), 3, 100);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("root (w=6)"));
        assert!(dot.contains("b1 (w=5)"));
        assert!(dot.contains("0.83")); // p(a|root) = 5/6
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_export_truncates() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut t = PrefetchTree::new();
        for _ in 0..5000 {
            t.record_access(BlockId(rng.gen_range(0..500)));
        }
        let dot = to_dot(&t, t.root(), 4, 20);
        assert!(dot.contains("truncated"));
    }
}
