//! The prefetch tree proper: LZ78 parsing, weights, probabilities, and LRU
//! node limiting.

use crate::arena::Arena;
use crate::node::{NodeId, NIL, PAPER_BYTES};
use crate::snap::RawTree;
use crate::stats::TreeStats;
use prefetch_trace::BlockId;

/// What happened when an access was recorded — the per-reference signals
/// behind the paper's Tables 2 and 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The block was present as a child of the cursor before the access
    /// (the paper's definition of a *predictable* request, Section 9.4).
    pub predictable: bool,
    /// If the cursor node had a last-visited child, whether this access
    /// repeated it (`None` when the node had no previous visit —
    /// Section 9.6 / Table 3 counts only nodes with history).
    pub lvc_repeat: Option<bool>,
    /// A new node was created (the access ended a substring).
    pub created_node: bool,
    /// The parse returned to the root after this access.
    pub reset: bool,
}

/// What a node-budgeted tree does when a novel access would push it past
/// its limit (Section 9.3 memory study; the budget guards the one
/// unbounded structure in the system).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Evict least-recently-visited leaves to make room (the paper's
    /// scheme: substrings are kept in an LRU list and the least recently
    /// used discarded).
    #[default]
    Evict,
    /// Stop learning: refuse the node creation (counting it in
    /// [`TreeStats::nodes_capped`]) and keep the existing structure
    /// intact. The parse still resets, so prediction over the frozen
    /// structure continues to work.
    Freeze,
}

/// The LZ prefetch tree.
///
/// See the crate docs for semantics. Node storage is the struct-of-arrays
/// [`Arena`] (parallel field vectors plus one shared child slab); all
/// operations are O(1) amortized except candidate enumeration
/// (proportional to candidates returned) and node eviction (bounded leaf
/// scan).
#[derive(Clone, Debug)]
pub struct PrefetchTree {
    arena: Arena,
    /// parse position
    cursor: u32,
    /// true before the first access of a substring (root weight is bumped
    /// lazily so it equals the number of substrings *started*)
    fresh_substring: bool,
    /// maximum live node count (root exempt); `usize::MAX` = unlimited
    node_limit: usize,
    /// what to do when a creation would exceed `node_limit`
    overflow: OverflowPolicy,
    /// intrusive LRU list over non-root nodes: head = MRU, tail = LRU
    lru_head: u32,
    lru_tail: u32,
    stats: TreeStats,
}

impl Default for PrefetchTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchTree {
    /// An unlimited tree.
    pub fn new() -> Self {
        Self::with_node_limit(usize::MAX)
    }

    /// A tree that holds at most `node_limit` non-root nodes, evicting the
    /// least-recently-visited leaves when full (the paper's Section 9.3
    /// memory-limiting scheme).
    ///
    /// # Panics
    /// Panics if `node_limit == 0`.
    pub fn with_node_limit(node_limit: usize) -> Self {
        Self::with_node_budget(node_limit, OverflowPolicy::Evict)
    }

    /// A tree that holds at most `node_limit` non-root nodes, with an
    /// explicit [`OverflowPolicy`] deciding what happens when a novel
    /// access would exceed the budget.
    ///
    /// # Panics
    /// Panics if `node_limit == 0`.
    pub fn with_node_budget(node_limit: usize, overflow: OverflowPolicy) -> Self {
        assert!(node_limit > 0, "node limit must be positive");
        PrefetchTree {
            arena: Arena::with_root(),
            cursor: 0,
            fresh_substring: true,
            node_limit,
            overflow,
            lru_head: NIL,
            lru_tail: NIL,
            stats: TreeStats::default(),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The current parse position. Prefetch candidates are enumerated below
    /// this node.
    pub fn cursor(&self) -> NodeId {
        NodeId(self.cursor)
    }

    /// Number of live nodes, excluding the root.
    pub fn node_count(&self) -> usize {
        self.arena.len() - self.arena.free.len() - 1
    }

    /// The node budget this tree was built with (`usize::MAX` = unlimited).
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// The overflow policy this tree was built with.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Visit count of a node.
    pub fn weight(&self, n: NodeId) -> u64 {
        self.arena.weights[n.0 as usize]
    }

    /// The block a node represents (`None` for the root).
    pub fn block(&self, n: NodeId) -> Option<BlockId> {
        if n.0 == 0 {
            None
        } else {
            Some(BlockId(self.arena.blocks[n.0 as usize]))
        }
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.arena.parents[n.0 as usize];
        if p == NIL {
            None
        } else {
            Some(NodeId(p))
        }
    }

    /// Number of children of a node.
    pub fn child_count(&self, n: NodeId) -> usize {
        self.arena.ch_len[n.0 as usize] as usize
    }

    /// Iterate a node's children.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.arena.children(n.0).iter().map(|&c| NodeId(c))
    }

    /// The child of `n` representing `block`, if present.
    pub fn child_by_block(&self, n: NodeId, block: BlockId) -> Option<NodeId> {
        self.arena.edges.get(&(n.0, block.0)).map(|&c| NodeId(c))
    }

    /// The child taken on the most recent visit to `n`.
    pub fn last_visited_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.arena.lvc[n.0 as usize];
        if c == NIL {
            None
        } else {
            Some(NodeId(c))
        }
    }

    /// Conditional probability `weight(child) / weight(parent)` that
    /// `child` follows `parent` (paper Section 2). Returns 0 for a
    /// zero-weight parent.
    pub fn child_probability(&self, parent: NodeId, child: NodeId) -> f64 {
        debug_assert_eq!(self.arena.parents[child.0 as usize], parent.0);
        let pw = self.arena.weights[parent.0 as usize];
        if pw == 0 {
            0.0
        } else {
            self.arena.weights[child.0 as usize] as f64 / pw as f64
        }
    }

    /// Approximate resident memory of the tree, counting 40 bytes per node
    /// the way the paper's Figure 13 does. For the arena's true footprint
    /// use [`PrefetchTree::bytes_in_use`].
    pub fn approx_memory_bytes(&self) -> usize {
        self.node_count() * PAPER_BYTES
    }

    /// Exact heap bytes owned by this tree, computed from container
    /// capacities (see [`Arena::bytes_in_use`]). This is what `pfserve`
    /// admission control charges per tenant.
    pub fn bytes_in_use(&self) -> usize {
        std::mem::size_of::<Self>() + self.arena.bytes_in_use()
    }

    /// Record one access and advance the parse. Returns the per-access
    /// outcome used by the simulator's statistics.
    pub fn record_access(&mut self, block: BlockId) -> AccessOutcome {
        self.stats.accesses += 1;
        if self.fresh_substring {
            // Root weight counts substrings started.
            self.arena.weights[0] += 1;
            self.fresh_substring = false;
        }
        let cur = self.cursor;
        let existing = self.arena.edges.get(&(cur, block.0)).copied();

        // Table 2: was the request predictable from the current position?
        let predictable = existing.is_some();
        if predictable {
            self.stats.predictable += 1;
        }

        // Table 3: does this visit repeat the node's last-visited child?
        let lvc = self.arena.lvc[cur as usize];
        let lvc_repeat = if lvc != NIL {
            self.stats.lvc_opportunities += 1;
            let repeat = self.arena.blocks[lvc as usize] == block.0 && existing == Some(lvc);
            if repeat {
                self.stats.lvc_repeats += 1;
            }
            Some(repeat)
        } else {
            None
        };

        match existing {
            Some(child) => {
                self.increment_child_weight(cur, child);
                self.arena.lvc[cur as usize] = child;
                self.cursor = child;
                self.touch_lru(child);
                AccessOutcome { predictable, lvc_repeat, created_node: false, reset: false }
            }
            None => {
                if self.overflow == OverflowPolicy::Freeze && self.node_count() >= self.node_limit {
                    // At budget and frozen: refuse the creation but keep
                    // the parse semantics — the novel access still ends
                    // the substring.
                    self.stats.nodes_capped += 1;
                    self.cursor = 0;
                    self.fresh_substring = true;
                    self.stats.resets += 1;
                    return AccessOutcome {
                        predictable,
                        lvc_repeat,
                        created_node: false,
                        reset: true,
                    };
                }
                let child = self.create_child(cur, block);
                self.arena.weights[child as usize] = 1;
                self.arena.lvc[cur as usize] = child;
                self.touch_lru(child);
                // Novel access ends the substring: back to the root.
                self.cursor = 0;
                self.fresh_substring = true;
                self.stats.resets += 1;
                self.maybe_evict();
                AccessOutcome { predictable, lvc_repeat, created_node: true, reset: true }
            }
        }
    }

    /// Reset the parse to the root without recording an access (used by
    /// tests and by policies that re-anchor after trace discontinuities).
    pub fn reset_cursor(&mut self) {
        self.cursor = 0;
        self.fresh_substring = true;
    }

    /// A *prediction anchor* for the current position: the cursor itself,
    /// except right after an LZ reset, where the parse stands at the root
    /// and has forgotten the block just accessed. Re-anchoring at the
    /// root's child for `last_block` (the order-1 context) recovers
    /// predictions across substring boundaries — an extension beyond the
    /// paper (its Section 9.5/9.6 shows a large gap between `tree` and
    /// `perfect-selector` that boundary blindness contributes to).
    pub fn prediction_anchor(&self, last_block: BlockId) -> NodeId {
        if self.cursor != 0 {
            return NodeId(self.cursor);
        }
        self.child_by_block(NodeId(0), last_block).unwrap_or(NodeId(0))
    }

    /// Increment a child's weight, keeping the parent's child list sorted
    /// by descending weight (candidate enumeration prunes on this order).
    /// The child swaps with the leftmost member of its old weight class:
    /// O(log k) via binary search, O(1) data movement.
    fn increment_child_weight(&mut self, parent: u32, child: u32) {
        let pos = self.arena.pos_in_parent[child as usize] as usize;
        let w = self.arena.weights[child as usize];
        // Leftmost index in 0..=pos whose weight equals w (the weight
        // class is contiguous because the list is sorted descending).
        let class_start = {
            let mut lo = 0usize;
            let mut hi = pos;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.arena.weights[self.arena.child_at(parent, mid) as usize] > w {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        if class_start != pos {
            self.arena.child_swap(parent, class_start, pos);
            let other = self.arena.child_at(parent, pos);
            self.arena.pos_in_parent[other as usize] = pos as u32;
            self.arena.pos_in_parent[child as usize] = class_start as u32;
        }
        self.arena.weights[child as usize] = w + 1;
    }

    fn create_child(&mut self, parent: u32, block: BlockId) -> u32 {
        let pos = self.arena.ch_len[parent as usize];
        let idx = self.arena.alloc(block, parent, pos);
        self.arena.child_push(parent, idx);
        self.arena.edges.insert((parent, block.0), idx);
        self.stats.nodes_created += 1;
        idx
    }

    /// Move `n` to the MRU end of the node LRU list.
    fn touch_lru(&mut self, n: u32) {
        debug_assert_ne!(n, 0, "root is not in the LRU list");
        // Unlink if present.
        let (prev, next) = (self.arena.lru_prev[n as usize], self.arena.lru_next[n as usize]);
        if prev != NIL || next != NIL || self.lru_head == n {
            if prev != NIL {
                self.arena.lru_next[prev as usize] = next;
            } else {
                self.lru_head = next;
            }
            if next != NIL {
                self.arena.lru_prev[next as usize] = prev;
            } else {
                self.lru_tail = prev;
            }
        }
        // Push front.
        self.arena.lru_prev[n as usize] = NIL;
        self.arena.lru_next[n as usize] = self.lru_head;
        if self.lru_head != NIL {
            self.arena.lru_prev[self.lru_head as usize] = n;
        }
        self.lru_head = n;
        if self.lru_tail == NIL {
            self.lru_tail = n;
        }
    }

    fn unlink_lru(&mut self, n: u32) {
        let (prev, next) = (self.arena.lru_prev[n as usize], self.arena.lru_next[n as usize]);
        if prev != NIL {
            self.arena.lru_next[prev as usize] = next;
        } else if self.lru_head == n {
            self.lru_head = next;
        }
        if next != NIL {
            self.arena.lru_prev[next as usize] = prev;
        } else if self.lru_tail == n {
            self.lru_tail = prev;
        }
        self.arena.lru_prev[n as usize] = NIL;
        self.arena.lru_next[n as usize] = NIL;
    }

    /// Enforce the node limit by evicting least-recently-visited leaves
    /// (the paper maintains substrings in an LRU list and discards the
    /// least recently used, Section 9.3).
    fn maybe_evict(&mut self) {
        const MAX_SCAN: usize = 64;
        while self.node_count() > self.node_limit {
            // Walk from the LRU end looking for an evictable leaf. The
            // cursor node is pinned (the parse stands on it).
            let mut candidate = self.lru_tail;
            let mut scanned = 0;
            let victim = loop {
                if candidate == NIL {
                    break NIL;
                }
                if scanned >= MAX_SCAN {
                    break NIL;
                }
                if self.arena.is_leaf(candidate) && candidate != self.cursor {
                    break candidate;
                }
                candidate = self.arena.lru_prev[candidate as usize];
                scanned += 1;
            };
            if victim != NIL {
                self.remove_leaf(victim);
                continue;
            }
            // Fallback (rare: LRU tail region is all-internal): evict the
            // tail node's entire subtree, sparing the cursor's path.
            let tail = self.lru_tail;
            if tail == NIL || tail == self.cursor || self.is_ancestor(tail, self.cursor) {
                // Nothing safely evictable; give up this round rather than
                // loop forever. (Can only happen with tiny limits.)
                return;
            }
            self.remove_subtree(tail);
        }
    }

    /// Whether `a` is an ancestor of `b` (or equal).
    fn is_ancestor(&self, a: u32, b: u32) -> bool {
        let mut n = b;
        while n != NIL {
            if n == a {
                return true;
            }
            n = self.arena.parents[n as usize];
        }
        false
    }

    fn remove_leaf(&mut self, n: u32) {
        debug_assert!(self.arena.is_leaf(n));
        debug_assert_ne!(n, 0);
        let parent = self.arena.parents[n as usize];
        let pos = self.arena.pos_in_parent[n as usize] as usize;
        let block = self.arena.blocks[n as usize];
        // Shifting removal keeps the children sorted by weight; the
        // arena refreshes the shifted suffix's positions. Eviction only
        // happens under a node limit, which also bounds the fan-out.
        debug_assert_eq!(self.arena.child_at(parent, pos), n);
        self.arena.child_remove_at(parent, pos);
        if self.arena.lvc[parent as usize] == n {
            self.arena.lvc[parent as usize] = NIL;
        }
        self.arena.edges.remove(&(parent, block));
        self.unlink_lru(n);
        self.arena.release(n);
        self.stats.nodes_evicted += 1;
    }

    fn remove_subtree(&mut self, n: u32) {
        // Depth-first removal, leaves first.
        let mut stack = vec![n];
        let mut order = Vec::new();
        while let Some(x) = stack.pop() {
            order.push(x);
            stack.extend_from_slice(self.arena.children(x));
        }
        for &x in order.iter().rev() {
            self.remove_leaf(x);
        }
    }

    /// Snapshot support: set the root weight on a freshly created tree.
    pub(crate) fn restore_root_weight(&mut self, weight: u64) {
        debug_assert_eq!(self.node_count(), 0, "restore into a fresh tree only");
        self.arena.weights[0] = weight;
    }

    /// Snapshot support: append a child with an explicit weight. Children
    /// must be appended in non-increasing weight order (the serialized
    /// order); violations are reported, not panicked, so corrupt
    /// snapshots fail cleanly.
    pub(crate) fn restore_child(
        &mut self,
        parent: NodeId,
        block: BlockId,
        weight: u64,
    ) -> Result<NodeId, &'static str> {
        if self.arena.edges.contains_key(&(parent.0, block.0)) {
            return Err("duplicate child block");
        }
        if let Some(&last) = self.arena.children(parent.0).last() {
            if self.arena.weights[last as usize] < weight {
                return Err("children not in descending weight order");
            }
        }
        let idx = self.create_child(parent.0, block);
        self.arena.weights[idx as usize] = weight;
        self.touch_lru(idx);
        // Snapshot restoration is not live training.
        self.stats.nodes_created -= 1;
        Ok(NodeId(idx))
    }

    /// Snapshot support: debug-verify a freshly restored tree.
    pub(crate) fn check_restored(&self) {
        #[cfg(debug_assertions)]
        self.check_invariants();
    }

    /// Dump complete tree state (arena arrays, free list, parse position,
    /// LRU order, stats, budget) for the `pftree-snap/v1` writer. The dump
    /// is everything needed to continue training bit-identically.
    pub(crate) fn to_raw(&self) -> RawTree {
        let n = self.arena.len();
        RawTree {
            node_limit: if self.node_limit == usize::MAX {
                u64::MAX
            } else {
                self.node_limit as u64
            },
            overflow: match self.overflow {
                OverflowPolicy::Evict => 0,
                OverflowPolicy::Freeze => 1,
            },
            cursor: self.cursor,
            fresh_substring: self.fresh_substring,
            lru_head: self.lru_head,
            lru_tail: self.lru_tail,
            stats: self.stats,
            blocks: self.arena.blocks.clone(),
            weights: self.arena.weights.clone(),
            lvc: self.arena.lvc.clone(),
            lru_prev: self.arena.lru_prev.clone(),
            lru_next: self.arena.lru_next.clone(),
            children: (0..n).map(|i| self.arena.children(i as u32).to_vec()).collect(),
            free: self.arena.free.clone(),
        }
    }

    /// Rebuild a tree from a decoded [`RawTree`], validating every
    /// structural invariant so corrupt or adversarial snapshots fail with
    /// an error instead of panicking (or worse, yielding a tree that
    /// panics later). Child slots and the edge index are rebuilt
    /// compactly; node ids, child order, LRU order, free-list order, the
    /// parse position and statistics are restored verbatim, so continued
    /// training is bit-identical to the snapshotted tree's future.
    pub(crate) fn from_raw(raw: RawTree) -> Result<PrefetchTree, &'static str> {
        let n = raw.blocks.len();
        if n == 0 || n > NIL as usize {
            return Err("node array empty or too large");
        }
        if raw.weights.len() != n
            || raw.lvc.len() != n
            || raw.lru_prev.len() != n
            || raw.lru_next.len() != n
            || raw.children.len() != n
        {
            return Err("array length mismatch");
        }
        if raw.node_limit == 0 {
            return Err("zero node limit");
        }
        if raw.overflow > 1 {
            return Err("unknown overflow policy");
        }

        // Liveness: everything not on the free list. The root is never free.
        let mut live = vec![true; n];
        for &f in &raw.free {
            let fi = f as usize;
            if fi == 0 || fi >= n {
                return Err("free-list entry out of range");
            }
            if !live[fi] {
                return Err("duplicate free-list entry");
            }
            live[fi] = false;
        }
        let live_count = n - raw.free.len();

        // Children: derive parents/pos_in_parent, enforcing single-parent,
        // weight order, and that freed nodes hold no children.
        let mut parents = vec![NIL; n];
        let mut pos_in_parent = vec![NIL; n];
        for (i, kids) in raw.children.iter().enumerate() {
            if !live[i] {
                if !kids.is_empty() {
                    return Err("freed node has children");
                }
                continue;
            }
            let mut prev_weight = u64::MAX;
            let mut child_sum = 0u64;
            for (pos, &c) in kids.iter().enumerate() {
                let ci = c as usize;
                if ci == 0 || ci >= n || !live[ci] {
                    return Err("child reference out of range or dead");
                }
                if parents[ci] != NIL {
                    return Err("node has two parents");
                }
                parents[ci] = i as u32;
                pos_in_parent[ci] = pos as u32;
                let w = raw.weights[ci];
                if w == 0 {
                    return Err("zero node weight");
                }
                if w > prev_weight {
                    return Err("children not in descending weight order");
                }
                prev_weight = w;
                child_sum = child_sum.checked_add(w).ok_or("weight overflow")?;
            }
            if child_sum > raw.weights[i] {
                return Err("children outweigh their parent");
            }
        }
        // Reachability from the root covers every live node exactly once
        // (rules out cycles and orphans).
        let mut reached = 1usize;
        let mut stack = vec![0u32];
        while let Some(x) = stack.pop() {
            for &c in &raw.children[x as usize] {
                reached += 1;
                stack.push(c);
            }
        }
        if reached != live_count {
            return Err("unreachable nodes");
        }

        // Parse position must be a live node.
        if raw.cursor as usize >= n || !live[raw.cursor as usize] {
            return Err("cursor out of range or dead");
        }
        // lvc must be NIL or an actual child of its node.
        for (i, &l) in raw.lvc.iter().enumerate().take(n) {
            if l != NIL && (!live[i] || (l as usize) >= n || parents[l as usize] != i as u32) {
                return Err("last-visited child is not a child");
            }
        }
        // The LRU list must thread every live non-root node exactly once.
        let mut seen = 0usize;
        let mut prev = NIL;
        let mut cur = raw.lru_head;
        while cur != NIL {
            let ci = cur as usize;
            if ci == 0 || ci >= n || !live[ci] || seen >= live_count {
                return Err("lru link out of range, dead, or cyclic");
            }
            if raw.lru_prev[ci] != prev {
                return Err("lru prev link inconsistent");
            }
            seen += 1;
            prev = cur;
            cur = raw.lru_next[ci];
        }
        if prev != raw.lru_tail || seen != live_count - 1 {
            return Err("lru list does not cover live nodes");
        }

        // Rebuild child slots compactly (minimal power-of-two class per
        // list — slab geometry is not behavior, see DESIGN.md §12) and the
        // edge index.
        let mut arena = Arena::with_root();
        arena.blocks = raw.blocks;
        arena.weights = raw.weights;
        arena.parents = parents;
        arena.pos_in_parent = pos_in_parent;
        arena.lvc = raw.lvc;
        arena.lru_prev = raw.lru_prev;
        arena.lru_next = raw.lru_next;
        arena.ch_start = vec![0; n];
        arena.ch_len = vec![0; n];
        arena.ch_class = vec![crate::arena::NO_CLASS; n];
        arena.parents[0] = NIL;
        arena.pos_in_parent[0] = NIL;
        arena.free = raw.free;
        for (i, kids) in raw.children.iter().enumerate() {
            for &c in kids {
                arena.child_push(i as u32, c);
                if arena.edges.insert((i as u32, arena.blocks[c as usize]), c).is_some() {
                    return Err("duplicate child block");
                }
            }
        }

        let tree = PrefetchTree {
            arena,
            cursor: raw.cursor,
            fresh_substring: raw.fresh_substring,
            node_limit: if raw.node_limit == u64::MAX {
                usize::MAX
            } else {
                raw.node_limit as usize
            },
            overflow: if raw.overflow == 0 {
                OverflowPolicy::Evict
            } else {
                OverflowPolicy::Freeze
            },
            lru_head: raw.lru_head,
            lru_tail: raw.lru_tail,
            stats: raw.stats,
        };
        tree.check_restored();
        Ok(tree)
    }

    /// Validate internal invariants (test support; O(nodes)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut live = 0usize;
        for i in 0..self.arena.len() {
            if self.arena.free.contains(&(i as u32)) {
                continue;
            }
            live += 1;
            // Children sum ≤ weight; sorted by descending weight; edges
            // map agrees.
            let mut child_sum = 0u64;
            let mut prev_weight = u64::MAX;
            for (pos, &c) in self.arena.children(i as u32).iter().enumerate() {
                assert_eq!(self.arena.parents[c as usize], i as u32, "parent link broken at {c}");
                assert_eq!(
                    self.arena.pos_in_parent[c as usize] as usize, pos,
                    "pos_in_parent broken at {c}"
                );
                assert_eq!(
                    self.arena.edges.get(&(i as u32, self.arena.blocks[c as usize])),
                    Some(&c),
                    "edge map broken at {c}"
                );
                let w = self.arena.weights[c as usize];
                assert!(w <= prev_weight, "children not weight-sorted at {i}");
                prev_weight = w;
                child_sum += w;
            }
            assert!(
                child_sum <= self.arena.weights[i],
                "children weight {child_sum} exceeds node weight {} at {i}",
                self.arena.weights[i]
            );
        }
        assert_eq!(live, self.node_count() + 1, "live node accounting broken");
        assert_eq!(self.arena.edges.len(), self.node_count(), "edge count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(a): accesses (a)(ac)(ab)(aba)(abb)(b) with
    /// a=1, b=2, c=3.
    const FIG1_ACCESSES: [u64; 12] = [1, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2];

    fn fig1_tree() -> PrefetchTree {
        let mut t = PrefetchTree::new();
        for b in FIG1_ACCESSES {
            t.record_access(BlockId(b));
        }
        t
    }

    #[test]
    fn paper_figure_1a_weights() {
        let t = fig1_tree();
        let root = t.root();
        let a = t.child_by_block(root, BlockId(1)).expect("node a");
        let b_root = t.child_by_block(root, BlockId(2)).expect("node b under root");
        let c = t.child_by_block(a, BlockId(3)).expect("node c under a");
        let ab = t.child_by_block(a, BlockId(2)).expect("node b under a");
        let aba = t.child_by_block(ab, BlockId(1)).expect("node a under ab");
        let abb = t.child_by_block(ab, BlockId(2)).expect("node b under ab");
        assert_eq!(t.weight(a), 5);
        assert_eq!(t.weight(b_root), 1);
        assert_eq!(t.weight(c), 1);
        assert_eq!(t.weight(ab), 3);
        assert_eq!(t.weight(aba), 1);
        assert_eq!(t.weight(abb), 1);
        // 6 substrings → root weight 6.
        assert_eq!(t.weight(root), 6);
        assert_eq!(t.node_count(), 6);
        t.check_invariants();
    }

    #[test]
    fn paper_figure_1b_after_b_from_root() {
        // Figure 1(b): one more access of b from the root increments b.
        let mut t = fig1_tree();
        let out = t.record_access(BlockId(2));
        assert!(out.predictable, "b is now a child of root");
        assert!(!out.created_node);
        let b_root = t.child_by_block(t.root(), BlockId(2)).unwrap();
        assert_eq!(t.weight(b_root), 2);
        assert_eq!(t.weight(t.root()), 7);
        assert_eq!(t.cursor(), b_root);
    }

    #[test]
    fn probabilities_follow_weights() {
        let t = fig1_tree();
        let root = t.root();
        let a = t.child_by_block(root, BlockId(1)).unwrap();
        let ab = t.child_by_block(a, BlockId(2)).unwrap();
        assert!((t.child_probability(root, a) - 5.0 / 6.0).abs() < 1e-12);
        assert!((t.child_probability(a, ab) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn substring_parse_matches_paper() {
        // Count resets: one per substring = 6.
        let mut t = PrefetchTree::new();
        let mut resets = 0;
        for b in FIG1_ACCESSES {
            if t.record_access(BlockId(b)).reset {
                resets += 1;
            }
        }
        assert_eq!(resets, 6);
        assert_eq!(t.stats().resets, 6);
        assert_eq!(t.stats().nodes_created, 6);
    }

    #[test]
    fn predictability_counting() {
        let mut t = PrefetchTree::new();
        // First pass over a,b,a,b creates nodes; second pass is partly
        // predictable.
        let mut predictable = 0;
        for b in [1u64, 2, 1, 2, 1, 2] {
            if t.record_access(BlockId(b)).predictable {
                predictable += 1;
            }
        }
        // Parse: (1)(2)(1 2)(1 2…)
        //  1: root has no child 1 → not predictable, create, reset
        //  2: root has no child 2 → not predictable, create, reset
        //  1: root has child 1 → predictable, cursor=a
        //  2: a has no child 2 → not predictable, create, reset
        //  1: predictable (root child), cursor=a
        //  2: a now has child 2 → predictable, cursor=ab
        assert_eq!(predictable, 3);
        assert_eq!(t.stats().predictable, 3);
        assert_eq!(t.stats().accesses, 6);
    }

    #[test]
    fn lvc_tracking() {
        let mut t = PrefetchTree::new();
        // root visits: each substring start. Pattern: 1,1,1 → substrings
        // (1)(1 1)(1 …
        let o1 = t.record_access(BlockId(1)); // create 1; root lvc=1
        assert_eq!(o1.lvc_repeat, None); // root had no lvc yet
        let o2 = t.record_access(BlockId(1)); // root→1 again: lvc repeat
        assert_eq!(o2.lvc_repeat, Some(true));
        let o3 = t.record_access(BlockId(1)); // at node 1: no lvc yet
        assert_eq!(o3.lvc_repeat, None);
        let o4 = t.record_access(BlockId(2)); // at root (reset): lvc=1, access 2
        assert_eq!(o4.lvc_repeat, Some(false));
        assert_eq!(t.stats().lvc_opportunities, 2);
        assert_eq!(t.stats().lvc_repeats, 1);
    }

    #[test]
    fn node_limit_evicts_lru_leaves() {
        let mut t = PrefetchTree::with_node_limit(8);
        // Stream of unique blocks: every access creates a root child leaf.
        for b in 0..100u64 {
            t.record_access(BlockId(b));
        }
        assert!(t.node_count() <= 8, "count {}", t.node_count());
        assert_eq!(t.stats().nodes_created, 100);
        assert_eq!(t.stats().nodes_evicted, 92);
        t.check_invariants();
        // The survivors are the most recent blocks.
        for b in 96..100u64 {
            assert!(t.child_by_block(t.root(), BlockId(b)).is_some(), "recent block {b} evicted");
        }
        assert!(t.child_by_block(t.root(), BlockId(0)).is_none());
    }

    #[test]
    fn limited_tree_keeps_hot_paths() {
        let mut t = PrefetchTree::with_node_limit(64);
        // A hot repeated pattern plus unique noise.
        for i in 0..2000u64 {
            t.record_access(BlockId(1));
            t.record_access(BlockId(2));
            t.record_access(BlockId(3));
            t.record_access(BlockId(1_000_000 + i)); // unique noise
        }
        t.check_invariants();
        // The hot pattern keeps *some* presence in the tree (which hot
        // block anchors a substring drifts with the LZ parse, so we only
        // require at least one hot root child), while the unique noise
        // leaves are what gets evicted.
        let root = t.root();
        let hot_children =
            [1u64, 2, 3].iter().filter(|&&b| t.child_by_block(root, BlockId(b)).is_some()).count();
        assert!(hot_children >= 1, "all hot blocks evicted from root");
        assert!(t.node_count() <= 64);
    }

    #[test]
    fn eviction_never_removes_cursor() {
        let mut t = PrefetchTree::with_node_limit(2);
        for b in 0..50u64 {
            t.record_access(BlockId(b % 5));
            // After each access the cursor must be a live node: touching
            // it must not panic and invariants must hold.
            let _ = t.cursor();
        }
        t.check_invariants();
    }

    #[test]
    fn weights_equal_visit_counts_on_random_stream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut t = PrefetchTree::new();
        for _ in 0..5000 {
            t.record_access(BlockId(rng.gen_range(0..20)));
        }
        t.check_invariants();
        // Root weight equals substrings *started*: one per completed
        // substring (reset) plus one if the parse stands mid-substring
        // (the cursor is below the root exactly then).
        let mid_substring = (t.cursor() != t.root()) as u64;
        assert_eq!(t.weight(t.root()), t.stats().resets + mid_substring);
    }

    #[test]
    fn prediction_anchor_recovers_context_after_reset() {
        let mut t = PrefetchTree::new();
        // Parse (1)(2)(1 2): after the final access the parse reset to
        // root (node "1 2" was just created)... actually (1 2) completes
        // without a reset only if the edge exists. Build: 1,2,1,2 →
        // substrings (1)(2)(1 2), cursor at root after the last creation.
        for b in [1u64, 2, 1, 2] {
            t.record_access(BlockId(b));
        }
        assert_eq!(t.cursor(), t.root(), "parse should stand at root");
        // Root-anchored prediction forgets that we just accessed 2; the
        // anchor recovers the order-1 context: root's child for block 2.
        let anchor = t.prediction_anchor(BlockId(2));
        assert_ne!(anchor, t.root());
        assert_eq!(t.block(anchor), Some(BlockId(2)));
        // Unknown block: falls back to the root.
        assert_eq!(t.prediction_anchor(BlockId(99)), t.root());
        // Mid-substring the anchor IS the cursor.
        t.record_access(BlockId(1));
        assert_ne!(t.cursor(), t.root());
        assert_eq!(t.prediction_anchor(BlockId(1)), t.cursor());
    }

    #[test]
    fn reset_cursor_restarts_parse() {
        let mut t = fig1_tree();
        t.record_access(BlockId(1));
        assert_ne!(t.cursor(), t.root());
        t.reset_cursor();
        assert_eq!(t.cursor(), t.root());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_node_limit_panics() {
        PrefetchTree::with_node_limit(0);
    }

    #[test]
    fn frozen_tree_stops_growing_and_counts_refusals() {
        let mut t = PrefetchTree::with_node_budget(8, OverflowPolicy::Freeze);
        for b in 0..100u64 {
            t.record_access(BlockId(b));
        }
        t.check_invariants();
        assert_eq!(t.node_count(), 8, "frozen tree must stay at its budget");
        assert_eq!(t.stats().nodes_created, 8);
        assert_eq!(t.stats().nodes_evicted, 0, "freeze must not evict");
        assert_eq!(t.stats().nodes_capped, 92);
        assert_eq!(t.stats().resets, 100, "every unique access still ends a substring");
        // The survivors are the *first* blocks (the opposite of eviction).
        for b in 0..8u64 {
            assert!(t.child_by_block(t.root(), BlockId(b)).is_some(), "early block {b} lost");
        }
        assert!(t.child_by_block(t.root(), BlockId(99)).is_none());
    }

    #[test]
    fn freeze_at_the_exact_budget_boundary() {
        // The creation that lands *exactly on* the budget must succeed;
        // only the first creation *beyond* it is refused. An off-by-one
        // here would either waste the last budgeted node or briefly
        // exceed the budget — pfserve sizes per-tenant memory from this
        // boundary being exact.
        let limit = 5;
        let mut t = PrefetchTree::with_node_budget(limit, OverflowPolicy::Freeze);
        for b in 0..limit as u64 {
            let out = t.record_access(BlockId(b));
            assert!(out.created_node, "creation {b} is within budget");
            assert_eq!(t.stats().nodes_capped, 0, "no refusal at or below the budget");
        }
        assert_eq!(t.node_count(), limit, "tree sits exactly at its budget");

        // A *predictable* access at the boundary touches existing
        // structure and must not count as a refusal.
        let out = t.record_access(BlockId(0));
        assert!(out.predictable);
        assert!(!out.created_node);
        assert_eq!(t.stats().nodes_capped, 0);

        // Novel accesses at the boundary are refused one-for-one, both at
        // the root and deeper in the parse (cursor at node 0's child).
        let out = t.record_access(BlockId(limit as u64));
        assert!(!out.created_node);
        assert!(out.reset, "a refused creation still ends the substring");
        assert_eq!(t.stats().nodes_capped, 1);
        assert_eq!(t.node_count(), limit, "budget never exceeded");
        t.check_invariants();

        // Contrast: Evict at the same boundary makes room instead.
        let mut e = PrefetchTree::with_node_budget(limit, OverflowPolicy::Evict);
        for b in 0..=limit as u64 {
            e.record_access(BlockId(b));
        }
        assert_eq!(e.node_count(), limit);
        assert_eq!(e.stats().nodes_capped, 0);
        assert_eq!(e.stats().nodes_evicted, 1);
        e.check_invariants();
    }

    #[test]
    fn frozen_tree_still_predicts_learned_structure() {
        let mut t = PrefetchTree::with_node_budget(4, OverflowPolicy::Freeze);
        // Learn a 2-block pattern, then flood with unique noise.
        for _ in 0..4 {
            t.record_access(BlockId(1));
            t.record_access(BlockId(2));
        }
        for b in 100..200u64 {
            t.record_access(BlockId(b));
        }
        // The learned root children survive and keep predicting.
        let out = t.record_access(BlockId(1));
        assert!(out.predictable, "frozen structure should still predict block 1");
        assert!(t.stats().nodes_capped > 0);
        t.check_invariants();
    }

    #[test]
    fn unlimited_trees_never_cap_or_evict() {
        let mut t = PrefetchTree::new();
        for b in 0..1000u64 {
            t.record_access(BlockId(b));
        }
        assert_eq!(t.stats().nodes_capped, 0);
        assert_eq!(t.stats().nodes_evicted, 0);
    }

    #[test]
    fn bytes_in_use_is_exact_scale_not_paper_estimate() {
        let mut t = PrefetchTree::new();
        for b in 0..10_000u64 {
            t.record_access(BlockId(b % 500));
        }
        let exact = t.bytes_in_use();
        let paper = t.approx_memory_bytes();
        // The exact figure charges real container capacities: nonzero,
        // and within a small constant factor of the 40-byte/node study.
        assert!(exact > 0);
        assert!(exact < paper * 8, "exact {exact} vs paper {paper}");
        assert!(exact > paper / 8, "exact {exact} vs paper {paper}");
    }
}
