//! The prefetch tree proper: LZ78 parsing, weights, probabilities, and LRU
//! node limiting.

use crate::node::{Node, NodeId, NIL};
use crate::stats::TreeStats;
use prefetch_hash::FxHashMap;
use prefetch_trace::BlockId;

/// What happened when an access was recorded — the per-reference signals
/// behind the paper's Tables 2 and 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The block was present as a child of the cursor before the access
    /// (the paper's definition of a *predictable* request, Section 9.4).
    pub predictable: bool,
    /// If the cursor node had a last-visited child, whether this access
    /// repeated it (`None` when the node had no previous visit —
    /// Section 9.6 / Table 3 counts only nodes with history).
    pub lvc_repeat: Option<bool>,
    /// A new node was created (the access ended a substring).
    pub created_node: bool,
    /// The parse returned to the root after this access.
    pub reset: bool,
}

/// What a node-budgeted tree does when a novel access would push it past
/// its limit (Section 9.3 memory study; the budget guards the one
/// unbounded structure in the system).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Evict least-recently-visited leaves to make room (the paper's
    /// scheme: substrings are kept in an LRU list and the least recently
    /// used discarded).
    #[default]
    Evict,
    /// Stop learning: refuse the node creation (counting it in
    /// [`TreeStats::nodes_capped`]) and keep the existing structure
    /// intact. The parse still resets, so prediction over the frozen
    /// structure continues to work.
    Freeze,
}

/// The LZ prefetch tree.
///
/// See the crate docs for semantics. All operations are O(1) amortized
/// except candidate enumeration (proportional to candidates returned) and
/// node eviction (bounded leaf scan).
#[derive(Clone, Debug)]
pub struct PrefetchTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// (parent index, block) → child index
    edges: FxHashMap<(u32, u64), u32>,
    /// parse position
    cursor: u32,
    /// true before the first access of a substring (root weight is bumped
    /// lazily so it equals the number of substrings *started*)
    fresh_substring: bool,
    /// maximum live node count (root exempt); `usize::MAX` = unlimited
    node_limit: usize,
    /// what to do when a creation would exceed `node_limit`
    overflow: OverflowPolicy,
    /// intrusive LRU list over non-root nodes: head = MRU, tail = LRU
    lru_head: u32,
    lru_tail: u32,
    stats: TreeStats,
}

impl Default for PrefetchTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchTree {
    /// An unlimited tree.
    pub fn new() -> Self {
        Self::with_node_limit(usize::MAX)
    }

    /// A tree that holds at most `node_limit` non-root nodes, evicting the
    /// least-recently-visited leaves when full (the paper's Section 9.3
    /// memory-limiting scheme).
    ///
    /// # Panics
    /// Panics if `node_limit == 0`.
    pub fn with_node_limit(node_limit: usize) -> Self {
        Self::with_node_budget(node_limit, OverflowPolicy::Evict)
    }

    /// A tree that holds at most `node_limit` non-root nodes, with an
    /// explicit [`OverflowPolicy`] deciding what happens when a novel
    /// access would exceed the budget.
    ///
    /// # Panics
    /// Panics if `node_limit == 0`.
    pub fn with_node_budget(node_limit: usize, overflow: OverflowPolicy) -> Self {
        assert!(node_limit > 0, "node limit must be positive");
        let root = Node::new(BlockId(u64::MAX), NIL, NIL);
        PrefetchTree {
            nodes: vec![root],
            free: Vec::new(),
            edges: FxHashMap::default(),
            cursor: 0,
            fresh_substring: true,
            node_limit,
            overflow,
            lru_head: NIL,
            lru_tail: NIL,
            stats: TreeStats::default(),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// The current parse position. Prefetch candidates are enumerated below
    /// this node.
    pub fn cursor(&self) -> NodeId {
        NodeId(self.cursor)
    }

    /// Number of live nodes, excluding the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len() - 1
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Visit count of a node.
    pub fn weight(&self, n: NodeId) -> u64 {
        self.nodes[n.0 as usize].weight
    }

    /// The block a node represents (`None` for the root).
    pub fn block(&self, n: NodeId) -> Option<BlockId> {
        if n.0 == 0 {
            None
        } else {
            Some(self.nodes[n.0 as usize].block)
        }
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.nodes[n.0 as usize].parent;
        if p == NIL {
            None
        } else {
            Some(NodeId(p))
        }
    }

    /// Number of children of a node.
    pub fn child_count(&self, n: NodeId) -> usize {
        self.nodes[n.0 as usize].children.len()
    }

    /// Iterate a node's children.
    pub fn children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[n.0 as usize].children.iter().map(|&c| NodeId(c))
    }

    /// The child of `n` representing `block`, if present.
    pub fn child_by_block(&self, n: NodeId, block: BlockId) -> Option<NodeId> {
        self.edges.get(&(n.0, block.0)).map(|&c| NodeId(c))
    }

    /// The child taken on the most recent visit to `n`.
    pub fn last_visited_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.nodes[n.0 as usize].last_visited_child;
        if c == NIL {
            None
        } else {
            Some(NodeId(c))
        }
    }

    /// Conditional probability `weight(child) / weight(parent)` that
    /// `child` follows `parent` (paper Section 2). Returns 0 for a
    /// zero-weight parent.
    pub fn child_probability(&self, parent: NodeId, child: NodeId) -> f64 {
        debug_assert_eq!(self.nodes[child.0 as usize].parent, parent.0);
        let pw = self.nodes[parent.0 as usize].weight;
        if pw == 0 {
            0.0
        } else {
            self.nodes[child.0 as usize].weight as f64 / pw as f64
        }
    }

    /// Approximate resident memory of the tree, counting
    /// 40 bytes (`Node::PAPER_BYTES`) per node the way the paper's Figure 13
    /// does.
    pub fn approx_memory_bytes(&self) -> usize {
        self.node_count() * Node::PAPER_BYTES
    }

    /// Record one access and advance the parse. Returns the per-access
    /// outcome used by the simulator's statistics.
    pub fn record_access(&mut self, block: BlockId) -> AccessOutcome {
        self.stats.accesses += 1;
        if self.fresh_substring {
            // Root weight counts substrings started.
            self.nodes[0].weight += 1;
            self.fresh_substring = false;
        }
        let cur = self.cursor;
        let existing = self.edges.get(&(cur, block.0)).copied();

        // Table 2: was the request predictable from the current position?
        let predictable = existing.is_some();
        if predictable {
            self.stats.predictable += 1;
        }

        // Table 3: does this visit repeat the node's last-visited child?
        let lvc = self.nodes[cur as usize].last_visited_child;
        let lvc_repeat = if lvc != NIL {
            self.stats.lvc_opportunities += 1;
            let repeat = self.nodes[lvc as usize].block == block && existing == Some(lvc);
            if repeat {
                self.stats.lvc_repeats += 1;
            }
            Some(repeat)
        } else {
            None
        };

        match existing {
            Some(child) => {
                self.increment_child_weight(cur, child);
                self.nodes[cur as usize].last_visited_child = child;
                self.cursor = child;
                self.touch_lru(child);
                AccessOutcome { predictable, lvc_repeat, created_node: false, reset: false }
            }
            None => {
                if self.overflow == OverflowPolicy::Freeze && self.node_count() >= self.node_limit {
                    // At budget and frozen: refuse the creation but keep
                    // the parse semantics — the novel access still ends
                    // the substring.
                    self.stats.nodes_capped += 1;
                    self.cursor = 0;
                    self.fresh_substring = true;
                    self.stats.resets += 1;
                    return AccessOutcome {
                        predictable,
                        lvc_repeat,
                        created_node: false,
                        reset: true,
                    };
                }
                let child = self.create_child(cur, block);
                self.nodes[child as usize].weight = 1;
                self.nodes[cur as usize].last_visited_child = child;
                self.touch_lru(child);
                // Novel access ends the substring: back to the root.
                self.cursor = 0;
                self.fresh_substring = true;
                self.stats.resets += 1;
                self.maybe_evict();
                AccessOutcome { predictable, lvc_repeat, created_node: true, reset: true }
            }
        }
    }

    /// Reset the parse to the root without recording an access (used by
    /// tests and by policies that re-anchor after trace discontinuities).
    pub fn reset_cursor(&mut self) {
        self.cursor = 0;
        self.fresh_substring = true;
    }

    /// A *prediction anchor* for the current position: the cursor itself,
    /// except right after an LZ reset, where the parse stands at the root
    /// and has forgotten the block just accessed. Re-anchoring at the
    /// root's child for `last_block` (the order-1 context) recovers
    /// predictions across substring boundaries — an extension beyond the
    /// paper (its Section 9.5/9.6 shows a large gap between `tree` and
    /// `perfect-selector` that boundary blindness contributes to).
    pub fn prediction_anchor(&self, last_block: BlockId) -> NodeId {
        if self.cursor != 0 {
            return NodeId(self.cursor);
        }
        self.child_by_block(NodeId(0), last_block).unwrap_or(NodeId(0))
    }

    /// Increment a child's weight, keeping the parent's child list sorted
    /// by descending weight (candidate enumeration prunes on this order).
    /// The child swaps with the leftmost member of its old weight class:
    /// O(log k) via binary search, O(1) data movement.
    fn increment_child_weight(&mut self, parent: u32, child: u32) {
        let pos = self.nodes[child as usize].pos_in_parent as usize;
        let w = self.nodes[child as usize].weight;
        // Leftmost index in 0..=pos whose weight equals w (the weight
        // class is contiguous because the list is sorted descending).
        let class_start = {
            let kids = &self.nodes[parent as usize].children;
            let mut lo = 0usize;
            let mut hi = pos;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.nodes[kids[mid] as usize].weight > w {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        if class_start != pos {
            let kids = &mut self.nodes[parent as usize].children;
            kids.swap(class_start, pos);
            let other = kids[pos];
            self.nodes[other as usize].pos_in_parent = pos as u32;
            self.nodes[child as usize].pos_in_parent = class_start as u32;
        }
        self.nodes[child as usize].weight = w + 1;
    }

    fn create_child(&mut self, parent: u32, block: BlockId) -> u32 {
        let pos = self.nodes[parent as usize].children.len() as u32;
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node::new(block, parent, pos);
                i
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "prefetch tree arena overflow");
                self.nodes.push(Node::new(block, parent, pos));
                (self.nodes.len() - 1) as u32
            }
        };
        self.nodes[parent as usize].children.push(idx);
        self.edges.insert((parent, block.0), idx);
        self.stats.nodes_created += 1;
        idx
    }

    /// Move `n` to the MRU end of the node LRU list.
    fn touch_lru(&mut self, n: u32) {
        debug_assert_ne!(n, 0, "root is not in the LRU list");
        // Unlink if present.
        let (prev, next) = (self.nodes[n as usize].lru_prev, self.nodes[n as usize].lru_next);
        if prev != NIL || next != NIL || self.lru_head == n {
            if prev != NIL {
                self.nodes[prev as usize].lru_next = next;
            } else {
                self.lru_head = next;
            }
            if next != NIL {
                self.nodes[next as usize].lru_prev = prev;
            } else {
                self.lru_tail = prev;
            }
        }
        // Push front.
        self.nodes[n as usize].lru_prev = NIL;
        self.nodes[n as usize].lru_next = self.lru_head;
        if self.lru_head != NIL {
            self.nodes[self.lru_head as usize].lru_prev = n;
        }
        self.lru_head = n;
        if self.lru_tail == NIL {
            self.lru_tail = n;
        }
    }

    fn unlink_lru(&mut self, n: u32) {
        let (prev, next) = (self.nodes[n as usize].lru_prev, self.nodes[n as usize].lru_next);
        if prev != NIL {
            self.nodes[prev as usize].lru_next = next;
        } else if self.lru_head == n {
            self.lru_head = next;
        }
        if next != NIL {
            self.nodes[next as usize].lru_prev = prev;
        } else if self.lru_tail == n {
            self.lru_tail = prev;
        }
        self.nodes[n as usize].lru_prev = NIL;
        self.nodes[n as usize].lru_next = NIL;
    }

    /// Enforce the node limit by evicting least-recently-visited leaves
    /// (the paper maintains substrings in an LRU list and discards the
    /// least recently used, Section 9.3).
    fn maybe_evict(&mut self) {
        const MAX_SCAN: usize = 64;
        while self.node_count() > self.node_limit {
            // Walk from the LRU end looking for an evictable leaf. The
            // cursor node is pinned (the parse stands on it).
            let mut candidate = self.lru_tail;
            let mut scanned = 0;
            let victim = loop {
                if candidate == NIL {
                    break NIL;
                }
                if scanned >= MAX_SCAN {
                    break NIL;
                }
                let node = &self.nodes[candidate as usize];
                if node.is_leaf() && candidate != self.cursor {
                    break candidate;
                }
                candidate = node.lru_prev;
                scanned += 1;
            };
            if victim != NIL {
                self.remove_leaf(victim);
                continue;
            }
            // Fallback (rare: LRU tail region is all-internal): evict the
            // tail node's entire subtree, sparing the cursor's path.
            let tail = self.lru_tail;
            if tail == NIL || tail == self.cursor || self.is_ancestor(tail, self.cursor) {
                // Nothing safely evictable; give up this round rather than
                // loop forever. (Can only happen with tiny limits.)
                return;
            }
            self.remove_subtree(tail);
        }
    }

    /// Whether `a` is an ancestor of `b` (or equal).
    fn is_ancestor(&self, a: u32, b: u32) -> bool {
        let mut n = b;
        while n != NIL {
            if n == a {
                return true;
            }
            n = self.nodes[n as usize].parent;
        }
        false
    }

    fn remove_leaf(&mut self, n: u32) {
        debug_assert!(self.nodes[n as usize].is_leaf());
        debug_assert_ne!(n, 0);
        let parent = self.nodes[n as usize].parent;
        let pos = self.nodes[n as usize].pos_in_parent as usize;
        let block = self.nodes[n as usize].block;
        // Shifting removal keeps the children sorted by weight; the
        // shifted suffix needs its positions refreshed. Eviction only
        // happens under a node limit, which also bounds the fan-out.
        let kids = &mut self.nodes[parent as usize].children;
        debug_assert_eq!(kids[pos], n);
        kids.remove(pos);
        let shifted: Vec<u32> = self.nodes[parent as usize].children[pos..].to_vec();
        for (off, moved) in shifted.into_iter().enumerate() {
            self.nodes[moved as usize].pos_in_parent = (pos + off) as u32;
        }
        if self.nodes[parent as usize].last_visited_child == n {
            self.nodes[parent as usize].last_visited_child = NIL;
        }
        self.edges.remove(&(parent, block.0));
        self.unlink_lru(n);
        self.free.push(n);
        self.stats.nodes_evicted += 1;
    }

    fn remove_subtree(&mut self, n: u32) {
        // Depth-first removal, leaves first.
        let mut stack = vec![n];
        let mut order = Vec::new();
        while let Some(x) = stack.pop() {
            order.push(x);
            stack.extend(self.nodes[x as usize].children.iter().copied());
        }
        for &x in order.iter().rev() {
            self.remove_leaf(x);
        }
    }

    /// Snapshot support: set the root weight on a freshly created tree.
    pub(crate) fn restore_root_weight(&mut self, weight: u64) {
        debug_assert_eq!(self.node_count(), 0, "restore into a fresh tree only");
        self.nodes[0].weight = weight;
    }

    /// Snapshot support: append a child with an explicit weight. Children
    /// must be appended in non-increasing weight order (the serialized
    /// order); violations are reported, not panicked, so corrupt
    /// snapshots fail cleanly.
    pub(crate) fn restore_child(
        &mut self,
        parent: NodeId,
        block: BlockId,
        weight: u64,
    ) -> Result<NodeId, &'static str> {
        if self.edges.contains_key(&(parent.0, block.0)) {
            return Err("duplicate child block");
        }
        if let Some(&last) = self.nodes[parent.0 as usize].children.last() {
            if self.nodes[last as usize].weight < weight {
                return Err("children not in descending weight order");
            }
        }
        let idx = self.create_child(parent.0, block);
        self.nodes[idx as usize].weight = weight;
        self.touch_lru(idx);
        // Snapshot restoration is not live training.
        self.stats.nodes_created -= 1;
        Ok(NodeId(idx))
    }

    /// Snapshot support: debug-verify a freshly restored tree.
    pub(crate) fn check_restored(&self) {
        #[cfg(debug_assertions)]
        self.check_invariants();
    }

    /// Validate internal invariants (test support; O(nodes)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut live = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if self.free.contains(&(i as u32)) {
                continue;
            }
            live += 1;
            // Children sum ≤ weight; sorted by descending weight; edges
            // map agrees.
            let mut child_sum = 0u64;
            let mut prev_weight = u64::MAX;
            for (pos, &c) in n.children.iter().enumerate() {
                let child = &self.nodes[c as usize];
                assert_eq!(child.parent, i as u32, "parent link broken at {c}");
                assert_eq!(child.pos_in_parent as usize, pos, "pos_in_parent broken at {c}");
                assert_eq!(
                    self.edges.get(&(i as u32, child.block.0)),
                    Some(&c),
                    "edge map broken at {c}"
                );
                assert!(child.weight <= prev_weight, "children not weight-sorted at {i}");
                prev_weight = child.weight;
                child_sum += child.weight;
            }
            assert!(
                child_sum <= n.weight,
                "children weight {child_sum} exceeds node weight {} at {i}",
                n.weight
            );
        }
        assert_eq!(live, self.node_count() + 1, "live node accounting broken");
        assert_eq!(self.edges.len(), self.node_count(), "edge count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1(a): accesses (a)(ac)(ab)(aba)(abb)(b) with
    /// a=1, b=2, c=3.
    const FIG1_ACCESSES: [u64; 12] = [1, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2];

    fn fig1_tree() -> PrefetchTree {
        let mut t = PrefetchTree::new();
        for b in FIG1_ACCESSES {
            t.record_access(BlockId(b));
        }
        t
    }

    #[test]
    fn paper_figure_1a_weights() {
        let t = fig1_tree();
        let root = t.root();
        let a = t.child_by_block(root, BlockId(1)).expect("node a");
        let b_root = t.child_by_block(root, BlockId(2)).expect("node b under root");
        let c = t.child_by_block(a, BlockId(3)).expect("node c under a");
        let ab = t.child_by_block(a, BlockId(2)).expect("node b under a");
        let aba = t.child_by_block(ab, BlockId(1)).expect("node a under ab");
        let abb = t.child_by_block(ab, BlockId(2)).expect("node b under ab");
        assert_eq!(t.weight(a), 5);
        assert_eq!(t.weight(b_root), 1);
        assert_eq!(t.weight(c), 1);
        assert_eq!(t.weight(ab), 3);
        assert_eq!(t.weight(aba), 1);
        assert_eq!(t.weight(abb), 1);
        // 6 substrings → root weight 6.
        assert_eq!(t.weight(root), 6);
        assert_eq!(t.node_count(), 6);
        t.check_invariants();
    }

    #[test]
    fn paper_figure_1b_after_b_from_root() {
        // Figure 1(b): one more access of b from the root increments b.
        let mut t = fig1_tree();
        let out = t.record_access(BlockId(2));
        assert!(out.predictable, "b is now a child of root");
        assert!(!out.created_node);
        let b_root = t.child_by_block(t.root(), BlockId(2)).unwrap();
        assert_eq!(t.weight(b_root), 2);
        assert_eq!(t.weight(t.root()), 7);
        assert_eq!(t.cursor(), b_root);
    }

    #[test]
    fn probabilities_follow_weights() {
        let t = fig1_tree();
        let root = t.root();
        let a = t.child_by_block(root, BlockId(1)).unwrap();
        let ab = t.child_by_block(a, BlockId(2)).unwrap();
        assert!((t.child_probability(root, a) - 5.0 / 6.0).abs() < 1e-12);
        assert!((t.child_probability(a, ab) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn substring_parse_matches_paper() {
        // Count resets: one per substring = 6.
        let mut t = PrefetchTree::new();
        let mut resets = 0;
        for b in FIG1_ACCESSES {
            if t.record_access(BlockId(b)).reset {
                resets += 1;
            }
        }
        assert_eq!(resets, 6);
        assert_eq!(t.stats().resets, 6);
        assert_eq!(t.stats().nodes_created, 6);
    }

    #[test]
    fn predictability_counting() {
        let mut t = PrefetchTree::new();
        // First pass over a,b,a,b creates nodes; second pass is partly
        // predictable.
        let mut predictable = 0;
        for b in [1u64, 2, 1, 2, 1, 2] {
            if t.record_access(BlockId(b)).predictable {
                predictable += 1;
            }
        }
        // Parse: (1)(2)(1 2)(1 2…)
        //  1: root has no child 1 → not predictable, create, reset
        //  2: root has no child 2 → not predictable, create, reset
        //  1: root has child 1 → predictable, cursor=a
        //  2: a has no child 2 → not predictable, create, reset
        //  1: predictable (root child), cursor=a
        //  2: a now has child 2 → predictable, cursor=ab
        assert_eq!(predictable, 3);
        assert_eq!(t.stats().predictable, 3);
        assert_eq!(t.stats().accesses, 6);
    }

    #[test]
    fn lvc_tracking() {
        let mut t = PrefetchTree::new();
        // root visits: each substring start. Pattern: 1,1,1 → substrings
        // (1)(1 1)(1 …
        let o1 = t.record_access(BlockId(1)); // create 1; root lvc=1
        assert_eq!(o1.lvc_repeat, None); // root had no lvc yet
        let o2 = t.record_access(BlockId(1)); // root→1 again: lvc repeat
        assert_eq!(o2.lvc_repeat, Some(true));
        let o3 = t.record_access(BlockId(1)); // at node 1: no lvc yet
        assert_eq!(o3.lvc_repeat, None);
        let o4 = t.record_access(BlockId(2)); // at root (reset): lvc=1, access 2
        assert_eq!(o4.lvc_repeat, Some(false));
        assert_eq!(t.stats().lvc_opportunities, 2);
        assert_eq!(t.stats().lvc_repeats, 1);
    }

    #[test]
    fn node_limit_evicts_lru_leaves() {
        let mut t = PrefetchTree::with_node_limit(8);
        // Stream of unique blocks: every access creates a root child leaf.
        for b in 0..100u64 {
            t.record_access(BlockId(b));
        }
        assert!(t.node_count() <= 8, "count {}", t.node_count());
        assert_eq!(t.stats().nodes_created, 100);
        assert_eq!(t.stats().nodes_evicted, 92);
        t.check_invariants();
        // The survivors are the most recent blocks.
        for b in 96..100u64 {
            assert!(t.child_by_block(t.root(), BlockId(b)).is_some(), "recent block {b} evicted");
        }
        assert!(t.child_by_block(t.root(), BlockId(0)).is_none());
    }

    #[test]
    fn limited_tree_keeps_hot_paths() {
        let mut t = PrefetchTree::with_node_limit(64);
        // A hot repeated pattern plus unique noise.
        for i in 0..2000u64 {
            t.record_access(BlockId(1));
            t.record_access(BlockId(2));
            t.record_access(BlockId(3));
            t.record_access(BlockId(1_000_000 + i)); // unique noise
        }
        t.check_invariants();
        // The hot pattern keeps *some* presence in the tree (which hot
        // block anchors a substring drifts with the LZ parse, so we only
        // require at least one hot root child), while the unique noise
        // leaves are what gets evicted.
        let root = t.root();
        let hot_children =
            [1u64, 2, 3].iter().filter(|&&b| t.child_by_block(root, BlockId(b)).is_some()).count();
        assert!(hot_children >= 1, "all hot blocks evicted from root");
        assert!(t.node_count() <= 64);
    }

    #[test]
    fn eviction_never_removes_cursor() {
        let mut t = PrefetchTree::with_node_limit(2);
        for b in 0..50u64 {
            t.record_access(BlockId(b % 5));
            // After each access the cursor must be a live node: touching
            // it must not panic and invariants must hold.
            let _ = t.cursor();
        }
        t.check_invariants();
    }

    #[test]
    fn weights_equal_visit_counts_on_random_stream() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut t = PrefetchTree::new();
        for _ in 0..5000 {
            t.record_access(BlockId(rng.gen_range(0..20)));
        }
        t.check_invariants();
        // Root weight equals substrings *started*: one per completed
        // substring (reset) plus one if the parse stands mid-substring
        // (the cursor is below the root exactly then).
        let mid_substring = (t.cursor() != t.root()) as u64;
        assert_eq!(t.weight(t.root()), t.stats().resets + mid_substring);
    }

    #[test]
    fn prediction_anchor_recovers_context_after_reset() {
        let mut t = PrefetchTree::new();
        // Parse (1)(2)(1 2): after the final access the parse reset to
        // root (node "1 2" was just created)... actually (1 2) completes
        // without a reset only if the edge exists. Build: 1,2,1,2 →
        // substrings (1)(2)(1 2), cursor at root after the last creation.
        for b in [1u64, 2, 1, 2] {
            t.record_access(BlockId(b));
        }
        assert_eq!(t.cursor(), t.root(), "parse should stand at root");
        // Root-anchored prediction forgets that we just accessed 2; the
        // anchor recovers the order-1 context: root's child for block 2.
        let anchor = t.prediction_anchor(BlockId(2));
        assert_ne!(anchor, t.root());
        assert_eq!(t.block(anchor), Some(BlockId(2)));
        // Unknown block: falls back to the root.
        assert_eq!(t.prediction_anchor(BlockId(99)), t.root());
        // Mid-substring the anchor IS the cursor.
        t.record_access(BlockId(1));
        assert_ne!(t.cursor(), t.root());
        assert_eq!(t.prediction_anchor(BlockId(1)), t.cursor());
    }

    #[test]
    fn reset_cursor_restarts_parse() {
        let mut t = fig1_tree();
        t.record_access(BlockId(1));
        assert_ne!(t.cursor(), t.root());
        t.reset_cursor();
        assert_eq!(t.cursor(), t.root());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_node_limit_panics() {
        PrefetchTree::with_node_limit(0);
    }

    #[test]
    fn frozen_tree_stops_growing_and_counts_refusals() {
        let mut t = PrefetchTree::with_node_budget(8, OverflowPolicy::Freeze);
        for b in 0..100u64 {
            t.record_access(BlockId(b));
        }
        t.check_invariants();
        assert_eq!(t.node_count(), 8, "frozen tree must stay at its budget");
        assert_eq!(t.stats().nodes_created, 8);
        assert_eq!(t.stats().nodes_evicted, 0, "freeze must not evict");
        assert_eq!(t.stats().nodes_capped, 92);
        assert_eq!(t.stats().resets, 100, "every unique access still ends a substring");
        // The survivors are the *first* blocks (the opposite of eviction).
        for b in 0..8u64 {
            assert!(t.child_by_block(t.root(), BlockId(b)).is_some(), "early block {b} lost");
        }
        assert!(t.child_by_block(t.root(), BlockId(99)).is_none());
    }

    #[test]
    fn freeze_at_the_exact_budget_boundary() {
        // The creation that lands *exactly on* the budget must succeed;
        // only the first creation *beyond* it is refused. An off-by-one
        // here would either waste the last budgeted node or briefly
        // exceed the budget — pfserve sizes per-tenant memory from this
        // boundary being exact.
        let limit = 5;
        let mut t = PrefetchTree::with_node_budget(limit, OverflowPolicy::Freeze);
        for b in 0..limit as u64 {
            let out = t.record_access(BlockId(b));
            assert!(out.created_node, "creation {b} is within budget");
            assert_eq!(t.stats().nodes_capped, 0, "no refusal at or below the budget");
        }
        assert_eq!(t.node_count(), limit, "tree sits exactly at its budget");

        // A *predictable* access at the boundary touches existing
        // structure and must not count as a refusal.
        let out = t.record_access(BlockId(0));
        assert!(out.predictable);
        assert!(!out.created_node);
        assert_eq!(t.stats().nodes_capped, 0);

        // Novel accesses at the boundary are refused one-for-one, both at
        // the root and deeper in the parse (cursor at node 0's child).
        let out = t.record_access(BlockId(limit as u64));
        assert!(!out.created_node);
        assert!(out.reset, "a refused creation still ends the substring");
        assert_eq!(t.stats().nodes_capped, 1);
        assert_eq!(t.node_count(), limit, "budget never exceeded");
        t.check_invariants();

        // Contrast: Evict at the same boundary makes room instead.
        let mut e = PrefetchTree::with_node_budget(limit, OverflowPolicy::Evict);
        for b in 0..=limit as u64 {
            e.record_access(BlockId(b));
        }
        assert_eq!(e.node_count(), limit);
        assert_eq!(e.stats().nodes_capped, 0);
        assert_eq!(e.stats().nodes_evicted, 1);
        e.check_invariants();
    }

    #[test]
    fn frozen_tree_still_predicts_learned_structure() {
        let mut t = PrefetchTree::with_node_budget(4, OverflowPolicy::Freeze);
        // Learn a 2-block pattern, then flood with unique noise.
        for _ in 0..4 {
            t.record_access(BlockId(1));
            t.record_access(BlockId(2));
        }
        for b in 100..200u64 {
            t.record_access(BlockId(b));
        }
        // The learned root children survive and keep predicting.
        let out = t.record_access(BlockId(1));
        assert!(out.predictable, "frozen structure should still predict block 1");
        assert!(t.stats().nodes_capped > 0);
        t.check_invariants();
    }

    #[test]
    fn unlimited_trees_never_cap_or_evict() {
        let mut t = PrefetchTree::new();
        for b in 0..1000u64 {
            t.record_access(BlockId(b));
        }
        assert_eq!(t.stats().nodes_capped, 0);
        assert_eq!(t.stats().nodes_evicted, 0);
    }
}
