//! Prefetch-candidate enumeration.
//!
//! A candidate is a descendant of the parse cursor, carrying the path
//! probability `p_b` (product of edge probabilities from the cursor), its
//! parent's path probability `p_x`, and the distance `d_b` (edges from the
//! cursor) — the three inputs the paper's benefit equation (Eq. 1) and
//! overhead equation (Eq. 14) need.
//!
//! Enumeration is *incremental*: `prefetch-core` maintains a best-first
//! frontier and calls [`PrefetchTree::child_candidates`] to expand a
//! candidate's children only when the candidate itself has been settled
//! (prefetched, or found already cached). This realizes the paper's
//! "prefetch along multiple paths simultaneously" without materializing
//! whole subtrees.

use crate::node::NodeId;
use crate::tree::PrefetchTree;
use prefetch_trace::BlockId;

/// A prefetch candidate below the parse cursor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Tree node of the candidate block.
    pub node: NodeId,
    /// The candidate block.
    pub block: BlockId,
    /// Path probability `p_b` from the anchor (cursor) to this node.
    pub probability: f64,
    /// Path probability `p_x` of this node's parent (1.0 for direct
    /// children of the anchor).
    pub parent_probability: f64,
    /// Distance `d_b`: edges from the anchor.
    pub depth: u32,
}

/// Struct-of-arrays candidate buffer: the fields of [`Candidate`] as
/// parallel columns, in the arena's SoA style. The cost-benefit engine
/// owns one as scratch and hands the probability/depth columns straight to
/// the batched kernels (`prefetch-core::kernel`) — candidate data arrives
/// kernel-ready, with no AoS→SoA transpose on the hot path.
///
/// Invariant: all five columns always have equal length; mutate through
/// [`Self::push`]/[`Self::clear`] or keep them in lockstep by hand.
#[derive(Clone, Debug, Default)]
pub struct CandidateBatch {
    /// Tree node per candidate.
    pub node: Vec<NodeId>,
    /// Candidate block per candidate.
    pub block: Vec<BlockId>,
    /// Path probability `p_b` per candidate.
    pub p_b: Vec<f64>,
    /// Parent path probability `p_x` per candidate.
    pub p_x: Vec<f64>,
    /// Distance `d_b` per candidate.
    pub d_b: Vec<u32>,
}

impl CandidateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidates in the batch.
    pub fn len(&self) -> usize {
        self.p_b.len()
    }

    /// True when no candidates are buffered.
    pub fn is_empty(&self) -> bool {
        self.p_b.is_empty()
    }

    /// Drop all candidates, keeping the column allocations.
    pub fn clear(&mut self) {
        self.node.clear();
        self.block.clear();
        self.p_b.clear();
        self.p_x.clear();
        self.d_b.clear();
    }

    /// Append one candidate across all columns.
    pub fn push(&mut self, c: Candidate) {
        self.node.push(c.node);
        self.block.push(c.block);
        self.p_b.push(c.probability);
        self.p_x.push(c.parent_probability);
        self.d_b.push(c.depth);
    }

    /// Reassemble row `i` as an AoS [`Candidate`] (heap entries stay AoS).
    pub fn candidate(&self, i: usize) -> Candidate {
        Candidate {
            node: self.node[i],
            block: self.block[i],
            probability: self.p_b[i],
            parent_probability: self.p_x[i],
            depth: self.d_b[i],
        }
    }
}

impl PrefetchTree {
    /// Candidates one edge below `node`.
    ///
    /// `base_probability` is the path probability of `node` itself
    /// relative to the anchor (1.0 when `node` *is* the anchor), and
    /// `base_depth` its distance from the anchor. Children with zero
    /// probability (possible after weight-free structural nodes) are
    /// skipped.
    pub fn child_candidates(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p <= 0.0 {
                continue;
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// Candidates one edge below `node` whose path probability is at least
    /// `min_probability`, cheapest-first prune: children are stored sorted
    /// by descending weight, so enumeration stops at the first child below
    /// the cutoff. This keeps per-period work proportional to the number
    /// of *useful* candidates even below a root with tens of thousands of
    /// children.
    pub fn child_candidates_pruned(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        min_probability: f64,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p < min_probability || p <= 0.0 {
                break; // children are weight-sorted: the rest are smaller
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// [`Self::child_candidates_pruned`] emitting straight into a
    /// [`CandidateBatch`]'s SoA columns: same candidates, same order, same
    /// probability bits, no intermediate `Candidate` vector. The engine's
    /// batch kernels consume the columns directly.
    pub fn child_candidates_pruned_soa(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        min_probability: f64,
        out: &mut CandidateBatch,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p < min_probability || p <= 0.0 {
                break; // children are weight-sorted: the rest are smaller
            }
            out.node.push(child);
            out.block.push(self.block(child).expect("children are never the root"));
            out.p_b.push(p);
            out.p_x.push(base_probability);
            out.d_b.push(base_depth + 1);
        }
    }

    /// The `k` most probable candidates one edge below `node` — simply the
    /// first `k` children, because children are stored sorted by weight.
    /// Used by the `tree-children` baseline (Kroeger & Long).
    pub fn child_candidates_topk(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        k: usize,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node).take(k) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p <= 0.0 {
                break;
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// All candidates within `max_depth` edges of `anchor`, best-first by
    /// probability. Convenience for analysis and the parametric baselines
    /// (`tree-threshold`, `tree-children`); the cost-benefit policy uses
    /// the incremental frontier instead.
    ///
    /// Selection runs on a [`std::collections::BinaryHeap`] — O((n + m)
    /// log n) for n frontier entries and m pops, replacing a linear
    /// `max_by` + `swap_remove` rescan per pop that was quadratic in the
    /// frontier size. Output (including the order of equal-probability
    /// candidates) is byte-identical to the historical loop: see
    /// [`HeapFrontier`] for how its tie-breaking is replicated.
    pub fn candidates_below(
        &self,
        anchor: NodeId,
        max_depth: u32,
        max_candidates: usize,
    ) -> Vec<Candidate> {
        let mut seed: Vec<Candidate> = Vec::new();
        self.child_candidates(anchor, 1.0, 0, &mut seed);
        let mut frontier = HeapFrontier::new(seed);
        let mut result: Vec<Candidate> = Vec::new();
        let mut kids: Vec<Candidate> = Vec::new();
        while let Some(c) = frontier.pop_max() {
            if result.len() >= max_candidates {
                break;
            }
            if c.depth < max_depth {
                kids.clear();
                self.child_candidates(c.node, c.probability, c.depth, &mut kids);
                for k in kids.drain(..) {
                    frontier.push(k);
                }
            }
            result.push(c);
        }
        result
    }
}

/// Sentinel position for removed frontier slots.
const GONE: u32 = u32::MAX;

/// Heap key: probability first, then the candidate's *current position* in
/// the mirrored vector. The historical selection loop used
/// `iter().enumerate().max_by(total_cmp)` — which keeps the **last**
/// maximal element — followed by `swap_remove`, so among equal
/// probabilities the entry at the largest vector index won, and the
/// relocation performed by `swap_remove` could change which entry that
/// was on the next pop. Ordering by `(probability, position)` and
/// re-keying the relocated entry reproduces those picks exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
struct FrontKey {
    probability: f64,
    pos: u32,
    id: u32,
}

impl Eq for FrontKey {}

impl PartialOrd for FrontKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FrontKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.probability
            .total_cmp(&other.probability)
            .then_with(|| self.pos.cmp(&other.pos))
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Best-first frontier that replays the historical `Vec` + `max_by` +
/// `swap_remove` selection through a heap.
///
/// `positions` mirrors the old vector: `positions[p]` is the id of the
/// candidate the old loop would have had at index `p`. A pop performs a
/// literal `swap_remove` on the mirror; the relocated candidate gets a
/// fresh heap entry under its new position, and its old entry (still in
/// the heap under the stale position) is discarded lazily via the
/// `pos_of` check — `(id, pos)` pairs never repeat because a candidate's
/// position only ever decreases.
struct HeapFrontier {
    heap: std::collections::BinaryHeap<FrontKey>,
    /// All candidates ever pushed, addressed by id.
    slots: Vec<Candidate>,
    /// position → id: the mirror of the historical frontier vector.
    positions: Vec<u32>,
    /// id → current position (`GONE` once popped).
    pos_of: Vec<u32>,
}

impl HeapFrontier {
    fn new(seed: Vec<Candidate>) -> Self {
        let mut f = HeapFrontier {
            heap: std::collections::BinaryHeap::with_capacity(seed.len()),
            slots: Vec::with_capacity(seed.len()),
            positions: Vec::with_capacity(seed.len()),
            pos_of: Vec::with_capacity(seed.len()),
        };
        for c in seed {
            f.push(c);
        }
        f
    }

    fn push(&mut self, c: Candidate) {
        let id = self.slots.len() as u32;
        let pos = self.positions.len() as u32;
        self.slots.push(c);
        self.positions.push(id);
        self.pos_of.push(pos);
        self.heap.push(FrontKey { probability: c.probability, pos, id });
    }

    /// The candidate the historical loop's `max_by` + `swap_remove` would
    /// have returned next.
    fn pop_max(&mut self) -> Option<Candidate> {
        loop {
            let k = self.heap.pop()?;
            if self.pos_of[k.id as usize] != k.pos {
                continue; // superseded by a swap_remove relocation
            }
            // Mirror the swap_remove: the last entry moves into k.pos.
            let last = self.positions.pop().expect("a live position implies a non-empty mirror");
            if (k.pos as usize) < self.positions.len() {
                self.positions[k.pos as usize] = last;
                self.pos_of[last as usize] = k.pos;
                self.heap.push(FrontKey {
                    probability: self.slots[last as usize].probability,
                    pos: k.pos,
                    id: last,
                });
            }
            self.pos_of[k.id as usize] = GONE;
            return Some(self.slots[k.id as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_tree() -> PrefetchTree {
        let mut t = PrefetchTree::new();
        for b in [1u64, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2] {
            t.record_access(BlockId(b));
        }
        t
    }

    #[test]
    fn direct_children_probabilities() {
        let t = fig1_tree();
        let mut out = Vec::new();
        t.child_candidates(t.root(), 1.0, 0, &mut out);
        out.sort_by_key(|a| a.block.0);
        assert_eq!(out.len(), 2);
        // a: 5/6, b: 1/6, both at depth 1 with parent probability 1.
        assert_eq!(out[0].block, BlockId(1));
        assert!((out[0].probability - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(out[0].parent_probability, 1.0);
        assert_eq!(out[0].depth, 1);
        assert_eq!(out[1].block, BlockId(2));
        assert!((out[1].probability - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn path_probabilities_multiply() {
        // Paper Figure 1(a): p(c at distance 2 from root) = (5/6)·(1/5) = 1/6.
        let t = fig1_tree();
        let cands = t.candidates_below(t.root(), 2, 100);
        let c = cands.iter().find(|c| c.block == BlockId(3) && c.depth == 2).expect("c at d=2");
        assert!((c.probability - 1.0 / 6.0).abs() < 1e-12);
        assert!((c.parent_probability - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn candidates_below_is_best_first_and_bounded() {
        let t = fig1_tree();
        let cands = t.candidates_below(t.root(), 3, 3);
        assert_eq!(cands.len(), 3);
        // Non-increasing probability order.
        for w in cands.windows(2) {
            assert!(w[0].probability >= w[1].probability - 1e-12);
        }
        // The most probable candidate is node a (5/6).
        assert_eq!(cands[0].block, BlockId(1));
    }

    #[test]
    fn depth_limit_respected() {
        let t = fig1_tree();
        for c in t.candidates_below(t.root(), 1, 100) {
            assert_eq!(c.depth, 1);
        }
        for c in t.candidates_below(t.root(), 2, 100) {
            assert!(c.depth <= 2);
        }
    }

    #[test]
    fn empty_below_leaf() {
        let t = fig1_tree();
        let a = t.child_by_block(t.root(), BlockId(1)).unwrap();
        let c = t.child_by_block(a, BlockId(3)).unwrap();
        assert!(t.candidates_below(c, 4, 10).is_empty());
        let mut out = Vec::new();
        t.child_candidates(c, 1.0, 0, &mut out);
        assert!(out.is_empty());
    }

    /// The historical O(n²) selection loop, kept verbatim as the oracle
    /// for [`PrefetchTree::candidates_below`]'s heap rewrite.
    fn candidates_below_reference(
        t: &PrefetchTree,
        anchor: NodeId,
        max_depth: u32,
        max_candidates: usize,
    ) -> Vec<Candidate> {
        let mut frontier: Vec<Candidate> = Vec::new();
        t.child_candidates(anchor, 1.0, 0, &mut frontier);
        let mut result: Vec<Candidate> = Vec::new();
        while let Some((i, _)) =
            frontier.iter().enumerate().max_by(|a, b| a.1.probability.total_cmp(&b.1.probability))
        {
            let c = frontier.swap_remove(i);
            if result.len() >= max_candidates {
                break;
            }
            if c.depth < max_depth {
                t.child_candidates(c.node, c.probability, c.depth, &mut frontier);
            }
            result.push(c);
        }
        result
    }

    #[test]
    fn heap_selection_output_is_unchanged() {
        use rand::{Rng, SeedableRng};
        // Equal probabilities are common in LZ trees (sibling weights tie
        // constantly), so this exercises the tie-breaking replication, not
        // just the ordering. Exact equality: same candidates, same order,
        // same float bits.
        let mut trees = vec![fig1_tree()];
        for (seed, blocks, accesses) in [(8, 30, 20_000), (99, 6, 4_000), (5, 200, 10_000)] {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut t = PrefetchTree::new();
            for _ in 0..accesses {
                t.record_access(BlockId(rng.gen_range(0..blocks)));
            }
            trees.push(t);
        }
        for (ti, t) in trees.iter().enumerate() {
            for max_depth in [1, 2, 3, 5] {
                for max_candidates in [0, 1, 3, 17, 500] {
                    let got = t.candidates_below(t.root(), max_depth, max_candidates);
                    let want = candidates_below_reference(t, t.root(), max_depth, max_candidates);
                    assert_eq!(got, want, "tree {ti}, depth {max_depth}, cap {max_candidates}");
                }
            }
        }
    }

    /// Filter-after-full-enumeration oracle for the pruned early exit:
    /// keep exactly the candidates the pruned predicate accepts.
    fn filtered_full(
        t: &PrefetchTree,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        min_probability: f64,
    ) -> Vec<Candidate> {
        let mut full = Vec::new();
        t.child_candidates(node, base_probability, base_depth, &mut full);
        full.into_iter().filter(|c| c.probability >= min_probability).collect()
    }

    /// Anchors to compare at: the root plus its first few children (the
    /// pruned path is called below arbitrary interior nodes too).
    fn sample_anchors(t: &PrefetchTree) -> Vec<(NodeId, f64, u32)> {
        let mut anchors = vec![(t.root(), 1.0f64, 0u32)];
        let mut kids = Vec::new();
        t.child_candidates(t.root(), 1.0, 0, &mut kids);
        anchors.extend(kids.iter().take(8).map(|c| (c.node, c.probability, c.depth)));
        anchors
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// The weight-sorted early-exit invariant: because children are
        /// stored by descending weight, breaking at the first child below
        /// the cutoff yields exactly the filter-after-full-enumeration
        /// result — same candidates, same order, same probability bits.
        #[test]
        fn pruned_equals_filter_after_full_enumeration(
            accesses in proptest::collection::vec(0u64..24, 1..400),
            cutoff_scale in 0.0f64..1.2,
        ) {
            let mut t = PrefetchTree::new();
            for &b in &accesses {
                t.record_access(BlockId(b));
            }
            for (node, base_p, base_d) in sample_anchors(&t) {
                // Cutoffs from 0 (keep everything) past base_p (drop
                // everything), relative to the anchor's own path prob.
                let min_p = cutoff_scale * base_p;
                let mut pruned = Vec::new();
                t.child_candidates_pruned(node, base_p, base_d, min_p, &mut pruned);
                let want = filtered_full(&t, node, base_p, base_d, min_p);
                proptest::prop_assert_eq!(&pruned, &want);
            }
        }

        /// The SoA emission path produces the same rows, in the same
        /// order, with the same bits as the AoS pruned enumeration.
        #[test]
        fn soa_emission_matches_aos(
            accesses in proptest::collection::vec(0u64..24, 1..400),
            cutoff_scale in 0.0f64..1.2,
        ) {
            let mut t = PrefetchTree::new();
            for &b in &accesses {
                t.record_access(BlockId(b));
            }
            for (node, base_p, base_d) in sample_anchors(&t) {
                let min_p = cutoff_scale * base_p;
                let mut aos = Vec::new();
                t.child_candidates_pruned(node, base_p, base_d, min_p, &mut aos);
                let mut soa = CandidateBatch::new();
                t.child_candidates_pruned_soa(node, base_p, base_d, min_p, &mut soa);
                proptest::prop_assert_eq!(soa.len(), aos.len());
                for (i, want) in aos.iter().enumerate() {
                    let got = soa.candidate(i);
                    proptest::prop_assert_eq!(&got, want);
                    proptest::prop_assert_eq!(got.probability.to_bits(), want.probability.to_bits());
                    proptest::prop_assert_eq!(
                        got.parent_probability.to_bits(),
                        want.parent_probability.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_batch_push_and_clear_keep_columns_aligned() {
        let t = fig1_tree();
        let mut batch = CandidateBatch::new();
        assert!(batch.is_empty());
        let mut aos = Vec::new();
        t.child_candidates(t.root(), 1.0, 0, &mut aos);
        for &c in &aos {
            batch.push(c);
        }
        assert_eq!(batch.len(), aos.len());
        for (i, want) in aos.iter().enumerate() {
            assert_eq!(&batch.candidate(i), want);
        }
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.node.len(), 0);
        assert_eq!(batch.d_b.len(), 0);
    }

    #[test]
    fn probabilities_are_valid() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let mut t = PrefetchTree::new();
        for _ in 0..20_000 {
            t.record_access(BlockId(rng.gen_range(0..30)));
        }
        let cands = t.candidates_below(t.root(), 5, 500);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.probability > 0.0 && c.probability <= 1.0 + 1e-12);
            assert!(c.probability <= c.parent_probability + 1e-12);
            assert!(c.depth >= 1);
        }
        // Direct children of the anchor sum to ≤ 1.
        let sum: f64 = cands.iter().filter(|c| c.depth == 1).map(|c| c.probability).sum();
        assert!(sum <= 1.0 + 1e-9, "children sum {sum}");
    }
}
