//! Prefetch-candidate enumeration.
//!
//! A candidate is a descendant of the parse cursor, carrying the path
//! probability `p_b` (product of edge probabilities from the cursor), its
//! parent's path probability `p_x`, and the distance `d_b` (edges from the
//! cursor) — the three inputs the paper's benefit equation (Eq. 1) and
//! overhead equation (Eq. 14) need.
//!
//! Enumeration is *incremental*: `prefetch-core` maintains a best-first
//! frontier and calls [`PrefetchTree::child_candidates`] to expand a
//! candidate's children only when the candidate itself has been settled
//! (prefetched, or found already cached). This realizes the paper's
//! "prefetch along multiple paths simultaneously" without materializing
//! whole subtrees.

use crate::node::NodeId;
use crate::tree::PrefetchTree;
use prefetch_trace::BlockId;

/// A prefetch candidate below the parse cursor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Tree node of the candidate block.
    pub node: NodeId,
    /// The candidate block.
    pub block: BlockId,
    /// Path probability `p_b` from the anchor (cursor) to this node.
    pub probability: f64,
    /// Path probability `p_x` of this node's parent (1.0 for direct
    /// children of the anchor).
    pub parent_probability: f64,
    /// Distance `d_b`: edges from the anchor.
    pub depth: u32,
}

impl PrefetchTree {
    /// Candidates one edge below `node`.
    ///
    /// `base_probability` is the path probability of `node` itself
    /// relative to the anchor (1.0 when `node` *is* the anchor), and
    /// `base_depth` its distance from the anchor. Children with zero
    /// probability (possible after weight-free structural nodes) are
    /// skipped.
    pub fn child_candidates(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p <= 0.0 {
                continue;
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// Candidates one edge below `node` whose path probability is at least
    /// `min_probability`, cheapest-first prune: children are stored sorted
    /// by descending weight, so enumeration stops at the first child below
    /// the cutoff. This keeps per-period work proportional to the number
    /// of *useful* candidates even below a root with tens of thousands of
    /// children.
    pub fn child_candidates_pruned(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        min_probability: f64,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p < min_probability || p <= 0.0 {
                break; // children are weight-sorted: the rest are smaller
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// The `k` most probable candidates one edge below `node` — simply the
    /// first `k` children, because children are stored sorted by weight.
    /// Used by the `tree-children` baseline (Kroeger & Long).
    pub fn child_candidates_topk(
        &self,
        node: NodeId,
        base_probability: f64,
        base_depth: u32,
        k: usize,
        out: &mut Vec<Candidate>,
    ) {
        let parent_weight = self.weight(node);
        if parent_weight == 0 {
            return;
        }
        for child in self.children(node).take(k) {
            let p = base_probability * self.weight(child) as f64 / parent_weight as f64;
            if p <= 0.0 {
                break;
            }
            out.push(Candidate {
                node: child,
                block: self.block(child).expect("children are never the root"),
                probability: p,
                parent_probability: base_probability,
                depth: base_depth + 1,
            });
        }
    }

    /// All candidates within `max_depth` edges of `anchor`, best-first by
    /// probability. Convenience for analysis and the parametric baselines
    /// (`tree-threshold`, `tree-children`); the cost-benefit policy uses
    /// the incremental frontier instead.
    pub fn candidates_below(
        &self,
        anchor: NodeId,
        max_depth: u32,
        max_candidates: usize,
    ) -> Vec<Candidate> {
        let mut frontier: Vec<Candidate> = Vec::new();
        self.child_candidates(anchor, 1.0, 0, &mut frontier);
        let mut result: Vec<Candidate> = Vec::new();
        while let Some((i, _)) =
            frontier.iter().enumerate().max_by(|a, b| a.1.probability.total_cmp(&b.1.probability))
        {
            let c = frontier.swap_remove(i);
            if result.len() >= max_candidates {
                break;
            }
            if c.depth < max_depth {
                self.child_candidates(c.node, c.probability, c.depth, &mut frontier);
            }
            result.push(c);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_tree() -> PrefetchTree {
        let mut t = PrefetchTree::new();
        for b in [1u64, 1, 3, 1, 2, 1, 2, 1, 1, 2, 2, 2] {
            t.record_access(BlockId(b));
        }
        t
    }

    #[test]
    fn direct_children_probabilities() {
        let t = fig1_tree();
        let mut out = Vec::new();
        t.child_candidates(t.root(), 1.0, 0, &mut out);
        out.sort_by_key(|a| a.block.0);
        assert_eq!(out.len(), 2);
        // a: 5/6, b: 1/6, both at depth 1 with parent probability 1.
        assert_eq!(out[0].block, BlockId(1));
        assert!((out[0].probability - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(out[0].parent_probability, 1.0);
        assert_eq!(out[0].depth, 1);
        assert_eq!(out[1].block, BlockId(2));
        assert!((out[1].probability - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn path_probabilities_multiply() {
        // Paper Figure 1(a): p(c at distance 2 from root) = (5/6)·(1/5) = 1/6.
        let t = fig1_tree();
        let cands = t.candidates_below(t.root(), 2, 100);
        let c = cands.iter().find(|c| c.block == BlockId(3) && c.depth == 2).expect("c at d=2");
        assert!((c.probability - 1.0 / 6.0).abs() < 1e-12);
        assert!((c.parent_probability - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn candidates_below_is_best_first_and_bounded() {
        let t = fig1_tree();
        let cands = t.candidates_below(t.root(), 3, 3);
        assert_eq!(cands.len(), 3);
        // Non-increasing probability order.
        for w in cands.windows(2) {
            assert!(w[0].probability >= w[1].probability - 1e-12);
        }
        // The most probable candidate is node a (5/6).
        assert_eq!(cands[0].block, BlockId(1));
    }

    #[test]
    fn depth_limit_respected() {
        let t = fig1_tree();
        for c in t.candidates_below(t.root(), 1, 100) {
            assert_eq!(c.depth, 1);
        }
        for c in t.candidates_below(t.root(), 2, 100) {
            assert!(c.depth <= 2);
        }
    }

    #[test]
    fn empty_below_leaf() {
        let t = fig1_tree();
        let a = t.child_by_block(t.root(), BlockId(1)).unwrap();
        let c = t.child_by_block(a, BlockId(3)).unwrap();
        assert!(t.candidates_below(c, 4, 10).is_empty());
        let mut out = Vec::new();
        t.child_candidates(c, 1.0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn probabilities_are_valid() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let mut t = PrefetchTree::new();
        for _ in 0..20_000 {
            t.record_access(BlockId(rng.gen_range(0..30)));
        }
        let cands = t.candidates_below(t.root(), 5, 500);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.probability > 0.0 && c.probability <= 1.0 + 1e-12);
            assert!(c.probability <= c.parent_probability + 1e-12);
            assert!(c.depth >= 1);
        }
        // Direct children of the anchor sum to ≤ 1.
        let sum: f64 = cands.iter().filter(|c| c.depth == 1).map(|c| c.probability).sum();
        assert!(sum <= 1.0 + 1e-9, "children sum {sum}");
    }
}
