//! Index-based struct-of-arrays node arena.
//!
//! The seed layout kept one `Node` struct per tree node, each owning a
//! `Vec<u32>` of children — 64 bytes of struct (with padding) plus a
//! separately-allocated child vector per internal node. This module
//! replaces that with parallel arrays (one `Vec` per field) and a single
//! shared child *slab*: every node's child list lives in a power-of-two
//! sized slot of one backing `Vec<u32>`, handed out and reclaimed through
//! per-class free lists. Wins:
//!
//! * ~36 bytes of scalar state per node instead of 64, no per-node
//!   allocator traffic, and fields that hot loops never touch (LRU links)
//!   no longer share cache lines with the ones they always touch
//!   (weights);
//! * exact [`Arena::bytes_in_use`] accounting from container capacities —
//!   what `pfserve` admission charges — instead of the paper's flat
//!   40-byte estimate;
//! * the prerequisite layout for batched SoA kernels (ROADMAP item 3).
//!
//! Child lists preserve *positional* semantics exactly: `child_push`
//! appends, `child_remove_at` shifts the suffix left (refreshing the
//! shifted nodes' `pos_in_parent`), `child_swap` exchanges two slots.
//! The weight-sorted child order that candidate pruning depends on is
//! therefore byte-identical to the per-node-`Vec` layout it replaces.
//!
//! Node ids are reused through [`Arena::free`] (LIFO, matching the seed's
//! free list) so `OverflowPolicy::Evict` churn cannot grow the arrays
//! without bound.

use crate::node::NIL;
use prefetch_hash::FxHashMap;
use prefetch_trace::BlockId;

/// `ch_class` value for "no child slot allocated".
pub(crate) const NO_CLASS: u8 = u8::MAX;

/// Shared storage for all child lists: one backing slab, carved into
/// power-of-two slots recycled through per-class free lists.
#[derive(Clone, Debug, Default)]
pub(crate) struct ChildPool {
    pub(crate) slab: Vec<u32>,
    /// `free[c]` holds start offsets of reclaimed slots of capacity `1 << c`.
    pub(crate) free: Vec<Vec<u32>>,
}

impl ChildPool {
    /// Hand out a slot of capacity `1 << class`, reusing a freed one when
    /// available.
    fn alloc(&mut self, class: u8) -> u32 {
        if let Some(list) = self.free.get_mut(class as usize) {
            if let Some(off) = list.pop() {
                return off;
            }
        }
        let size = 1usize << class;
        assert!(self.slab.len() + size < NIL as usize, "child slab overflow");
        let off = self.slab.len() as u32;
        self.slab.resize(self.slab.len() + size, NIL);
        off
    }

    fn release(&mut self, off: u32, class: u8) {
        if self.free.len() <= class as usize {
            self.free.resize(class as usize + 1, Vec::new());
        }
        self.free[class as usize].push(off);
    }
}

/// The struct-of-arrays node store. All `Vec`s are indexed by node id and
/// always have identical lengths; a node id is live unless it appears in
/// [`Arena::free`].
///
/// Invariant (the seed kept this comment on `Node::pos_in_parent`): for
/// every live node `c` with parent `p`, `children(p)[pos_in_parent[c]] == c`,
/// so child removal stays O(1) lookup + O(suffix) shift.
#[derive(Clone, Debug)]
pub(crate) struct Arena {
    /// The disk block each node represents (undefined for the root).
    pub(crate) blocks: Vec<u64>,
    /// Visit counts.
    pub(crate) weights: Vec<u64>,
    /// Parent node ids (NIL for the root).
    pub(crate) parents: Vec<u32>,
    /// Each node's position in its parent's child list.
    pub(crate) pos_in_parent: Vec<u32>,
    /// Last-visited child (NIL if never visited).
    pub(crate) lvc: Vec<u32>,
    /// Intrusive LRU links for node limiting.
    pub(crate) lru_prev: Vec<u32>,
    pub(crate) lru_next: Vec<u32>,
    /// Child slot start offset into `pool.slab`.
    pub(crate) ch_start: Vec<u32>,
    /// Live children in the slot.
    pub(crate) ch_len: Vec<u32>,
    /// Slot capacity class (`1 << class` slots), NO_CLASS when none.
    pub(crate) ch_class: Vec<u8>,
    pub(crate) pool: ChildPool,
    /// Reusable node ids (LIFO).
    pub(crate) free: Vec<u32>,
    /// (parent id, block) → child id.
    pub(crate) edges: FxHashMap<(u32, u64), u32>,
}

impl Arena {
    /// An arena holding only the root (id 0).
    pub(crate) fn with_root() -> Self {
        Arena {
            blocks: vec![u64::MAX],
            weights: vec![0],
            parents: vec![NIL],
            pos_in_parent: vec![NIL],
            lvc: vec![NIL],
            lru_prev: vec![NIL],
            lru_next: vec![NIL],
            ch_start: vec![0],
            ch_len: vec![0],
            ch_class: vec![NO_CLASS],
            pool: ChildPool::default(),
            free: Vec::new(),
            edges: FxHashMap::default(),
        }
    }

    /// Total slots (live + freed), including the root.
    pub(crate) fn len(&self) -> usize {
        self.weights.len()
    }

    /// Allocate a node, reusing a freed id when available. The new node
    /// has weight 0, no children, and unlinked LRU state.
    pub(crate) fn alloc(&mut self, block: BlockId, parent: u32, pos: u32) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let ni = i as usize;
                self.blocks[ni] = block.0;
                self.weights[ni] = 0;
                self.parents[ni] = parent;
                self.pos_in_parent[ni] = pos;
                self.lvc[ni] = NIL;
                self.lru_prev[ni] = NIL;
                self.lru_next[ni] = NIL;
                debug_assert_eq!(self.ch_len[ni], 0, "freed node kept children");
                debug_assert_eq!(self.ch_class[ni], NO_CLASS, "freed node kept a child slot");
                i
            }
            None => {
                assert!(self.len() < NIL as usize, "prefetch tree arena overflow");
                self.blocks.push(block.0);
                self.weights.push(0);
                self.parents.push(parent);
                self.pos_in_parent.push(pos);
                self.lvc.push(NIL);
                self.lru_prev.push(NIL);
                self.lru_next.push(NIL);
                self.ch_start.push(0);
                self.ch_len.push(0);
                self.ch_class.push(NO_CLASS);
                (self.len() - 1) as u32
            }
        }
    }

    /// Return a node id (and its child slot) to the free lists.
    pub(crate) fn release(&mut self, n: u32) {
        let ni = n as usize;
        debug_assert_eq!(self.ch_len[ni], 0, "releasing a node that still has children");
        if self.ch_class[ni] != NO_CLASS {
            self.pool.release(self.ch_start[ni], self.ch_class[ni]);
            self.ch_start[ni] = 0;
            self.ch_class[ni] = NO_CLASS;
        }
        self.free.push(n);
    }

    /// The live children of `n`, in weight-sorted order.
    pub(crate) fn children(&self, n: u32) -> &[u32] {
        let ni = n as usize;
        let start = self.ch_start[ni] as usize;
        &self.pool.slab[start..start + self.ch_len[ni] as usize]
    }

    pub(crate) fn child_at(&self, n: u32, i: usize) -> u32 {
        debug_assert!(i < self.ch_len[n as usize] as usize);
        self.pool.slab[self.ch_start[n as usize] as usize + i]
    }

    pub(crate) fn is_leaf(&self, n: u32) -> bool {
        self.ch_len[n as usize] == 0
    }

    /// Append a child id, growing the slot to the next capacity class
    /// (copying into a fresh slot, reclaiming the old one) when full.
    pub(crate) fn child_push(&mut self, n: u32, c: u32) {
        let ni = n as usize;
        let len = self.ch_len[ni];
        let class = self.ch_class[ni];
        if class == NO_CLASS {
            self.ch_start[ni] = self.pool.alloc(0);
            self.ch_class[ni] = 0;
        } else if len == 1u32 << class {
            let grown = self.pool.alloc(class + 1);
            let old = self.ch_start[ni];
            self.pool.slab.copy_within(old as usize..(old + len) as usize, grown as usize);
            self.pool.release(old, class);
            self.ch_start[ni] = grown;
            self.ch_class[ni] = class + 1;
        }
        self.pool.slab[self.ch_start[ni] as usize + len as usize] = c;
        self.ch_len[ni] = len + 1;
    }

    /// Shifting removal at `pos` — exactly `Vec::remove` semantics — with
    /// the shifted suffix's `pos_in_parent` refreshed (the seed's
    /// `remove_leaf` did both steps; fusing them keeps the refresh from
    /// re-reading the list).
    pub(crate) fn child_remove_at(&mut self, n: u32, pos: usize) {
        let ni = n as usize;
        let len = self.ch_len[ni] as usize;
        debug_assert!(pos < len);
        let start = self.ch_start[ni] as usize;
        self.pool.slab.copy_within(start + pos + 1..start + len, start + pos);
        self.ch_len[ni] = (len - 1) as u32;
        for i in pos..len - 1 {
            let moved = self.pool.slab[start + i] as usize;
            self.pos_in_parent[moved] = i as u32;
        }
    }

    /// Swap two child positions (the weight-class swap in
    /// `increment_child_weight`). Callers fix `pos_in_parent`.
    pub(crate) fn child_swap(&mut self, n: u32, i: usize, j: usize) {
        let start = self.ch_start[n as usize] as usize;
        debug_assert!(i < self.ch_len[n as usize] as usize);
        debug_assert!(j < self.ch_len[n as usize] as usize);
        self.pool.slab.swap(start + i, start + j);
    }

    /// Exact bytes owned by the arena: every container's *capacity* times
    /// its element size. The hash map's open-addressing table is charged
    /// at one metadata byte plus one entry per usable slot — deterministic
    /// and within the allocator-rounding noise of the true figure; every
    /// other term is exact.
    pub(crate) fn bytes_in_use(&self) -> usize {
        fn vec_bytes<T>(v: &[T]) -> usize {
            std::mem::size_of_val(v)
        }
        let scalar = self.blocks.capacity() * 8
            + self.weights.capacity() * 8
            + self.parents.capacity() * 4
            + self.pos_in_parent.capacity() * 4
            + self.lvc.capacity() * 4
            + self.lru_prev.capacity() * 4
            + self.lru_next.capacity() * 4
            + self.ch_start.capacity() * 4
            + self.ch_len.capacity() * 4
            + self.ch_class.capacity();
        let slab = self.pool.slab.capacity() * 4;
        let pool_free: usize = self.pool.free.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.pool.free.iter().map(|v| v.capacity() * 4).sum::<usize>();
        let free = self.free.capacity() * 4;
        let edges = self.edges.capacity()
            * (std::mem::size_of::<((u32, u64), u32)>() + 1/* swiss-table metadata byte */);
        let _ = vec_bytes::<u32>(&[]);
        scalar + slab + pool_free + free + edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_ids_lifo() {
        let mut a = Arena::with_root();
        let x = a.alloc(BlockId(1), 0, 0);
        let y = a.alloc(BlockId(2), 0, 1);
        assert_eq!((x, y), (1, 2));
        a.release(x);
        a.release(y);
        // LIFO: y comes back first.
        assert_eq!(a.alloc(BlockId(3), 0, 0), y);
        assert_eq!(a.alloc(BlockId(4), 0, 1), x);
        assert_eq!(a.len(), 3, "no new slots were grown");
    }

    #[test]
    fn child_slots_grow_by_doubling_and_recycle() {
        let mut a = Arena::with_root();
        let kids: Vec<u32> = (0..6).map(|i| a.alloc(BlockId(i), 0, i as u32)).collect();
        for &k in &kids {
            a.child_push(0, k);
        }
        assert_eq!(a.children(0), &kids[..]);
        assert_eq!(a.ch_class[0], 3, "6 children fit a class-3 (8-slot) slot");
        // The outgrown class-0/1/2 slots were reclaimed.
        let reclaimed: usize = a.pool.free.iter().map(Vec::len).sum();
        assert_eq!(reclaimed, 3);
        // A fresh node reuses the freed class-0 slot instead of growing.
        let slab_before = a.pool.slab.len();
        let n = a.alloc(BlockId(9), 1, 0);
        a.child_push(1, n);
        assert_eq!(a.pool.slab.len(), slab_before);
    }

    #[test]
    fn child_remove_shifts_and_refreshes_positions() {
        let mut a = Arena::with_root();
        let kids: Vec<u32> = (0..5).map(|i| a.alloc(BlockId(i), 0, i as u32)).collect();
        for &k in &kids {
            a.child_push(0, k);
        }
        a.child_remove_at(0, 1);
        assert_eq!(a.children(0), &[kids[0], kids[2], kids[3], kids[4]]);
        for (pos, &k) in a.children(0).iter().enumerate() {
            assert_eq!(a.pos_in_parent[k as usize] as usize, pos);
        }
    }

    #[test]
    fn bytes_in_use_tracks_growth() {
        let mut a = Arena::with_root();
        let empty = a.bytes_in_use();
        for i in 0..1000 {
            let n = a.alloc(BlockId(i), 0, i as u32);
            a.child_push(0, n);
            a.edges.insert((0, i), n);
        }
        assert!(a.bytes_in_use() > empty + 1000 * 36, "per-node scalars must be charged");
    }
}
