//! Tree statistics: the counters behind Tables 2 and 3 of the paper.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::PrefetchTree::record_access`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total accesses recorded.
    pub accesses: u64,
    /// Accesses that were *predictable*: present as a child of the cursor
    /// (paper Section 9.4, Table 2).
    pub predictable: u64,
    /// Visits to a node that already had a last-visited child
    /// (the denominator of Table 3).
    pub lvc_opportunities: u64,
    /// Visits that repeated the last-visited child (Table 3 numerator).
    pub lvc_repeats: u64,
    /// Nodes created (substrings parsed).
    pub nodes_created: u64,
    /// Nodes evicted by the LRU node limit.
    pub nodes_evicted: u64,
    /// Node creations refused because the tree was at its budget under
    /// [`crate::tree::OverflowPolicy::Freeze`] (always zero when evicting
    /// or unlimited).
    pub nodes_capped: u64,
    /// Parse resets (completed substrings).
    pub resets: u64,
}

impl TreeStats {
    /// Prediction accuracy: fraction of accesses that were predictable
    /// (Table 2).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.predictable as f64 / self.accesses as f64
        }
    }

    /// Fraction of node re-visits that followed the last-visited child
    /// (Table 3).
    pub fn lvc_repeat_rate(&self) -> f64 {
        if self.lvc_opportunities == 0 {
            0.0
        } else {
            self.lvc_repeats as f64 / self.lvc_opportunities as f64
        }
    }

    /// Mean substring length of the LZ parse (accesses per completed
    /// substring). Longer substrings mean more learnable structure.
    pub fn mean_substring_len(&self) -> f64 {
        if self.resets == 0 {
            0.0
        } else {
            self.accesses as f64 / self.resets as f64
        }
    }
}

/// Build a tree over a block sequence and return its statistics —
/// the one-pass analysis behind Tables 2 and 3.
pub fn analyze_blocks<I>(blocks: I, node_limit: usize) -> TreeStats
where
    I: IntoIterator<Item = prefetch_trace::BlockId>,
{
    let mut tree = if node_limit == usize::MAX {
        crate::PrefetchTree::new()
    } else {
        crate::PrefetchTree::with_node_limit(node_limit)
    };
    for b in blocks {
        tree.record_access(b);
    }
    *tree.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefetch_trace::BlockId;

    #[test]
    fn rates_on_empty_stats() {
        let s = TreeStats::default();
        assert_eq!(s.prediction_accuracy(), 0.0);
        assert_eq!(s.lvc_repeat_rate(), 0.0);
        assert_eq!(s.mean_substring_len(), 0.0);
    }

    #[test]
    fn analyze_blocks_runs_full_pipeline() {
        let blocks: Vec<BlockId> = (0..100).map(|i| BlockId(i % 4)).collect();
        let s = analyze_blocks(blocks, usize::MAX);
        assert_eq!(s.accesses, 100);
        assert!(s.prediction_accuracy() > 0.5, "cycle should become predictable");
        assert!(s.mean_substring_len() > 1.0);
    }

    #[test]
    fn perfectly_repetitive_stream_approaches_full_predictability() {
        let blocks: Vec<BlockId> = (0..4000).map(|i| BlockId(i % 3)).collect();
        let s = analyze_blocks(blocks, usize::MAX);
        assert!(s.prediction_accuracy() > 0.9, "accuracy {}", s.prediction_accuracy());
        assert!(s.lvc_repeat_rate() > 0.8, "lvc {}", s.lvc_repeat_rate());
    }

    #[test]
    fn random_unique_stream_is_unpredictable() {
        let blocks: Vec<BlockId> = (0..2000).map(BlockId).collect();
        let s = analyze_blocks(blocks, usize::MAX);
        assert_eq!(s.prediction_accuracy(), 0.0);
        assert_eq!(s.nodes_created, 2000);
        assert_eq!(s.resets, 2000);
        assert_eq!(s.mean_substring_len(), 1.0);
    }

    #[test]
    fn node_limit_flows_through() {
        let blocks: Vec<BlockId> = (0..1000).map(BlockId).collect();
        let s = analyze_blocks(blocks, 16);
        assert!(s.nodes_evicted >= 1000 - 16 - 1);
    }
}
