use prefetch_trace::synth::TraceKind;
use prefetch_tree::stats::analyze_blocks;

fn main() {
    println!("trace   accuracy  lvc_rate  (paper: cello 35.78/24.37, snake 61.50/38.49, cad 59.90/68.61, sitar 71.39/73.61)");
    for kind in TraceKind::ALL {
        let t = kind.generate(400_000, 1);
        let s = analyze_blocks(t.blocks(), usize::MAX);
        println!(
            "{:<7} {:>6.2}%  {:>6.2}%",
            kind.name(),
            100.0 * s.prediction_accuracy(),
            100.0 * s.lvc_repeat_rate()
        );
    }
}
