use prefetch_trace::stats::TraceStats;
use prefetch_trace::synth::TraceKind;

fn main() {
    for kind in TraceKind::ALL {
        let t = kind.generate(200_000, 1);
        let s = TraceStats::compute(&t);
        println!(
            "{kind}: seq={:.3} unique_frac={:.3} bigram_rep={:.3} reuse={:.3} procs={}",
            s.sequential_fraction,
            s.unique_blocks as f64 / s.refs as f64,
            s.bigram_repetition,
            s.reuse_fraction,
            s.processes
        );
    }
}
