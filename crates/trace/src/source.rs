//! Streaming trace sources.
//!
//! [`TraceSource`] is the abstraction the simulator consumes: a rewindable
//! stream of [`TraceRecord`]s with attached [`TraceMeta`]. It decouples
//! *where references come from* (an in-memory [`Trace`], a synthetic
//! generator emitting records on the fly, an on-disk file read
//! incrementally) from *who consumes them*, so paper-scale runs (the
//! original cello trace is 3.5 M references) need memory independent of
//! trace length.
//!
//! Implementations in this crate:
//!
//! * [`TraceCursor`] — over a materialized [`Trace`] (via
//!   [`Trace::source`]);
//! * [`crate::synth::SynthSource`] — the four synthetic generators,
//!   emitting records on the fly (including their L1-filter stage);
//! * [`crate::io::FileSource`] ([`crate::io::TextSource`],
//!   [`crate::io::BinarySource`]) — incremental on-disk readers;
//! * [`L1FilterSource`] — a streaming first-level-cache filter over any
//!   other source.

use crate::io::TraceIoError;
use crate::synth::LruSet;
use crate::{Trace, TraceMeta, TraceRecord};

/// A rewindable stream of trace records with metadata.
///
/// Sources are *fused after failure*: when [`TraceSource::next_record`]
/// returns an error, later calls return `Ok(None)` until the source is
/// rewound. In-memory and synthetic sources never fail.
pub trait TraceSource {
    /// Metadata describing the trace. File sources may refine this while
    /// streaming (a `#!meta` line), so callers wanting the final metadata
    /// should re-read it after exhaustion.
    fn meta(&self) -> &TraceMeta;

    /// Number of records this source will yield from the start, if known
    /// up front (in-memory, synthetic, and binary-file sources know;
    /// text-file sources do not).
    fn len_hint(&self) -> Option<u64>;

    /// Produce the next record, `Ok(None)` at end of stream.
    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError>;

    /// Reset the source so the next [`TraceSource::next_record`] yields
    /// the first record again, bit-identically.
    fn rewind(&mut self) -> Result<(), TraceIoError>;

    /// Malformed records skipped so far by a lossy reader (this pass;
    /// counters reset on rewind). Sources that cannot lose records —
    /// in-memory, synthetic, strict file readers — report `0`, the
    /// default.
    fn skipped(&self) -> u64 {
        0
    }

    /// Drain the source into an in-memory [`Trace`] (the bridge back to
    /// the materialized world; the inverse of [`Trace::source`]).
    fn materialize(&mut self) -> Result<Trace, TraceIoError>
    where
        Self: Sized,
    {
        let mut trace = Trace::new(self.meta().clone());
        if let Some(n) = self.len_hint() {
            trace.reserve(n as usize);
        }
        while let Some(r) = self.next_record()? {
            trace.push(r);
        }
        // Pick up metadata refined while streaming (text `#!meta` lines).
        *trace.meta_mut() = self.meta().clone();
        Ok(trace)
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn meta(&self) -> &TraceMeta {
        (**self).meta()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        (**self).next_record()
    }
    fn rewind(&mut self) -> Result<(), TraceIoError> {
        (**self).rewind()
    }
    fn skipped(&self) -> u64 {
        (**self).skipped()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn meta(&self) -> &TraceMeta {
        (**self).meta()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        (**self).next_record()
    }
    fn rewind(&mut self) -> Result<(), TraceIoError> {
        (**self).rewind()
    }
    fn skipped(&self) -> u64 {
        (**self).skipped()
    }
}

/// Streaming view over a materialized [`Trace`] (see [`Trace::source`]).
#[derive(Debug)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// A cursor positioned at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor { trace, pos: 0 }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn meta(&self) -> &TraceMeta {
        self.trace.meta()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        let r = self.trace.records().get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        Ok(r)
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        self.pos = 0;
        Ok(())
    }
}

/// Streaming first-level-cache filter: forwards only the records that
/// *miss* an LRU cache of the configured size, reproducing how the
/// original cello/snake traces were captured at the disk level (the
/// streaming counterpart of [`crate::synth::L1Filter`], usable over file
/// sources too).
pub struct L1FilterSource<S> {
    inner: S,
    capacity_blocks: usize,
    cache: LruSet,
}

impl<S: TraceSource> L1FilterSource<S> {
    /// Filter `inner` through an LRU cache of `capacity_blocks` blocks.
    ///
    /// # Panics
    /// Panics if `capacity_blocks` is zero.
    pub fn new(inner: S, capacity_blocks: usize) -> Self {
        L1FilterSource { inner, capacity_blocks, cache: LruSet::new(capacity_blocks) }
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSource> TraceSource for L1FilterSource<S> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    /// Unknown: depends on how many inner records hit the filter cache.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        while let Some(r) = self.inner.next_record()? {
            if !self.cache.access(r.block) {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        self.inner.rewind()?;
        self.cache = LruSet::new(self.capacity_blocks);
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.inner.skipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TraceKind;

    #[test]
    fn cursor_streams_the_trace_and_rewinds() {
        let t = Trace::from_blocks([3u64, 1, 4, 1, 5]);
        let mut s = t.source();
        assert_eq!(s.len_hint(), Some(5));
        let mut seen = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            seen.push(r.block.0);
        }
        assert_eq!(seen, [3, 1, 4, 1, 5]);
        assert_eq!(s.next_record().unwrap(), None);
        s.rewind().unwrap();
        assert_eq!(s.next_record().unwrap().unwrap().block.0, 3);
    }

    #[test]
    fn materialize_round_trips_the_cursor() {
        let t = TraceKind::Cad.generate(500, 9);
        let back = t.source().materialize().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sources_are_object_safe_and_usable_boxed() {
        let t = Trace::from_blocks(0u64..10);
        let mut boxed: Box<dyn TraceSource + '_> = Box::new(t.source());
        let mut n = 0;
        while boxed.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        boxed.rewind().unwrap();
        assert!(boxed.next_record().unwrap().is_some());
    }

    #[test]
    fn l1_filter_source_matches_the_workload_filter() {
        // Filter a materialized trace and compare against an LruSet run
        // by hand.
        let t = TraceKind::Snake.generate(3000, 4);
        let mut expected = Vec::new();
        let mut lru = LruSet::new(64);
        for r in t.records() {
            if !lru.access(r.block) {
                expected.push(*r);
            }
        }
        let mut filtered = L1FilterSource::new(t.source(), 64);
        assert_eq!(filtered.len_hint(), None);
        let got = filtered.materialize().unwrap();
        assert_eq!(got.records(), &expected[..]);

        // Rewinding resets the filter cache: a second pass is identical.
        filtered.rewind().unwrap();
        let again = filtered.materialize().unwrap();
        assert_eq!(again.records(), &expected[..]);
    }
}
