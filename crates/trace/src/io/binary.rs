//! Compact binary trace format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    : 4 bytes  b"PFTR"
//! version  : u16      (currently 1)
//! meta_len : u32      length of the JSON-encoded TraceMeta
//! meta     : meta_len bytes (same JSON as the text format's #!meta line)
//! count    : u64      number of records
//! records  : count × record
//! ```
//!
//! Each record is a varint-encoded *zig-zag delta* from the previous block
//! id, followed by a flags byte only when pid/kind differ from the previous
//! record. The common case (same pid, read, small seek distance) costs 1-3
//! bytes. Encoding detail: the low bit of the varint payload marks whether a
//! flags byte follows, so `delta` is shifted left once more.

use crate::io::text::{read_text, write_text, ReadOptions};
use crate::io::TraceIoError;
use crate::record::{AccessKind, TraceRecord};
use crate::Trace;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};

const MAGIC: [u8; 4] = *b"PFTR";
const VERSION: u16 = 1;

/// Serialize `trace` in the binary format.
pub fn write_binary<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    let mut header = BytesMut::with_capacity(64);
    header.put_slice(&MAGIC);
    header.put_u16_le(VERSION);

    // Reuse the text format's meta JSON by writing a one-trace text header.
    let meta_json = {
        let mut buf = Vec::new();
        let empty = Trace::from_records(trace.meta().clone(), Vec::new());
        write_text(&empty, &mut buf).expect("in-memory write cannot fail");
        let line = std::str::from_utf8(&buf).expect("meta is utf8");
        line.trim_start_matches("#!meta ").trim_end().to_string()
    };
    header.put_u32_le(meta_json.len() as u32);
    header.put_slice(meta_json.as_bytes());
    header.put_u64_le(trace.len() as u64);
    w.write_all(&header)?;

    let mut body = BytesMut::with_capacity(trace.len() * 3);
    let mut prev_block: u64 = 0;
    let mut prev_pid: u32 = 0;
    let mut prev_kind = AccessKind::Read;
    for r in trace.records() {
        let delta = zigzag_encode(r.block.0.wrapping_sub(prev_block) as i64);
        let needs_flags = r.pid != prev_pid || r.kind != prev_kind;
        // The tag bit pushes the payload to 65 bits, so the varint layer
        // works in u128.
        put_varint(&mut body, ((delta as u128) << 1) | needs_flags as u128);
        if needs_flags {
            let kind_bit = matches!(r.kind, AccessKind::Write) as u8;
            body.put_u8(kind_bit);
            put_varint(&mut body, r.pid as u128);
        }
        prev_block = r.block.0;
        prev_pid = r.pid;
        prev_kind = r.kind;
        if body.len() >= 1 << 20 {
            w.write_all(&body)?;
            body.clear();
        }
    }
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Deserialize a binary trace (strict: any malformed or truncated record
/// is an error).
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    read_binary_with(r, ReadOptions { strict: true }).map(|(t, _)| t)
}

/// Deserialize a binary trace leniently: a malformed varint or truncated
/// body yields the records decoded so far plus a count of those lost,
/// instead of an error. The varint delta encoding cannot resynchronize
/// after a corrupt record, so everything from the first bad record to the
/// declared end counts as skipped. Header errors (bad magic, version,
/// metadata) are still fatal — there is no trace to salvage.
pub fn read_binary_lossy<R: Read>(r: &mut R) -> Result<(Trace, u64), TraceIoError> {
    read_binary_with(r, ReadOptions { strict: false })
}

/// Deserialize a binary trace under explicit [`ReadOptions`]. The skipped
/// count is always `0` in strict mode.
pub fn read_binary_with<R: Read>(
    r: &mut R,
    opts: ReadOptions,
) -> Result<(Trace, u64), TraceIoError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];

    if buf.remaining() < 4 + 2 + 4 {
        return Err(TraceIoError::Truncated { expected: 0, got: 0 });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic { found: magic });
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceIoError::BadVersion { found: version });
    }
    let meta_len = buf.get_u32_le() as usize;
    if buf.remaining() < meta_len + 8 {
        return Err(TraceIoError::Truncated { expected: 0, got: 0 });
    }
    let meta_json = std::str::from_utf8(&buf[..meta_len])
        .map_err(|e| TraceIoError::BadMeta(e.to_string()))?
        .to_string();
    buf.advance(meta_len);
    let count = buf.get_u64_le();

    // Parse the meta via the text reader for a single source of truth.
    let meta_line = format!("#!meta {meta_json}\n");
    let meta = read_text(&mut std::io::BufReader::new(meta_line.as_bytes()))?.meta().clone();

    let mut trace = Trace::new(meta);
    trace.reserve(count as usize);
    let mut prev_block: u64 = 0;
    let mut prev_pid: u32 = 0;
    let mut prev_kind = AccessKind::Read;
    let mut decode_record = |buf: &mut &[u8], i: u64| -> Result<TraceRecord, TraceIoError> {
        let tagged =
            get_varint(buf).map_err(|_| TraceIoError::Truncated { expected: count, got: i })?;
        let has_flags = tagged & 1 == 1;
        let delta = zigzag_decode(u64::try_from(tagged >> 1).map_err(|_| TraceIoError::BadVarint)?);
        let block = prev_block.wrapping_add(delta as u64);
        if has_flags {
            if buf.remaining() < 1 {
                return Err(TraceIoError::Truncated { expected: count, got: i });
            }
            let kind_bit = buf.get_u8();
            prev_kind = if kind_bit & 1 == 1 { AccessKind::Write } else { AccessKind::Read };
            let pid =
                get_varint(buf).map_err(|_| TraceIoError::Truncated { expected: count, got: i })?;
            prev_pid = u32::try_from(pid).map_err(|_| TraceIoError::BadVarint)?;
        }
        prev_block = block;
        Ok(TraceRecord { block: block.into(), pid: prev_pid, kind: prev_kind })
    };
    for i in 0..count {
        match decode_record(&mut buf, i) {
            Ok(rec) => trace.push(rec),
            Err(e) if opts.strict => return Err(e),
            // The delta stream cannot resynchronize: everything from the
            // first bad record to the declared end is lost.
            Err(_) => return Ok((trace, count - i)),
        }
    }
    Ok((trace, 0))
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u128, TraceIoError> {
    let mut v: u128 = 0;
    // 70 bits of shift covers the 65-bit tagged payload with margin.
    for shift in (0..77).step_by(7) {
        if buf.remaining() == 0 {
            return Err(TraceIoError::BadVarint);
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u128) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceIoError::BadVarint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMeta;

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_binary(t, &mut buf).unwrap();
        read_binary(&mut &buf[..]).unwrap()
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u128, 1, 127, 128, 16383, 16384, u64::MAX as u128, (u64::MAX as u128) << 1 | 1] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            let mut s: &[u8] = &b;
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut s: &[u8] = &[0x80, 0x80];
        assert!(get_varint(&mut s).is_err());
    }

    #[test]
    fn round_trips_records_and_meta() {
        let mut t = Trace::new(TraceMeta {
            name: "cello".into(),
            description: "timesharing".into(),
            l1_cache_bytes: Some(30 << 20),
            seed: Some(1),
        });
        t.extend([
            TraceRecord::read(100u64),
            TraceRecord::read(101u64),
            TraceRecord::write(50u64).with_pid(4),
            TraceRecord::read(u64::MAX),
            TraceRecord::read(0u64).with_pid(4),
        ]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::empty();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn sequential_runs_compress_well() {
        let t = Trace::from_blocks(1_000_000u64..1_010_000);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // 10_000 sequential records should take ~1 byte each plus header.
        assert!(buf.len() < 11_000, "binary size {} too large", buf.len());
    }

    #[test]
    fn detects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&mut &buf[..]), Err(TraceIoError::BadMagic { .. })));
    }

    #[test]
    fn detects_bad_version() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[4] = 0xff;
        assert!(matches!(read_binary(&mut &buf[..]), Err(TraceIoError::BadVersion { .. })));
    }

    #[test]
    fn detects_truncated_body() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64, 100, 10000, 42]), &mut buf).unwrap();
        for cut in 1..8 {
            let shorter = &buf[..buf.len() - cut];
            let res = read_binary(&mut &shorter[..]);
            assert!(res.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn detects_truncated_header() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        let res = read_binary(&mut &buf[..5]);
        assert!(res.is_err());
    }

    #[test]
    fn lossy_read_salvages_a_truncated_body() {
        let t = Trace::from_blocks([1u64, 100, 10000, 42]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let shorter = &buf[..buf.len() - 2];
        let (back, skipped) = read_binary_lossy(&mut &shorter[..]).unwrap();
        assert!(skipped > 0);
        assert_eq!(back.len() as u64 + skipped, t.len() as u64);
        // Salvaged prefix matches the original records.
        assert_eq!(back.records(), &t.records()[..back.len()]);
    }

    #[test]
    fn lossy_read_still_rejects_header_corruption() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary_lossy(&mut &buf[..]).is_err());
    }

    #[test]
    fn lossy_read_on_clean_input_matches_strict() {
        let t = Trace::from_blocks([3u64, 1, 4, 1, 5, 9, 2, 6]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let (back, skipped) = read_binary_lossy(&mut &buf[..]).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back, t);
    }
}
