//! Compact binary trace format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    : 4 bytes  b"PFTR"
//! version  : u16      (currently 1)
//! meta_len : u32      length of the JSON-encoded TraceMeta
//! meta     : meta_len bytes (same JSON as the text format's #!meta line)
//! count    : u64      number of records
//! records  : count × record
//! ```
//!
//! Each record is a varint-encoded *zig-zag delta* from the previous block
//! id, followed by a flags byte only when pid/kind differ from the previous
//! record. The common case (same pid, read, small seek distance) costs 1-3
//! bytes. Encoding detail: the low bit of the varint payload marks whether a
//! flags byte follows, so `delta` is shifted left once more.

use crate::io::text::{read_text, write_text, ReadOptions};
use crate::io::TraceIoError;
use crate::record::{AccessKind, TraceRecord};
use crate::source::TraceSource;
use crate::{Trace, TraceMeta};
use bytes::{BufMut, BytesMut};
use std::io::{Read, Seek, SeekFrom, Write};

const MAGIC: [u8; 4] = *b"PFTR";
const VERSION: u16 = 1;

/// Serialize `trace` in the binary format.
pub fn write_binary<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    let mut header = BytesMut::with_capacity(64);
    header.put_slice(&MAGIC);
    header.put_u16_le(VERSION);

    // Reuse the text format's meta JSON by writing a one-trace text header.
    let meta_json = {
        let mut buf = Vec::new();
        let empty = Trace::from_records(trace.meta().clone(), Vec::new());
        write_text(&empty, &mut buf).expect("in-memory write cannot fail");
        let line = std::str::from_utf8(&buf).expect("meta is utf8");
        line.trim_start_matches("#!meta ").trim_end().to_string()
    };
    header.put_u32_le(meta_json.len() as u32);
    header.put_slice(meta_json.as_bytes());
    header.put_u64_le(trace.len() as u64);
    w.write_all(&header)?;

    let mut body = BytesMut::with_capacity(trace.len() * 3);
    let mut prev_block: u64 = 0;
    let mut prev_pid: u32 = 0;
    let mut prev_kind = AccessKind::Read;
    for r in trace.records() {
        let delta = zigzag_encode(r.block.0.wrapping_sub(prev_block) as i64);
        let needs_flags = r.pid != prev_pid || r.kind != prev_kind;
        // The tag bit pushes the payload to 65 bits, so the varint layer
        // works in u128.
        put_varint(&mut body, ((delta as u128) << 1) | needs_flags as u128);
        if needs_flags {
            let kind_bit = matches!(r.kind, AccessKind::Write) as u8;
            body.put_u8(kind_bit);
            put_varint(&mut body, r.pid as u128);
        }
        prev_block = r.block.0;
        prev_pid = r.pid;
        prev_kind = r.kind;
        if body.len() >= 1 << 20 {
            w.write_all(&body)?;
            body.clear();
        }
    }
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Deserialize a binary trace (strict: any malformed or truncated record
/// is an error).
pub fn read_binary<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    read_binary_with(r, ReadOptions { strict: true }).map(|(t, _)| t)
}

/// Deserialize a binary trace leniently: a malformed varint or truncated
/// body yields the records decoded so far plus a count of those lost,
/// instead of an error. The varint delta encoding cannot resynchronize
/// after a corrupt record, so everything from the first bad record to the
/// declared end counts as skipped. Header errors (bad magic, version,
/// metadata) are still fatal — there is no trace to salvage.
pub fn read_binary_lossy<R: Read>(r: &mut R) -> Result<(Trace, u64), TraceIoError> {
    read_binary_with(r, ReadOptions { strict: false })
}

/// Deserialize a binary trace under explicit [`ReadOptions`]. The skipped
/// count is always `0` in strict mode.
///
/// Reads incrementally: records are decoded straight off the reader, never
/// buffering the whole file. I/O errors are fatal even in lossy mode.
pub fn read_binary_with<R: Read>(
    r: &mut R,
    opts: ReadOptions,
) -> Result<(Trace, u64), TraceIoError> {
    let (meta, count) = read_header(r)?;
    let mut trace = Trace::new(meta);
    trace.reserve(count as usize);
    let mut dec = DeltaDecoder::new();
    for i in 0..count {
        match dec.decode(r, count, i) {
            Ok(rec) => trace.push(rec),
            Err(e @ TraceIoError::Io(_)) => return Err(e),
            Err(e) if opts.strict => return Err(e),
            // The delta stream cannot resynchronize: everything from the
            // first bad record to the declared end is lost.
            Err(_) => return Ok((trace, count - i)),
        }
    }
    Ok((trace, 0))
}

/// Parse the fixed header + metadata; returns the [`TraceMeta`] and the
/// declared record count, leaving the reader at the first record.
fn read_header<R: Read>(r: &mut R) -> Result<(TraceMeta, u64), TraceIoError> {
    let truncated = || TraceIoError::Truncated { expected: 0, got: 0 };
    let mut fixed = [0u8; 4 + 2 + 4];
    read_exact_or(r, &mut fixed, truncated)?;
    let magic: [u8; 4] = fixed[0..4].try_into().expect("slice length");
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(fixed[4..6].try_into().expect("slice length"));
    if version != VERSION {
        return Err(TraceIoError::BadVersion { found: version });
    }
    let meta_len = u32::from_le_bytes(fixed[6..10].try_into().expect("slice length")) as usize;
    let mut tail = vec![0u8; meta_len + 8];
    read_exact_or(r, &mut tail, truncated)?;
    let meta_json =
        std::str::from_utf8(&tail[..meta_len]).map_err(|e| TraceIoError::BadMeta(e.to_string()))?;
    let count = u64::from_le_bytes(tail[meta_len..].try_into().expect("slice length"));

    // Parse the meta via the text reader for a single source of truth.
    let meta_line = format!("#!meta {meta_json}\n");
    let meta = read_text(&mut std::io::BufReader::new(meta_line.as_bytes()))?.meta().clone();
    Ok((meta, count))
}

/// `read_exact` with end-of-input mapped through `on_eof`; other I/O
/// errors pass through unchanged.
fn read_exact_or<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    on_eof: impl Fn() -> TraceIoError,
) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            on_eof()
        } else {
            e.into()
        }
    })
}

/// Stateful decoder for the delta/flags record stream, shared by the
/// one-shot readers and the streaming [`BinarySource`].
struct DeltaDecoder {
    prev_block: u64,
    prev_pid: u32,
    prev_kind: AccessKind,
}

impl DeltaDecoder {
    fn new() -> Self {
        DeltaDecoder { prev_block: 0, prev_pid: 0, prev_kind: AccessKind::Read }
    }

    /// Decode record `i` of `count`. Truncation mid-record reports
    /// `Truncated { expected: count, got: i }`; I/O errors pass through.
    fn decode<R: Read>(
        &mut self,
        r: &mut R,
        count: u64,
        i: u64,
    ) -> Result<TraceRecord, TraceIoError> {
        let truncated = || TraceIoError::Truncated { expected: count, got: i };
        let tagged = match read_varint(r) {
            Ok(v) => v,
            Err(e @ TraceIoError::Io(_)) => return Err(e),
            Err(_) => return Err(truncated()),
        };
        let has_flags = tagged & 1 == 1;
        let delta = zigzag_decode(u64::try_from(tagged >> 1).map_err(|_| TraceIoError::BadVarint)?);
        let block = self.prev_block.wrapping_add(delta as u64);
        if has_flags {
            let mut kind_bit = [0u8; 1];
            read_exact_or(r, &mut kind_bit, truncated)?;
            self.prev_kind =
                if kind_bit[0] & 1 == 1 { AccessKind::Write } else { AccessKind::Read };
            let pid = match read_varint(r) {
                Ok(v) => v,
                Err(e @ TraceIoError::Io(_)) => return Err(e),
                Err(_) => return Err(truncated()),
            };
            self.prev_pid = u32::try_from(pid).map_err(|_| TraceIoError::BadVarint)?;
        }
        self.prev_block = block;
        Ok(TraceRecord { block: block.into(), pid: self.prev_pid, kind: self.prev_kind })
    }
}

/// An incremental [`TraceSource`] over a binary-format reader: records are
/// decoded one at a time, so memory stays independent of trace length.
///
/// The header (magic, version, metadata, count) is parsed at construction;
/// [`TraceSource::len_hint`] reports the declared count. In lossy mode the
/// source ends early at the first malformed record — the delta stream
/// cannot resynchronize — and [`BinarySource::skipped`] reports the records
/// lost. Rewinding seeks back to the first record.
pub struct BinarySource<R> {
    reader: R,
    opts: ReadOptions,
    meta: TraceMeta,
    count: u64,
    next_index: u64,
    data_start: u64,
    dec: DeltaDecoder,
    skipped: u64,
    fused: bool,
}

impl<R: Read + Seek> BinarySource<R> {
    /// A strict streaming reader over `reader` (positioned at the start of
    /// a binary-format trace). Header errors are reported here.
    pub fn new(reader: R) -> Result<Self, TraceIoError> {
        Self::with_options(reader, ReadOptions::default())
    }

    /// A streaming reader with explicit [`ReadOptions`].
    pub fn with_options(mut reader: R, opts: ReadOptions) -> Result<Self, TraceIoError> {
        let (meta, count) = read_header(&mut reader)?;
        let data_start = reader.stream_position()?;
        Ok(BinarySource {
            reader,
            opts,
            meta,
            count,
            next_index: 0,
            data_start,
            dec: DeltaDecoder::new(),
            skipped: 0,
            fused: false,
        })
    }

    /// Records lost to the first malformed record in lossy mode (always
    /// `0` in strict mode). Reset by [`TraceSource::rewind`].
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl<R: Read + Seek> TraceSource for BinarySource<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.count)
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.fused || self.next_index == self.count {
            return Ok(None);
        }
        match self.dec.decode(&mut self.reader, self.count, self.next_index) {
            Ok(rec) => {
                self.next_index += 1;
                Ok(Some(rec))
            }
            Err(e @ TraceIoError::Io(_)) => {
                self.fused = true;
                Err(e)
            }
            Err(e) if self.opts.strict => {
                self.fused = true;
                Err(e)
            }
            Err(_) => {
                // Lossy: the rest of the stream is undecodable; end early.
                self.skipped = self.count - self.next_index;
                self.next_index = self.count;
                Ok(None)
            }
        }
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.dec = DeltaDecoder::new();
        self.next_index = 0;
        self.skipped = 0;
        self.fused = false;
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read one varint off the stream. End of input mid-varint is
/// [`TraceIoError::BadVarint`]; other I/O errors pass through.
fn read_varint<R: Read>(r: &mut R) -> Result<u128, TraceIoError> {
    let mut v: u128 = 0;
    let mut byte = [0u8; 1];
    // 77 bits of shift covers the 65-bit tagged payload with margin.
    for shift in (0..77).step_by(7) {
        read_exact_or(r, &mut byte, || TraceIoError::BadVarint)?;
        v |= ((byte[0] & 0x7f) as u128) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceIoError::BadVarint)
}

#[cfg(test)]
fn get_varint(buf: &mut &[u8]) -> Result<u128, TraceIoError> {
    read_varint(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMeta;

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_binary(t, &mut buf).unwrap();
        read_binary(&mut &buf[..]).unwrap()
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u128, 1, 127, 128, 16383, 16384, u64::MAX as u128, (u64::MAX as u128) << 1 | 1] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            let mut s: &[u8] = &b;
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut s: &[u8] = &[0x80, 0x80];
        assert!(get_varint(&mut s).is_err());
    }

    #[test]
    fn round_trips_records_and_meta() {
        let mut t = Trace::new(TraceMeta {
            name: "cello".into(),
            description: "timesharing".into(),
            l1_cache_bytes: Some(30 << 20),
            seed: Some(1),
        });
        t.extend([
            TraceRecord::read(100u64),
            TraceRecord::read(101u64),
            TraceRecord::write(50u64).with_pid(4),
            TraceRecord::read(u64::MAX),
            TraceRecord::read(0u64).with_pid(4),
        ]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::empty();
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn sequential_runs_compress_well() {
        let t = Trace::from_blocks(1_000_000u64..1_010_000);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        // 10_000 sequential records should take ~1 byte each plus header.
        assert!(buf.len() < 11_000, "binary size {} too large", buf.len());
    }

    #[test]
    fn detects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&mut &buf[..]), Err(TraceIoError::BadMagic { .. })));
    }

    #[test]
    fn detects_bad_version() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[4] = 0xff;
        assert!(matches!(read_binary(&mut &buf[..]), Err(TraceIoError::BadVersion { .. })));
    }

    #[test]
    fn detects_truncated_body() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64, 100, 10000, 42]), &mut buf).unwrap();
        for cut in 1..8 {
            let shorter = &buf[..buf.len() - cut];
            let res = read_binary(&mut &shorter[..]);
            assert!(res.is_err(), "cut {cut} should fail");
        }
    }

    #[test]
    fn detects_truncated_header() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        let res = read_binary(&mut &buf[..5]);
        assert!(res.is_err());
    }

    #[test]
    fn lossy_read_salvages_a_truncated_body() {
        let t = Trace::from_blocks([1u64, 100, 10000, 42]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let shorter = &buf[..buf.len() - 2];
        let (back, skipped) = read_binary_lossy(&mut &shorter[..]).unwrap();
        assert!(skipped > 0);
        assert_eq!(back.len() as u64 + skipped, t.len() as u64);
        // Salvaged prefix matches the original records.
        assert_eq!(back.records(), &t.records()[..back.len()]);
    }

    #[test]
    fn lossy_read_still_rejects_header_corruption() {
        let mut buf = Vec::new();
        write_binary(&Trace::from_blocks([1u64]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary_lossy(&mut &buf[..]).is_err());
    }

    #[test]
    fn lossy_read_on_clean_input_matches_strict() {
        let t = Trace::from_blocks([3u64, 1, 4, 1, 5, 9, 2, 6]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let (back, skipped) = read_binary_lossy(&mut &buf[..]).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back, t);
    }

    #[test]
    fn binary_source_streams_and_rewinds() {
        let mut t = Trace::new(TraceMeta {
            name: "cello".into(),
            description: "timesharing".into(),
            l1_cache_bytes: Some(30 << 20),
            seed: Some(1),
        });
        t.extend([
            TraceRecord::read(100u64),
            TraceRecord::read(101u64),
            TraceRecord::write(50u64).with_pid(4),
            TraceRecord::read(0u64).with_pid(4),
        ]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();

        let mut src = BinarySource::new(std::io::Cursor::new(&buf[..])).unwrap();
        assert_eq!(src.meta().name, "cello");
        assert_eq!(src.len_hint(), Some(4));
        let back = src.materialize().unwrap();
        assert_eq!(back, t);

        src.rewind().unwrap();
        let again = src.materialize().unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn binary_source_strict_reports_truncation_and_fuses() {
        let t = Trace::from_blocks([1u64, 100, 10000, 42]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let shorter = &buf[..buf.len() - 2];
        let mut src = BinarySource::new(std::io::Cursor::new(shorter)).unwrap();
        let mut ok = 0u64;
        let err = loop {
            match src.next_record() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => panic!("expected a truncation error"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceIoError::Truncated { .. }), "got {err}");
        assert!(ok < 4);
        // Fused after the failure.
        assert_eq!(src.next_record().unwrap(), None);
        src.rewind().unwrap();
        assert_eq!(src.next_record().unwrap().unwrap().block.0, 1);
    }

    #[test]
    fn binary_source_lossy_matches_lossy_reader() {
        let t = Trace::from_blocks([1u64, 100, 10000, 42]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let shorter = &buf[..buf.len() - 2];
        let (expected, expected_skipped) = read_binary_lossy(&mut &shorter[..]).unwrap();

        let mut src = BinarySource::with_options(
            std::io::Cursor::new(shorter),
            ReadOptions { strict: false },
        )
        .unwrap();
        let got = src.materialize().unwrap();
        assert_eq!(got, expected);
        assert_eq!(src.skipped(), expected_skipped);
    }
}
