//! Text trace format.
//!
//! One record per line: `<block> [pid] [R|W]`. Missing fields default to
//! `pid = 0`, `R`. Lines starting with `#` are comments; a leading
//! `#!meta ` comment carries the JSON-encoded [`crate::TraceMeta`].

use crate::io::TraceIoError;
use crate::record::{AccessKind, TraceRecord};
use crate::source::TraceSource;
use crate::{Trace, TraceMeta};
use std::io::{BufRead, Seek, SeekFrom, Write};

const META_PREFIX: &str = "#!meta ";

/// Serialize `trace` as text.
pub fn write_text<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    let meta_json = meta_to_json(trace.meta());
    writeln!(w, "{META_PREFIX}{meta_json}")?;
    for r in trace.records() {
        let kind = match r.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        writeln!(w, "{} {} {}", r.block.0, r.pid, kind)?;
    }
    w.flush()?;
    Ok(())
}

/// How strictly a reader treats malformed input.
///
/// The strict mode (the default) fails on the first malformed record —
/// right for traces this crate wrote itself. The lenient mode skips
/// malformed records and reports how many were dropped — right for traces
/// converted from external dumps, where a handful of mangled lines should
/// not discard millions of good records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOptions {
    /// Fail on the first malformed record instead of skipping it.
    pub strict: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions { strict: true }
    }
}

/// Parse a text trace (strict: the first malformed line is an error).
pub fn read_text<R: BufRead>(r: &mut R) -> Result<Trace, TraceIoError> {
    read_text_with(r, ReadOptions { strict: true }).map(|(t, _)| t)
}

/// Parse a text trace leniently: malformed lines (and a malformed
/// `#!meta` header) are skipped rather than fatal. Returns the trace and
/// the number of lines skipped. I/O errors are still fatal.
pub fn read_text_lossy<R: BufRead>(r: &mut R) -> Result<(Trace, u64), TraceIoError> {
    read_text_with(r, ReadOptions { strict: false })
}

/// Parse a text trace under explicit [`ReadOptions`]. The skipped count is
/// always `0` in strict mode (a malformed line returns `Err` instead).
pub fn read_text_with<R: BufRead>(
    r: &mut R,
    opts: ReadOptions,
) -> Result<(Trace, u64), TraceIoError> {
    let mut trace = Trace::empty();
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut skipped = 0u64;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(meta_json) = trimmed.strip_prefix(META_PREFIX) {
            match meta_from_json(meta_json) {
                Ok(meta) => *trace.meta_mut() = meta,
                Err(e) if opts.strict => return Err(e),
                Err(_) => skipped += 1,
            }
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        match parse_line(trimmed, line_no) {
            Ok(rec) => trace.push(rec),
            Err(e) if opts.strict => return Err(e),
            Err(_) => skipped += 1,
        }
    }
    Ok((trace, skipped))
}

/// An incremental [`TraceSource`] over a text-format reader: records are
/// decoded one line at a time, so memory stays independent of trace length.
///
/// Construction consumes the leading header (comments and a `#!meta` line)
/// so [`TraceSource::meta`] is available before the first record; `#!meta`
/// lines appearing later in the file refine the metadata as they stream
/// past, exactly like [`read_text_with`]. Rewinding seeks back to the first
/// record and resets the per-pass [`TextSource::skipped`] counter.
pub struct TextSource<R> {
    reader: R,
    opts: ReadOptions,
    meta: TraceMeta,
    /// Byte offset of the first record line (after the leading header).
    data_start: u64,
    /// Lines consumed by the header scan, and the count skipped in it —
    /// the rewind baselines for `line_no` / `skipped`.
    header_lines: usize,
    header_skipped: u64,
    line_no: usize,
    skipped: u64,
    fused: bool,
    line: String,
}

impl<R: BufRead + Seek> TextSource<R> {
    /// A strict streaming reader over `reader` (positioned at the start of
    /// a text-format trace).
    pub fn new(reader: R) -> Result<Self, TraceIoError> {
        Self::with_options(reader, ReadOptions::default())
    }

    /// A streaming reader with explicit [`ReadOptions`].
    pub fn with_options(mut reader: R, opts: ReadOptions) -> Result<Self, TraceIoError> {
        let mut meta = TraceMeta::default();
        let mut pos = reader.stream_position()?;
        let mut line = String::new();
        let mut line_no = 0usize;
        let mut skipped = 0u64;
        loop {
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            let trimmed = line.trim();
            if let Some(meta_json) = trimmed.strip_prefix(META_PREFIX) {
                match meta_from_json(meta_json) {
                    Ok(m) => meta = m,
                    Err(e) if opts.strict => return Err(e),
                    Err(_) => skipped += 1,
                }
            } else if !trimmed.is_empty() && !trimmed.starts_with('#') {
                // First record line: leave it for streaming.
                reader.seek(SeekFrom::Start(pos))?;
                break;
            }
            line_no += 1;
            pos += n as u64;
        }
        Ok(TextSource {
            reader,
            opts,
            meta,
            data_start: pos,
            header_lines: line_no,
            header_skipped: skipped,
            line_no,
            skipped,
            fused: false,
            line,
        })
    }

    /// Malformed lines skipped so far in this pass (always `0` in strict
    /// mode). Reset by [`TraceSource::rewind`] to the header's count.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl<R: BufRead + Seek> TraceSource for TextSource<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Unknown: the text format carries no record count.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        if self.fused {
            return Ok(None);
        }
        loop {
            self.line.clear();
            let n = match self.reader.read_line(&mut self.line) {
                Ok(n) => n,
                Err(e) => {
                    self.fused = true;
                    return Err(e.into());
                }
            };
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(meta_json) = trimmed.strip_prefix(META_PREFIX) {
                match meta_from_json(meta_json) {
                    Ok(m) => self.meta = m,
                    Err(e) if self.opts.strict => {
                        self.fused = true;
                        return Err(e);
                    }
                    Err(_) => self.skipped += 1,
                }
                continue;
            }
            if trimmed.starts_with('#') {
                continue;
            }
            match parse_line(trimmed, self.line_no) {
                Ok(rec) => return Ok(Some(rec)),
                Err(e) if self.opts.strict => {
                    self.fused = true;
                    return Err(e);
                }
                Err(_) => self.skipped += 1,
            }
        }
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        self.reader.seek(SeekFrom::Start(self.data_start))?;
        self.line_no = self.header_lines;
        self.skipped = self.header_skipped;
        self.fused = false;
        Ok(())
    }

    fn skipped(&self) -> u64 {
        self.skipped
    }
}

fn parse_line(s: &str, line_no: usize) -> Result<TraceRecord, TraceIoError> {
    let bad = || TraceIoError::BadLine { line_no, line: s.to_string() };
    let mut parts = s.split_whitespace();
    let block: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let pid: u32 = match parts.next() {
        Some(p) => p.parse().map_err(|_| bad())?,
        None => 0,
    };
    let kind = match parts.next() {
        Some("R") | Some("r") | None => AccessKind::Read,
        Some("W") | Some("w") => AccessKind::Write,
        Some(_) => return Err(bad()),
    };
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(TraceRecord { block: block.into(), pid, kind })
}

// Minimal hand-rolled JSON for TraceMeta so the text format has no
// dependency on a JSON crate in this library's public path. The format is a
// flat object with string/number/null fields.
fn meta_to_json(m: &TraceMeta) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let l1 = m.l1_cache_bytes.map_or("null".to_string(), |v| v.to_string());
    let seed = m.seed.map_or("null".to_string(), |v| v.to_string());
    format!(
        "{{\"name\":\"{}\",\"description\":\"{}\",\"l1_cache_bytes\":{},\"seed\":{}}}",
        esc(&m.name),
        esc(&m.description),
        l1,
        seed
    )
}

fn meta_from_json(s: &str) -> Result<TraceMeta, TraceIoError> {
    let mut meta = TraceMeta::default();
    let body = s
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| TraceIoError::BadMeta(s.to_string()))?;
    // Split on commas that are not inside strings.
    let mut fields = Vec::new();
    let mut depth_in_string = false;
    let mut start = 0usize;
    let bytes = body.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_in_string = !depth_in_string,
            b',' if !depth_in_string => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < body.len() {
        fields.push(&body[start..]);
    }
    for field in fields {
        let (k, v) =
            field.split_once(':').ok_or_else(|| TraceIoError::BadMeta(field.to_string()))?;
        let key = k.trim().trim_matches('"');
        let val = v.trim();
        let unesc = |s: &str| s.replace("\\\"", "\"").replace("\\\\", "\\");
        // Strip exactly one quote from each end; trim_matches would eat
        // escaped quotes at the value's edges.
        fn unquote(s: &str) -> &str {
            s.strip_prefix('"').and_then(|t| t.strip_suffix('"')).unwrap_or(s)
        }
        match key {
            "name" => meta.name = unesc(unquote(val)),
            "description" => meta.description = unesc(unquote(val)),
            "l1_cache_bytes" => {
                meta.l1_cache_bytes = if val == "null" {
                    None
                } else {
                    Some(val.parse().map_err(|_| TraceIoError::BadMeta(val.to_string()))?)
                }
            }
            "seed" => {
                meta.seed = if val == "null" {
                    None
                } else {
                    Some(val.parse().map_err(|_| TraceIoError::BadMeta(val.to_string()))?)
                }
            }
            _ => {} // forward compatible: ignore unknown keys
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_text(t, &mut buf).unwrap();
        read_text(&mut BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn round_trips_records_and_meta() {
        let mut t = Trace::from_blocks([10u64, 11, 12, 5]);
        t.meta_mut().name = "snake".into();
        t.meta_mut().description = "file \"server\"".into();
        t.meta_mut().l1_cache_bytes = Some(5 * 1024 * 1024);
        t.meta_mut().seed = Some(99);
        let back = round_trip(&t);
        assert_eq!(&t, &back);
    }

    #[test]
    fn parses_minimal_lines() {
        let src = "#!meta {\"name\":\"\",\"description\":\"\",\"l1_cache_bytes\":null,\"seed\":null}\n# comment\n\n42\n43 7\n44 7 W\n";
        let t = read_text(&mut BufReader::new(src.as_bytes())).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[0], TraceRecord::read(42u64));
        assert_eq!(t.records()[1], TraceRecord::read(43u64).with_pid(7));
        assert_eq!(t.records()[2].kind, AccessKind::Write);
    }

    #[test]
    fn works_without_meta_line() {
        let t = read_text(&mut BufReader::new("1\n2\n".as_bytes())).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.meta().name, "");
    }

    #[test]
    fn rejects_garbage_lines() {
        for bad in ["abc", "1 2 X", "1 2 R extra", "-5"] {
            let res = read_text(&mut BufReader::new(bad.as_bytes()));
            assert!(res.is_err(), "line {bad:?} should be rejected");
        }
    }

    #[test]
    fn rejects_malformed_meta() {
        let res = read_text(&mut BufReader::new("#!meta not-json\n1\n".as_bytes()));
        assert!(res.is_err());
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = read_text(&mut BufReader::new("".as_bytes())).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn lossy_read_skips_bad_lines_and_counts_them() {
        let src = "1\nabc\n2\n1 2 X\n3\n-5\n";
        let (t, skipped) = read_text_lossy(&mut BufReader::new(src.as_bytes())).unwrap();
        assert_eq!(skipped, 3);
        let blocks: Vec<u64> = t.records().iter().map(|r| r.block.0).collect();
        assert_eq!(blocks, [1, 2, 3]);
        // The same input fails in strict mode.
        assert!(read_text(&mut BufReader::new(src.as_bytes())).is_err());
    }

    #[test]
    fn lossy_read_survives_bad_meta() {
        let src = "#!meta not-json\n1\n2\n";
        let (t, skipped) = read_text_lossy(&mut BufReader::new(src.as_bytes())).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.meta().name, "");
    }

    #[test]
    fn lossy_read_on_clean_input_matches_strict() {
        let mut t = Trace::from_blocks([10u64, 11, 12, 5]);
        t.meta_mut().name = "snake".into();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let strict = read_text(&mut BufReader::new(&buf[..])).unwrap();
        let (lossy, skipped) = read_text_lossy(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(strict, lossy);
    }

    #[test]
    fn default_read_options_are_strict() {
        assert!(ReadOptions::default().strict);
    }

    #[test]
    fn text_source_streams_meta_then_records() {
        let mut t = Trace::from_blocks([10u64, 11, 12, 5]);
        t.meta_mut().name = "snake".into();
        t.meta_mut().seed = Some(7);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();

        let mut src = TextSource::new(std::io::Cursor::new(&buf[..])).unwrap();
        // Meta is available before the first record is pulled.
        assert_eq!(src.meta().name, "snake");
        assert_eq!(src.len_hint(), None);
        let back = src.materialize().unwrap();
        assert_eq!(back, t);

        // Rewinding replays the records bit-identically.
        src.rewind().unwrap();
        let again = src.materialize().unwrap();
        assert_eq!(again, t);
    }

    #[test]
    fn text_source_strict_fuses_after_bad_line() {
        let src_text = "1\n2\nabc\n3\n";
        let mut src = TextSource::new(std::io::Cursor::new(src_text.as_bytes())).unwrap();
        assert_eq!(src.next_record().unwrap().unwrap().block.0, 1);
        assert_eq!(src.next_record().unwrap().unwrap().block.0, 2);
        assert!(src.next_record().is_err());
        // Fused: no records after the failure until rewound.
        assert_eq!(src.next_record().unwrap(), None);
        src.rewind().unwrap();
        assert_eq!(src.next_record().unwrap().unwrap().block.0, 1);
    }

    #[test]
    fn text_source_lossy_matches_lossy_reader() {
        let src_text = "# hdr\n1\nabc\n2\n1 2 X\n3\n-5\n";
        let (expected, expected_skipped) =
            read_text_lossy(&mut BufReader::new(src_text.as_bytes())).unwrap();
        let mut src = TextSource::with_options(
            std::io::Cursor::new(src_text.as_bytes()),
            ReadOptions { strict: false },
        )
        .unwrap();
        let got = src.materialize().unwrap();
        assert_eq!(got, expected);
        assert_eq!(src.skipped(), expected_skipped);
        // The skip counter is per-pass.
        src.rewind().unwrap();
        src.materialize().unwrap();
        assert_eq!(src.skipped(), expected_skipped);
    }
}
