//! On-disk trace formats.
//!
//! Two formats are provided:
//!
//! * [`text`] — one whitespace-separated record per line
//!   (`<block> [pid] [R|W]`), comment lines starting with `#`. Easy to
//!   inspect and to hand-write in tests, and compatible with typical
//!   published block-trace dumps.
//! * [`binary`] — a compact little-endian format with a magic header and a
//!   record count, using varint block deltas; roughly 2-4 bytes per record
//!   for realistic traces. Truncation and corruption are detected and
//!   reported as errors, never panics.
//!
//! Both formats offer a lenient reading mode ([`read_text_lossy`],
//! [`read_binary_lossy`], [`ReadOptions`]) that skips malformed records
//! and reports how many were dropped, for traces converted from external
//! dumps; the strict default fails on the first malformed record.

pub mod binary;
pub mod error;
pub mod text;

pub use binary::{read_binary, read_binary_lossy, read_binary_with, write_binary, BinarySource};
pub use error::TraceIoError;
pub use text::{read_text, read_text_lossy, read_text_with, write_text, ReadOptions, TextSource};

use crate::source::TraceSource;
use crate::{Trace, TraceMeta, TraceRecord};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// A streaming [`TraceSource`] over an on-disk trace file, format picked
/// from the extension like [`load`] (`.trc` → binary, anything else →
/// text). Obtained from [`open_source`]; memory use is independent of the
/// trace length.
pub enum FileSource {
    /// Text-format file (see [`text`]).
    Text(TextSource<BufReader<File>>),
    /// Binary-format file (see [`binary`]).
    Binary(BinarySource<BufReader<File>>),
}

impl FileSource {
    /// Malformed records skipped/lost so far in lossy mode (always `0` in
    /// strict mode); see [`TextSource::skipped`] / [`BinarySource::skipped`].
    pub fn skipped(&self) -> u64 {
        match self {
            FileSource::Text(s) => s.skipped(),
            FileSource::Binary(s) => s.skipped(),
        }
    }
}

impl TraceSource for FileSource {
    fn meta(&self) -> &TraceMeta {
        match self {
            FileSource::Text(s) => s.meta(),
            FileSource::Binary(s) => s.meta(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            FileSource::Text(s) => s.len_hint(),
            FileSource::Binary(s) => s.len_hint(),
        }
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceIoError> {
        match self {
            FileSource::Text(s) => s.next_record(),
            FileSource::Binary(s) => s.next_record(),
        }
    }

    fn rewind(&mut self) -> Result<(), TraceIoError> {
        match self {
            FileSource::Text(s) => s.rewind(),
            FileSource::Binary(s) => s.rewind(),
        }
    }

    fn skipped(&self) -> u64 {
        FileSource::skipped(self)
    }
}

/// Open a trace file as a streaming [`FileSource`], picking the format
/// from the file extension (`.trc` → binary, anything else → text).
pub fn open_source(path: &Path, opts: ReadOptions) -> Result<FileSource, TraceIoError> {
    let reader = BufReader::new(File::open(path)?);
    if path.extension().is_some_and(|e| e == "trc") {
        Ok(FileSource::Binary(BinarySource::with_options(reader, opts)?))
    } else {
        Ok(FileSource::Text(TextSource::with_options(reader, opts)?))
    }
}

/// Load a trace, picking the format from the file extension
/// (`.trc` → binary, anything else → text).
pub fn load(path: &Path) -> Result<Trace, TraceIoError> {
    open_source(path, ReadOptions { strict: true })?.materialize()
}

/// Load a trace leniently, picking the format from the file extension:
/// malformed records are skipped and counted instead of fatal (see
/// [`read_text_lossy`] / [`read_binary_lossy`]).
pub fn load_lossy(path: &Path) -> Result<(Trace, u64), TraceIoError> {
    let mut source = open_source(path, ReadOptions { strict: false })?;
    let trace = source.materialize()?;
    Ok((trace, source.skipped()))
}

/// Save a trace, picking the format from the file extension
/// (`.trc` → binary, anything else → text).
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    if path.extension().is_some_and(|e| e == "trc") {
        write_binary(trace, &mut writer)
    } else {
        write_text(trace, &mut writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn round_trip_by_extension() {
        let dir = std::env::temp_dir().join("prefetch-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = Trace::from_blocks([3u64, 1, 4, 1, 5, 9, 2, 6]);

        let bin = dir.join("t.trc");
        save(&trace, &bin).unwrap();
        let back = load(&bin).unwrap();
        assert_eq!(back.records(), trace.records());

        let txt = dir.join("t.txt");
        save(&trace, &txt).unwrap();
        let back = load(&txt).unwrap();
        assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn load_missing_file_is_an_error() {
        let err = load(Path::new("/nonexistent/definitely/missing.trc"));
        assert!(err.is_err());
    }

    #[test]
    fn open_source_streams_both_formats() {
        let dir = std::env::temp_dir().join("prefetch-trace-io-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut trace = Trace::from_blocks([3u64, 1, 4, 1, 5, 9, 2, 6]);
        trace.meta_mut().name = "pi".into();

        for name in ["t.trc", "t.txt"] {
            let path = dir.join(name);
            save(&trace, &path).unwrap();
            let mut src = open_source(&path, ReadOptions::default()).unwrap();
            let back = src.materialize().unwrap();
            assert_eq!(back, trace, "{name}");
            assert_eq!(src.skipped(), 0);
            // Rewind works through the enum too.
            src.rewind().unwrap();
            assert_eq!(src.next_record().unwrap().unwrap().block.0, 3);
        }
    }
}
