//! On-disk trace formats.
//!
//! Two formats are provided:
//!
//! * [`text`] — one whitespace-separated record per line
//!   (`<block> [pid] [R|W]`), comment lines starting with `#`. Easy to
//!   inspect and to hand-write in tests, and compatible with typical
//!   published block-trace dumps.
//! * [`binary`] — a compact little-endian format with a magic header and a
//!   record count, using varint block deltas; roughly 2-4 bytes per record
//!   for realistic traces. Truncation and corruption are detected and
//!   reported as errors, never panics.
//!
//! Both formats offer a lenient reading mode ([`read_text_lossy`],
//! [`read_binary_lossy`], [`ReadOptions`]) that skips malformed records
//! and reports how many were dropped, for traces converted from external
//! dumps; the strict default fails on the first malformed record.

pub mod binary;
pub mod error;
pub mod text;

pub use binary::{read_binary, read_binary_lossy, read_binary_with, write_binary};
pub use error::TraceIoError;
pub use text::{read_text, read_text_lossy, read_text_with, write_text, ReadOptions};

use crate::Trace;
use std::path::Path;

/// Load a trace, picking the format from the file extension
/// (`.trc` → binary, anything else → text).
pub fn load(path: &Path) -> Result<Trace, TraceIoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    if path.extension().is_some_and(|e| e == "trc") {
        read_binary(&mut reader)
    } else {
        read_text(&mut reader)
    }
}

/// Load a trace leniently, picking the format from the file extension:
/// malformed records are skipped and counted instead of fatal (see
/// [`read_text_lossy`] / [`read_binary_lossy`]).
pub fn load_lossy(path: &Path) -> Result<(Trace, u64), TraceIoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    if path.extension().is_some_and(|e| e == "trc") {
        read_binary_lossy(&mut reader)
    } else {
        read_text_lossy(&mut reader)
    }
}

/// Save a trace, picking the format from the file extension
/// (`.trc` → binary, anything else → text).
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    if path.extension().is_some_and(|e| e == "trc") {
        write_binary(trace, &mut writer)
    } else {
        write_text(trace, &mut writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn round_trip_by_extension() {
        let dir = std::env::temp_dir().join("prefetch-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = Trace::from_blocks([3u64, 1, 4, 1, 5, 9, 2, 6]);

        let bin = dir.join("t.trc");
        save(&trace, &bin).unwrap();
        let back = load(&bin).unwrap();
        assert_eq!(back.records(), trace.records());

        let txt = dir.join("t.txt");
        save(&trace, &txt).unwrap();
        let back = load(&txt).unwrap();
        assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn load_missing_file_is_an_error() {
        let err = load(Path::new("/nonexistent/definitely/missing.trc"));
        assert!(err.is_err());
    }
}
