//! Error type for trace I/O.

use std::fmt;

/// Errors produced when reading or writing traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The binary header magic did not match.
    BadMagic { found: [u8; 4] },
    /// Unsupported binary format version.
    BadVersion { found: u16 },
    /// The file ended before the declared number of records was read.
    Truncated { expected: u64, got: u64 },
    /// A varint was malformed (too long or truncated).
    BadVarint,
    /// A text line could not be parsed.
    BadLine { line_no: usize, line: String },
    /// The metadata JSON header was malformed.
    BadMeta(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic { found } => {
                write!(f, "bad trace magic {found:?}, expected b\"PFTR\"")
            }
            TraceIoError::BadVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceIoError::Truncated { expected, got } => {
                write!(f, "truncated trace: header declared {expected} records, found {got}")
            }
            TraceIoError::BadVarint => write!(f, "malformed varint in trace stream"),
            TraceIoError::BadLine { line_no, line } => {
                write!(f, "unparsable trace line {line_no}: {line:?}")
            }
            TraceIoError::BadMeta(m) => write!(f, "malformed trace metadata: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceIoError::Truncated { expected: 10, got: 3 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("3"));

        let e = TraceIoError::BadLine { line_no: 7, line: "xyz".into() };
        assert!(e.to_string().contains("7"));

        let e = TraceIoError::BadMagic { found: *b"ABCD" };
        assert!(e.to_string().contains("PFTR"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = TraceIoError::from(inner);
        assert!(e.source().is_some());
        assert!(matches!(e, TraceIoError::Io(_)));
    }
}
