//! Repeated-sequence (loop) replay.
//!
//! Many workloads — CAD traversals, compile cycles, daily usage patterns —
//! re-execute long reference sequences nearly verbatim. [`LoopReplay`] keeps
//! a library of sequences and replays one at a time (chosen by Zipf
//! popularity) with a configurable per-reference mutation rate that
//! substitutes a random block, modelling small run-to-run variation.

use crate::synth::{Workload, ZipfSampler};
use crate::{BlockId, TraceRecord};
use rand::rngs::SmallRng;
use rand::Rng;

/// Replays sequences from a library with occasional mutation.
#[derive(Clone, Debug)]
pub struct LoopReplay {
    library: Vec<Vec<u64>>,
    chooser: ZipfSampler,
    /// probability that a replayed reference is replaced by a random block
    mutation_rate: f64,
    /// region random mutations are drawn from
    noise_start: u64,
    noise_blocks: u64,
    /// probability of replaying the same sequence again on completion
    /// (session persistence: a user iterating on the same task)
    persistence: f64,
    current: usize,
    pos: usize,
}

impl LoopReplay {
    /// Build from a sequence library.
    ///
    /// * `theta` — Zipf exponent for choosing which sequence to replay;
    /// * `mutation_rate` — probability in `[0,1)` that a reference is
    ///   replaced by a uniform random block from
    ///   `noise_start..noise_start+noise_blocks`.
    ///
    /// # Panics
    /// Panics if the library is empty, any sequence is empty, or
    /// `mutation_rate` is outside `[0,1)`.
    pub fn new(
        library: Vec<Vec<u64>>,
        theta: f64,
        mutation_rate: f64,
        noise_start: u64,
        noise_blocks: u64,
    ) -> Self {
        assert!(!library.is_empty(), "library must be non-empty");
        assert!(library.iter().all(|s| !s.is_empty()), "sequences must be non-empty");
        assert!((0.0..1.0).contains(&mutation_rate), "mutation_rate must be in [0,1)");
        assert!(noise_blocks > 0, "noise region must be non-empty");
        let chooser = ZipfSampler::new(library.len(), theta);
        LoopReplay {
            library,
            chooser,
            mutation_rate,
            noise_start,
            noise_blocks,
            persistence: 0.0,
            current: 0,
            pos: usize::MAX, // force a pick on the first record
        }
    }

    /// Set the probability in `[0,1)` of immediately replaying the same
    /// sequence when it completes (models a user iterating on one task —
    /// the behaviour behind the paper's high last-visited-child rates,
    /// Table 3).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0,1)`.
    pub fn with_persistence(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "persistence must be in [0,1)");
        self.persistence = p;
        self
    }

    /// Generate a random sequence library: `count` sequences of length in
    /// `len_min..=len_max` over blocks scattered in
    /// `region_start..region_start+region_blocks`.
    pub fn random_library(
        rng: &mut SmallRng,
        count: usize,
        len_min: usize,
        len_max: usize,
        region_start: u64,
        region_blocks: u64,
    ) -> Vec<Vec<u64>> {
        assert!(count > 0 && len_min > 0 && len_min <= len_max);
        (0..count)
            .map(|_| {
                let len = rng.gen_range(len_min..=len_max);
                (0..len).map(|_| region_start + rng.gen_range(0..region_blocks)).collect()
            })
            .collect()
    }
}

impl Workload for LoopReplay {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        if self.pos == usize::MAX {
            self.current = self.chooser.sample(rng);
            self.pos = 0;
        } else if self.pos >= self.library[self.current].len() {
            if rng.gen::<f64>() >= self.persistence {
                self.current = self.chooser.sample(rng);
            }
            self.pos = 0;
        }
        let block = if rng.gen::<f64>() < self.mutation_rate {
            self.noise_start + rng.gen_range(0..self.noise_blocks)
        } else {
            self.library[self.current][self.pos]
        };
        self.pos += 1;
        TraceRecord::read(BlockId(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;
    use crate::TraceMeta;
    use rand::SeedableRng;

    #[test]
    fn replays_sequences_verbatim_without_mutation() {
        let lib = vec![vec![10u64, 20, 30], vec![7, 8]];
        let w = LoopReplay::new(lib.clone(), 1.0, 0.0, 0, 1);
        let t = generate(w, 300, 1, TraceMeta::default());
        // Every emitted block belongs to the library.
        let all: std::collections::HashSet<u64> = lib.iter().flatten().copied().collect();
        assert!(t.blocks().all(|b| all.contains(&b.0)));
        // Sequences appear contiguously: after a 10 always a 20, then 30.
        let blocks: Vec<u64> = t.blocks().map(|b| b.0).collect();
        for w in blocks.windows(2) {
            if w[0] == 10 {
                assert_eq!(w[1], 20);
            }
            if w[0] == 20 {
                assert_eq!(w[1], 30);
            }
            if w[0] == 7 {
                assert_eq!(w[1], 8);
            }
        }
    }

    #[test]
    fn mutation_rate_injects_noise() {
        let lib = vec![vec![1u64; 100]]; // degenerate: always block 1
        let w = LoopReplay::new(lib, 1.0, 0.2, 1_000_000, 1000);
        let t = generate(w, 10_000, 2, TraceMeta::default());
        let noisy = t.blocks().filter(|b| b.0 >= 1_000_000).count();
        let rate = noisy as f64 / 10_000.0;
        assert!((0.15..0.25).contains(&rate), "noise rate {rate}");
    }

    #[test]
    fn popular_sequences_replay_more() {
        let lib = vec![vec![100u64, 101], vec![200, 201]];
        let w = LoopReplay::new(lib, 1.5, 0.0, 0, 1);
        let t = generate(w, 10_000, 3, TraceMeta::default());
        let first = t.blocks().filter(|b| b.0 == 100).count();
        let second = t.blocks().filter(|b| b.0 == 200).count();
        assert!(first > second, "zipf ranking not applied: {first} vs {second}");
    }

    #[test]
    fn random_library_has_requested_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let lib = LoopReplay::random_library(&mut rng, 10, 5, 9, 1000, 500);
        assert_eq!(lib.len(), 10);
        for s in &lib {
            assert!((5..=9).contains(&s.len()));
            assert!(s.iter().all(|&b| (1000..1500).contains(&b)));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_library_panics() {
        LoopReplay::new(Vec::new(), 1.0, 0.0, 0, 1);
    }
}
