//! Synthetic **CAD**: object references from a CAD tool (Curewitz et al.).
//!
//! Construction: a library of design-traversal sequences (think: netlist or
//! layout hierarchy walks) whose object ids are *scattered* across the id
//! space, replayed with Zipf popularity and a small mutation rate. No
//! first-level cache — the original trace records object references
//! directly.
//!
//! Defining properties this reproduces (paper Sections 9.1, 9.2.2, 9.4,
//! 9.6):
//! * essentially **zero block-sequential adjacency** → `next-limit` is
//!   useless (performs like `no-prefetch`), Figure 6 CAD panel;
//! * strongly repeated traversals → high prediction accuracy (paper:
//!   59.9%), high prefetch-cache hit rate (~75%, Figure 9), high
//!   last-visited-child rate (68.6%, Table 3);
//! * `tree` alone reduces the miss rate by up to ~36%.

use crate::synth::{LoopReplay, SynthSource, Workload};
use crate::{Trace, TraceMeta};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for the synthetic CAD trace.
#[derive(Clone, Debug)]
pub struct CadConfig {
    /// Number of references to emit.
    pub refs: usize,
    /// Number of distinct traversal sequences in the design.
    pub traversals: usize,
    /// Min/max traversal length (objects touched per walk).
    pub traversal_len: (usize, usize),
    /// Object id space the traversals are scattered over.
    pub object_space: u64,
    /// Per-reference probability of touching a random other object
    /// (run-to-run variation between traversals).
    pub mutation_rate: f64,
    /// Zipf exponent over traversal popularity.
    pub popularity_skew: f64,
}

impl Default for CadConfig {
    fn default() -> Self {
        CadConfig {
            refs: 150_000, // paper's CAD trace is the shortest (147,345 refs)
            traversals: 220,
            traversal_len: (40, 220),
            object_space: 120_000,
            mutation_rate: 0.045,
            popularity_skew: 0.55,
        }
    }
}

/// Generate the synthetic CAD trace (materialized; see [`stream_cad`] for
/// the constant-memory streaming path — both are bit-identical).
pub fn generate_cad(cfg: &CadConfig, seed: u64) -> Trace {
    stream_cad(cfg, seed).into_trace()
}

/// Stream the synthetic CAD trace without materializing it.
pub fn stream_cad(cfg: &CadConfig, seed: u64) -> SynthSource {
    let meta = TraceMeta {
        name: "cad".into(),
        description: "Synthetic: object references from a CAD tool".into(),
        l1_cache_bytes: None,
        seed: None,
    };
    let cfg = cfg.clone();
    SynthSource::new(cfg.refs, seed, meta, Box::new(move || build_workload(&cfg, seed)))
}

/// Build the CAD workload; deterministic in `(cfg, seed)` so the streaming
/// source can rebuild it on rewind.
fn build_workload(cfg: &CadConfig, seed: u64) -> Box<dyn Workload + Send> {
    let mut setup_rng = SmallRng::seed_from_u64(seed ^ 0xCAD);
    let library = LoopReplay::random_library(
        &mut setup_rng,
        cfg.traversals,
        cfg.traversal_len.0,
        cfg.traversal_len.1,
        0,
        cfg.object_space,
    );
    // CAD users iterate: the same traversal is often re-run back to back,
    // which is what drives the paper's high last-visited-child rate.
    Box::new(
        LoopReplay::new(library, cfg.popularity_skew, cfg.mutation_rate, 0, cfg.object_space)
            .with_persistence(0.45),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn cad_has_no_sequentiality() {
        let t = generate_cad(&CadConfig { refs: 40_000, ..Default::default() }, 1);
        let s = TraceStats::compute(&t);
        assert!(
            s.sequential_fraction < 0.05,
            "CAD must not be sequential, got {}",
            s.sequential_fraction
        );
    }

    #[test]
    fn cad_traversals_repeat() {
        let t = generate_cad(&CadConfig { refs: 40_000, ..Default::default() }, 2);
        // Strong bigram repetition: the same object pairs recur across
        // traversal replays.
        let blocks: Vec<u64> = t.blocks().map(|b| b.0).collect();
        let mut seen = std::collections::HashSet::new();
        let mut repeated = 0usize;
        for w in blocks.windows(2) {
            if !seen.insert((w[0], w[1])) {
                repeated += 1;
            }
        }
        let rate = repeated as f64 / (blocks.len() - 1) as f64;
        assert!(rate > 0.5, "bigram repetition too low for CAD: {rate:.3}");
    }

    #[test]
    fn cad_working_set_is_bounded() {
        let t = generate_cad(&CadConfig { refs: 40_000, ..Default::default() }, 3);
        let s = TraceStats::compute(&t);
        // A fixed design: the object population is bounded by the library
        // plus mutation noise, far below the reference count.
        assert!(
            (s.unique_blocks as f64) < 0.6 * s.refs as f64,
            "{} unique of {}",
            s.unique_blocks,
            s.refs
        );
    }
}
