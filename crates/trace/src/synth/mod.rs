//! Synthetic workload generators.
//!
//! The paper drives its simulator with four traces (Table 1): cello and
//! snake (disk-block traces captured *below* a first-level file buffer
//! cache), CAD (object references from a CAD tool) and sitar (file block
//! traces of daily student usage). Those traces are not redistributable, so
//! this module synthesizes workloads that reproduce each trace's *defining
//! statistical character* — the properties the paper's results hinge on:
//!
//! | trace | defining properties we reproduce |
//! |-------|----------------------------------|
//! | cello | filtered through a 30 MB L1 → little residual locality; low predictability; some surviving sequentiality |
//! | snake | filtered through a 5 MB L1 → moderate repeated structure (~60% predictable) plus sequential runs |
//! | CAD   | no block-sequential adjacency at all; strongly repeated traversal sequences (~60% predictable, high prefetch-hit rate) |
//! | sitar | whole-file sequential reads; very high sequentiality; repeats mostly cache-resident |
//!
//! The building blocks are [`Workload`] implementations — sequential runs,
//! Zipf-random references, Markov pattern replay, repeated loop replay —
//! composed with [`Interleave`] (multi-process mixing) and [`L1Filter`]
//! (emit only the misses of a first-level LRU cache, matching how the
//! original cello/snake traces were captured).
//!
//! Everything is deterministic given the seed.

mod cad;
mod cello;
mod interleave;
mod l1filter;
mod loops;
mod markov;
mod primitives;
mod sitar;
mod snake;
mod zipf;

pub use cad::{generate_cad, stream_cad, CadConfig};
pub use cello::{generate_cello, stream_cello, CelloConfig};
pub use interleave::Interleave;
pub use l1filter::{L1Filter, LruSet};
pub use loops::LoopReplay;
pub use markov::MarkovPatterns;
pub use primitives::{SequentialRuns, UniformRandom, ZipfRandom};
pub use sitar::{generate_sitar, stream_sitar, SitarConfig};
pub use snake::{generate_snake, stream_snake, SnakeConfig};
pub use zipf::ZipfSampler;

use crate::{Trace, TraceMeta, TraceRecord};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Block size assumed when converting the paper's L1 cache sizes (in bytes)
/// to block counts. The paper does not state the block size; 4 KiB is the
/// classic UNIX file-system block and keeps the cello (30 MB) and snake
/// (5 MB) L1 caches at 7680 and 1280 blocks respectively.
pub const BLOCK_BYTES: u64 = 4096;

/// A source of trace records. Implementations hold their own workload state
/// (current file offset, Markov state, ...) and draw randomness from the
/// caller-provided RNG so composition stays deterministic.
pub trait Workload {
    /// Produce the next reference.
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        (**self).next_record(rng)
    }
}

/// Drive `workload` for `refs` references into a [`Trace`] with the given
/// metadata and seed.
///
/// This materializes the whole trace; for constant-memory streaming use a
/// [`SynthSource`] (the named generators expose one via `stream_*` /
/// [`TraceKind::stream`]). Both paths draw records identically: a
/// `SmallRng` seeded with `seed` drives the workload one record at a time.
pub fn generate(mut workload: impl Workload, refs: usize, seed: u64, meta: TraceMeta) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Trace::new(TraceMeta { seed: Some(seed), ..meta });
    trace.reserve(refs);
    for _ in 0..refs {
        let r = workload.next_record(&mut rng);
        trace.push(r);
    }
    trace
}

/// Builds a fresh, deterministic [`Workload`] instance; [`SynthSource`]
/// invokes it on construction and on every rewind, so one factory call
/// must always produce the same workload state.
pub type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload + Send> + Send + Sync>;

/// A streaming [`crate::source::TraceSource`] over a synthetic workload:
/// records are drawn on the fly (memory independent of `refs`), and
/// rewinding rebuilds the workload from its factory and reseeds the RNG,
/// reproducing the stream bit for bit.
///
/// The stream is identical to what [`generate`] materializes from the same
/// workload, seed, and reference count.
pub struct SynthSource {
    factory: WorkloadFactory,
    workload: Box<dyn Workload + Send>,
    rng: SmallRng,
    seed: u64,
    refs: u64,
    emitted: u64,
    meta: TraceMeta,
}

impl SynthSource {
    /// A source yielding `refs` records from the workload the factory
    /// builds, seeded with `seed` (stamped into the metadata, as
    /// [`generate`] does).
    pub fn new(refs: usize, seed: u64, meta: TraceMeta, factory: WorkloadFactory) -> Self {
        let workload = factory();
        SynthSource {
            factory,
            workload,
            rng: SmallRng::seed_from_u64(seed),
            seed,
            refs: refs as u64,
            emitted: 0,
            meta: TraceMeta { seed: Some(seed), ..meta },
        }
    }

    /// Materialize the remaining records into a [`Trace`] (infallible,
    /// unlike the generic [`crate::source::TraceSource::materialize`]).
    pub fn into_trace(mut self) -> Trace {
        use crate::source::TraceSource as _;
        self.materialize().expect("synthetic sources cannot fail")
    }
}

impl crate::source::TraceSource for SynthSource {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.refs)
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, crate::io::TraceIoError> {
        if self.emitted == self.refs {
            return Ok(None);
        }
        self.emitted += 1;
        Ok(Some(self.workload.next_record(&mut self.rng)))
    }

    fn rewind(&mut self) -> Result<(), crate::io::TraceIoError> {
        self.workload = (self.factory)();
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.emitted = 0;
        Ok(())
    }
}

/// Which of the paper's four traces to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TraceKind {
    /// Timesharing-system disk blocks, post-30MB-L1 (Ruemmler & Wilkes).
    Cello,
    /// File-server disk blocks, post-5MB-L1 (Ruemmler & Wilkes).
    Snake,
    /// Object references from a CAD tool (Curewitz et al.).
    Cad,
    /// File blocks from normal daily student usage (Griffioen & Appleton).
    Sitar,
}

impl TraceKind {
    /// All four kinds in the paper's Table 1 order.
    pub const ALL: [TraceKind; 4] =
        [TraceKind::Cello, TraceKind::Snake, TraceKind::Cad, TraceKind::Sitar];

    /// The trace's short name as used throughout the paper.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Cello => "cello",
            TraceKind::Snake => "snake",
            TraceKind::Cad => "cad",
            TraceKind::Sitar => "sitar",
        }
    }

    /// Generate this trace with `refs` references from `seed`.
    pub fn generate(self, refs: usize, seed: u64) -> Trace {
        self.stream(refs, seed).into_trace()
    }

    /// Stream this trace with `refs` references from `seed` without
    /// materializing it; bit-identical to [`TraceKind::generate`].
    pub fn stream(self, refs: usize, seed: u64) -> SynthSource {
        match self {
            TraceKind::Cello => stream_cello(&CelloConfig { refs, ..CelloConfig::default() }, seed),
            TraceKind::Snake => stream_snake(&SnakeConfig { refs, ..SnakeConfig::default() }, seed),
            TraceKind::Cad => stream_cad(&CadConfig { refs, ..CadConfig::default() }, seed),
            TraceKind::Sitar => stream_sitar(&SitarConfig { refs, ..SitarConfig::default() }, seed),
        }
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cello" => Ok(TraceKind::Cello),
            "snake" => Ok(TraceKind::Snake),
            "cad" => Ok(TraceKind::Cad),
            "sitar" => Ok(TraceKind::Sitar),
            other => Err(format!("unknown trace kind {other:?} (expected cello|snake|cad|sitar)")),
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate the full four-trace suite at `refs` references each.
pub fn standard_suite(refs: usize, seed: u64) -> Vec<Trace> {
    TraceKind::ALL.iter().map(|k| k.generate(refs, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for kind in TraceKind::ALL {
            let a = kind.generate(2000, 7);
            let b = kind.generate(2000, 7);
            assert_eq!(a.records(), b.records(), "{kind} not deterministic");
            let c = kind.generate(2000, 8);
            assert_ne!(a.records(), c.records(), "{kind} ignores seed");
        }
    }

    #[test]
    fn generators_honour_refs() {
        for kind in TraceKind::ALL {
            assert_eq!(kind.generate(1234, 1).len(), 1234);
        }
    }

    #[test]
    fn trace_kind_round_trips_from_str() {
        for kind in TraceKind::ALL {
            let parsed: TraceKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<TraceKind>().is_err());
    }

    #[test]
    fn suite_has_four_named_traces() {
        let suite = standard_suite(100, 3);
        let names: Vec<_> = suite.iter().map(|t| t.meta().name.clone()).collect();
        assert_eq!(names, vec!["cello", "snake", "cad", "sitar"]);
    }
}
