//! Synthetic workload generators.
//!
//! The paper drives its simulator with four traces (Table 1): cello and
//! snake (disk-block traces captured *below* a first-level file buffer
//! cache), CAD (object references from a CAD tool) and sitar (file block
//! traces of daily student usage). Those traces are not redistributable, so
//! this module synthesizes workloads that reproduce each trace's *defining
//! statistical character* — the properties the paper's results hinge on:
//!
//! | trace | defining properties we reproduce |
//! |-------|----------------------------------|
//! | cello | filtered through a 30 MB L1 → little residual locality; low predictability; some surviving sequentiality |
//! | snake | filtered through a 5 MB L1 → moderate repeated structure (~60% predictable) plus sequential runs |
//! | CAD   | no block-sequential adjacency at all; strongly repeated traversal sequences (~60% predictable, high prefetch-hit rate) |
//! | sitar | whole-file sequential reads; very high sequentiality; repeats mostly cache-resident |
//!
//! The building blocks are [`Workload`] implementations — sequential runs,
//! Zipf-random references, Markov pattern replay, repeated loop replay —
//! composed with [`Interleave`] (multi-process mixing) and [`L1Filter`]
//! (emit only the misses of a first-level LRU cache, matching how the
//! original cello/snake traces were captured).
//!
//! Everything is deterministic given the seed.

mod cad;
mod cello;
mod interleave;
mod l1filter;
mod loops;
mod markov;
mod primitives;
mod sitar;
mod snake;
mod zipf;

pub use cad::{generate_cad, CadConfig};
pub use cello::{generate_cello, CelloConfig};
pub use interleave::Interleave;
pub use l1filter::{L1Filter, LruSet};
pub use loops::LoopReplay;
pub use markov::MarkovPatterns;
pub use primitives::{SequentialRuns, UniformRandom, ZipfRandom};
pub use sitar::{generate_sitar, SitarConfig};
pub use snake::{generate_snake, SnakeConfig};
pub use zipf::ZipfSampler;

use crate::{Trace, TraceMeta, TraceRecord};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Block size assumed when converting the paper's L1 cache sizes (in bytes)
/// to block counts. The paper does not state the block size; 4 KiB is the
/// classic UNIX file-system block and keeps the cello (30 MB) and snake
/// (5 MB) L1 caches at 7680 and 1280 blocks respectively.
pub const BLOCK_BYTES: u64 = 4096;

/// A source of trace records. Implementations hold their own workload state
/// (current file offset, Markov state, ...) and draw randomness from the
/// caller-provided RNG so composition stays deterministic.
pub trait Workload {
    /// Produce the next reference.
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        (**self).next_record(rng)
    }
}

/// Drive `workload` for `refs` references into a [`Trace`] with the given
/// metadata and seed.
pub fn generate(mut workload: impl Workload, refs: usize, seed: u64, meta: TraceMeta) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Trace::new(TraceMeta { seed: Some(seed), ..meta });
    trace.reserve(refs);
    for _ in 0..refs {
        let r = workload.next_record(&mut rng);
        trace.push(r);
    }
    trace
}

/// Which of the paper's four traces to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TraceKind {
    /// Timesharing-system disk blocks, post-30MB-L1 (Ruemmler & Wilkes).
    Cello,
    /// File-server disk blocks, post-5MB-L1 (Ruemmler & Wilkes).
    Snake,
    /// Object references from a CAD tool (Curewitz et al.).
    Cad,
    /// File blocks from normal daily student usage (Griffioen & Appleton).
    Sitar,
}

impl TraceKind {
    /// All four kinds in the paper's Table 1 order.
    pub const ALL: [TraceKind; 4] =
        [TraceKind::Cello, TraceKind::Snake, TraceKind::Cad, TraceKind::Sitar];

    /// The trace's short name as used throughout the paper.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Cello => "cello",
            TraceKind::Snake => "snake",
            TraceKind::Cad => "cad",
            TraceKind::Sitar => "sitar",
        }
    }

    /// Generate this trace with `refs` references from `seed`.
    pub fn generate(self, refs: usize, seed: u64) -> Trace {
        match self {
            TraceKind::Cello => {
                generate_cello(&CelloConfig { refs, ..CelloConfig::default() }, seed)
            }
            TraceKind::Snake => {
                generate_snake(&SnakeConfig { refs, ..SnakeConfig::default() }, seed)
            }
            TraceKind::Cad => generate_cad(&CadConfig { refs, ..CadConfig::default() }, seed),
            TraceKind::Sitar => {
                generate_sitar(&SitarConfig { refs, ..SitarConfig::default() }, seed)
            }
        }
    }
}

impl std::str::FromStr for TraceKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cello" => Ok(TraceKind::Cello),
            "snake" => Ok(TraceKind::Snake),
            "cad" => Ok(TraceKind::Cad),
            "sitar" => Ok(TraceKind::Sitar),
            other => Err(format!("unknown trace kind {other:?} (expected cello|snake|cad|sitar)")),
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate the full four-trace suite at `refs` references each.
pub fn standard_suite(refs: usize, seed: u64) -> Vec<Trace> {
    TraceKind::ALL.iter().map(|k| k.generate(refs, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for kind in TraceKind::ALL {
            let a = kind.generate(2000, 7);
            let b = kind.generate(2000, 7);
            assert_eq!(a.records(), b.records(), "{kind} not deterministic");
            let c = kind.generate(2000, 8);
            assert_ne!(a.records(), c.records(), "{kind} ignores seed");
        }
    }

    #[test]
    fn generators_honour_refs() {
        for kind in TraceKind::ALL {
            assert_eq!(kind.generate(1234, 1).len(), 1234);
        }
    }

    #[test]
    fn trace_kind_round_trips_from_str() {
        for kind in TraceKind::ALL {
            let parsed: TraceKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<TraceKind>().is_err());
    }

    #[test]
    fn suite_has_four_named_traces() {
        let suite = standard_suite(100, 3);
        let names: Vec<_> = suite.iter().map(|t| t.meta().name.clone()).collect();
        assert_eq!(names, vec!["cello", "snake", "cad", "sitar"]);
    }
}
