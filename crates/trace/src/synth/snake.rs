//! Synthetic **snake**: disk-block trace from a file server, captured below
//! a 5 MB file buffer cache (Ruemmler & Wilkes).
//!
//! Construction: client request chains modelled as skewed first-order
//! Markov walks (clients re-issue similar request sequences with branching)
//! plus sequential whole-file reads, filtered through a 5 MB (1280-block)
//! L1 LRU. The small L1 leaves much more repeated structure in the miss
//! stream than cello's 30 MB cache.
//!
//! Defining properties this reproduces (paper Sections 9.1, 9.4):
//! * moderate prediction accuracy (paper: 61.5%);
//! * both `tree` and `next-limit` reduce misses; `tree-next-limit` is
//!   additive and best.

use crate::synth::{
    Interleave, L1Filter, LoopReplay, SequentialRuns, SynthSource, UniformRandom, Workload,
    BLOCK_BYTES,
};
use crate::{Trace, TraceMeta};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for the synthetic snake trace.
#[derive(Clone, Debug)]
pub struct SnakeConfig {
    /// Number of (post-L1) references to emit.
    pub refs: usize,
    /// First-level cache size in bytes (paper: 5 MB).
    pub l1_bytes: u64,
    /// Total block space of the served file systems.
    pub disk_blocks: u64,
    /// Maximum length of a client's replayed request chain, in blocks.
    /// Chains between 200 blocks and this length are generated; keep it
    /// above the L1 block count so replays reach the disk-level trace.
    pub max_chain_len: usize,
    /// Number of request-replaying clients.
    pub clients: u32,
}

impl Default for SnakeConfig {
    fn default() -> Self {
        SnakeConfig {
            refs: 400_000,
            l1_bytes: 5 << 20,
            disk_blocks: 1_000_000,
            max_chain_len: 1_200,
            clients: 3,
        }
    }
}

/// Generate the synthetic snake trace (materialized; see [`stream_snake`]
/// for the constant-memory streaming path — both are bit-identical).
pub fn generate_snake(cfg: &SnakeConfig, seed: u64) -> Trace {
    stream_snake(cfg, seed).into_trace()
}

/// Stream the synthetic snake trace without materializing it.
pub fn stream_snake(cfg: &SnakeConfig, seed: u64) -> SynthSource {
    let meta = TraceMeta {
        name: "snake".into(),
        description: "Synthetic: disk block traces from a file server (post-5MB L1)".into(),
        l1_cache_bytes: Some(cfg.l1_bytes),
        seed: None,
    };
    let cfg = cfg.clone();
    SynthSource::new(cfg.refs, seed, meta, Box::new(move || build_workload(&cfg, seed)))
}

/// Build the snake workload pipeline; deterministic in `(cfg, seed)` so
/// the streaming source can rebuild it on rewind.
fn build_workload(cfg: &SnakeConfig, seed: u64) -> Box<dyn Workload + Send> {
    let mut setup_rng = SmallRng::seed_from_u64(seed ^ 0x57ABE);
    let mut streams: Vec<(Box<dyn Workload + Send>, f64, u32)> = Vec::new();

    // Clients replaying request chains: the same multi-file request
    // sequences are served in the same order, run after run (think: the
    // same applications started every morning, the same build or mail
    // pipelines). Each chain is far larger than the 5 MB L1, so the L1
    // evicts it between replays and the repeated order reaches the
    // disk-level trace — this is what makes snake ~60% predictable.
    let region = cfg.disk_blocks / (cfg.clients as u64 + 2);
    for c in 0..cfg.clients {
        let lib = LoopReplay::random_library(
            &mut setup_rng,
            8,
            400,
            cfg.max_chain_len.max(500),
            c as u64 * region,
            region,
        );
        streams.push((
            Box::new(LoopReplay::new(lib, 0.8, 0.01, c as u64 * region, region)),
            1.0,
            c + 1,
        ));
    }
    // Sequential whole-file reads (backup-like and large-file traffic).
    streams.push((
        Box::new(SequentialRuns::new(cfg.clients as u64 * region, region, 8, 128)),
        2.2,
        50,
    ));
    // Scattered one-off requests.
    streams.push((
        Box::new(UniformRandom::new((cfg.clients as u64 + 1) * region, region)),
        0.25,
        51,
    ));

    let l1_blocks = (cfg.l1_bytes / BLOCK_BYTES).max(1) as usize;
    // Server request streams are bursty per client. The L1 filter is part
    // of the streaming pipeline: only misses are emitted, as captured.
    Box::new(L1Filter::new(Interleave::new(streams).with_burst(32.0), l1_blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn snake_has_repeated_structure_and_sequential_runs() {
        let t = generate_snake(&SnakeConfig { refs: 60_000, ..Default::default() }, 1);
        let s = TraceStats::compute(&t);
        // Sequential file reads survive.
        assert!(s.sequential_fraction > 0.15, "sequential fraction: {}", s.sequential_fraction);
        // Repeated request chains: blocks are re-referenced below the disk
        // (unique fraction clearly below 1).
        assert!(
            (s.unique_blocks as f64) < 0.8 * s.refs as f64,
            "no reuse: {} unique of {}",
            s.unique_blocks,
            s.refs
        );
        assert_eq!(t.meta().l1_cache_bytes, Some(5 << 20));
    }

    #[test]
    fn snake_bigram_repetition_exceeds_cello() {
        // The paper's Table 2 ordering (snake 61.5% predictable vs cello
        // 35.8%) emerges once the request chains have replayed a few
        // times, which needs trace length comparable to the chain library.
        use crate::synth::{generate_cello, CelloConfig};
        let snake = generate_snake(&SnakeConfig { refs: 150_000, ..Default::default() }, 3);
        let cello = generate_cello(&CelloConfig { refs: 150_000, ..Default::default() }, 3);
        let rep = |t: &crate::Trace| {
            let blocks: Vec<u64> = t.blocks().map(|b| b.0).collect();
            let mut seen = std::collections::HashSet::new();
            let mut repeated = 0usize;
            for w in blocks.windows(2) {
                if !seen.insert((w[0], w[1])) {
                    repeated += 1;
                }
            }
            repeated as f64 / (blocks.len() - 1) as f64
        };
        let rs = rep(&snake);
        let rc = rep(&cello);
        assert!(rs > rc, "snake bigram repetition {rs:.3} <= cello {rc:.3}");
    }
}
