//! Synthetic **sitar**: file block traces of normal daily student usage
//! (Griffioen & Appleton).
//!
//! Construction: a population of files laid out contiguously on disk. A
//! session picks either a *hot* file (Zipf over a working set — editors,
//! shells, mail reread the same files) or, with some probability, a fresh
//! never-read file (new documents, man pages, builds), and reads it
//! sequentially from the start, occasionally stopping early.
//!
//! Defining properties this reproduces (paper Sections 9.1, 9.4):
//! * very high sequentiality → `next-limit` and `tree-next-limit` cut the
//!   miss rate dramatically (paper: up to 73%);
//! * high prediction accuracy (paper: 71.4%) **but** the predictable blocks
//!   are mostly already cached (hot files), so plain `tree` performs about
//!   like `no-prefetch` — the misses that remain are compulsory first reads
//!   the tree has never seen;
//! * high last-visited-child rate (paper: 73.6%).

use crate::synth::{SynthSource, Workload};
use crate::{BlockId, Trace, TraceMeta, TraceRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic sitar trace.
#[derive(Clone, Debug)]
pub struct SitarConfig {
    /// Number of references to emit.
    pub refs: usize,
    /// Number of hot (repeatedly read) files.
    pub hot_files: usize,
    /// Min/max file length in blocks.
    pub file_blocks: (u32, u32),
    /// Probability that a session opens a brand-new file instead of a hot
    /// one. Drives the compulsory-miss stream that only one-block-lookahead
    /// can absorb.
    pub fresh_file_rate: f64,
    /// Zipf exponent over hot-file popularity.
    pub popularity_skew: f64,
    /// Probability per block of abandoning the current file read early.
    pub early_stop_rate: f64,
    /// Probability that a finished session immediately re-reads the same
    /// file (editor/compiler loops). These re-reads are what makes the
    /// paper's sitar highly *predictable yet already cached*: the tree can
    /// predict them, but the blocks are still resident, so the plain
    /// `tree` policy gains almost nothing (Sections 9.1 and 9.4).
    pub reread_rate: f64,
}

impl Default for SitarConfig {
    fn default() -> Self {
        SitarConfig {
            refs: 400_000,
            hot_files: 300,
            file_blocks: (4, 48),
            fresh_file_rate: 0.50,
            popularity_skew: 0.8,
            early_stop_rate: 0.02,
            reread_rate: 0.80,
        }
    }
}

struct SitarWorkload {
    cfg: SitarConfig,
    /// (start block, length) of each hot file
    hot: Vec<(u64, u32)>,
    chooser: crate::synth::ZipfSampler,
    /// next unallocated block for fresh files
    next_fresh_start: u64,
    /// current read position and remaining blocks
    current: u64,
    remaining: u32,
    /// start/length of the file being read, for same-file re-reads
    session_file: Option<(u64, u32)>,
    pid: u32,
}

impl SitarWorkload {
    fn new(cfg: SitarConfig, setup_rng: &mut SmallRng) -> Self {
        assert!(cfg.hot_files > 0, "need at least one hot file");
        assert!(
            cfg.file_blocks.0 > 0 && cfg.file_blocks.0 <= cfg.file_blocks.1,
            "bad file_blocks range"
        );
        // Lay hot files out contiguously with one-block gaps so files are
        // internally sequential but not accidentally joined.
        let mut hot = Vec::with_capacity(cfg.hot_files);
        let mut next = 0u64;
        for _ in 0..cfg.hot_files {
            let len = setup_rng.gen_range(cfg.file_blocks.0..=cfg.file_blocks.1);
            hot.push((next, len));
            next += len as u64 + 1;
        }
        let chooser = crate::synth::ZipfSampler::new(cfg.hot_files, cfg.popularity_skew);
        SitarWorkload {
            hot,
            chooser,
            // Fresh files start far above the hot region.
            next_fresh_start: next + 1_000_000,
            current: 0,
            remaining: 0,
            session_file: None,
            cfg,
            pid: 1,
        }
    }

    fn open_next_file(&mut self, rng: &mut SmallRng) {
        // Same-file re-read (editor/compile loop): highly predictable AND
        // cache-resident -- the combination behind sitar's Table 2 /
        // Figure 14 numbers.
        if let Some((start, len)) = self.session_file {
            if rng.gen::<f64>() < self.cfg.reread_rate {
                self.current = start;
                self.remaining = len;
                self.pid = 1;
                return;
            }
        }
        if rng.gen::<f64>() < self.cfg.fresh_file_rate {
            let len = rng.gen_range(self.cfg.file_blocks.0..=self.cfg.file_blocks.1);
            self.current = self.next_fresh_start;
            self.remaining = len;
            self.session_file = Some((self.next_fresh_start, len));
            self.next_fresh_start += len as u64 + 1;
            self.pid = 2; // fresh reads attributed to a different "user task"
        } else {
            let (start, len) = self.hot[self.chooser.sample(rng)];
            self.current = start;
            self.remaining = len;
            self.session_file = Some((start, len));
            self.pid = 1;
        }
    }
}

impl Workload for SitarWorkload {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        if self.remaining == 0 || rng.gen::<f64>() < self.cfg.early_stop_rate {
            self.open_next_file(rng);
        }
        let block = BlockId(self.current);
        self.current += 1;
        self.remaining -= 1;
        TraceRecord::read(block).with_pid(self.pid)
    }
}

/// Generate the synthetic sitar trace (materialized; see [`stream_sitar`]
/// for the constant-memory streaming path — both are bit-identical).
pub fn generate_sitar(cfg: &SitarConfig, seed: u64) -> Trace {
    stream_sitar(cfg, seed).into_trace()
}

/// Stream the synthetic sitar trace without materializing it.
pub fn stream_sitar(cfg: &SitarConfig, seed: u64) -> SynthSource {
    let meta = TraceMeta {
        name: "sitar".into(),
        description: "Synthetic: file block traces of normal daily usage of students".into(),
        l1_cache_bytes: None,
        seed: None,
    };
    let cfg = cfg.clone();
    SynthSource::new(cfg.refs, seed, meta, Box::new(move || build_workload(&cfg, seed)))
}

/// Build the sitar workload; deterministic in `(cfg, seed)` so the
/// streaming source can rebuild it on rewind.
fn build_workload(cfg: &SitarConfig, seed: u64) -> Box<dyn Workload + Send> {
    let mut setup_rng = SmallRng::seed_from_u64(seed ^ 0x517A2);
    Box::new(SitarWorkload::new(cfg.clone(), &mut setup_rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn sitar_is_highly_sequential() {
        let t = generate_sitar(&SitarConfig { refs: 50_000, ..Default::default() }, 1);
        let s = TraceStats::compute(&t);
        assert!(
            s.sequential_fraction > 0.75,
            "sitar must be highly sequential, got {}",
            s.sequential_fraction
        );
    }

    #[test]
    fn sitar_mixes_hot_rereads_and_fresh_files() {
        let t = generate_sitar(&SitarConfig { refs: 50_000, ..Default::default() }, 2);
        let hot_refs = t.records().iter().filter(|r| r.pid == 1).count();
        let fresh_refs = t.records().iter().filter(|r| r.pid == 2).count();
        assert!(hot_refs > 0 && fresh_refs > 0);
        // Fresh files are never re-read: each fresh block appears exactly once.
        let mut fresh_seen = std::collections::HashSet::new();
        for r in t.records().iter().filter(|r| r.pid == 2) {
            assert!(fresh_seen.insert(r.block), "fresh block {:?} re-read", r.block);
        }
    }

    #[test]
    fn sitar_hot_files_reread() {
        let t = generate_sitar(&SitarConfig { refs: 50_000, ..Default::default() }, 3);
        let mut counts = std::collections::HashMap::new();
        for r in t.records().iter().filter(|r| r.pid == 1) {
            *counts.entry(r.block).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 10, "hot files should be re-read many times, max={max}");
    }
}
