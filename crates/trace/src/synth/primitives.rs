//! Primitive workloads: sequential runs, uniform random, and Zipf random.

use crate::record::{BlockId, TraceRecord};
use crate::synth::{Workload, ZipfSampler};
use rand::rngs::SmallRng;
use rand::Rng;

/// Sequential runs: pick a random start block in `region`, read
/// `run_len_min..=run_len_max` consecutive blocks, then start a new run.
/// Models file reads and large scans.
#[derive(Clone, Debug)]
pub struct SequentialRuns {
    region_start: u64,
    region_blocks: u64,
    run_len_min: u32,
    run_len_max: u32,
    current: u64,
    remaining: u32,
}

impl SequentialRuns {
    /// A sequential-run workload over `region_start .. region_start + region_blocks`.
    ///
    /// # Panics
    /// Panics if the region is empty or `run_len_min` is zero or exceeds
    /// `run_len_max`.
    pub fn new(region_start: u64, region_blocks: u64, run_len_min: u32, run_len_max: u32) -> Self {
        assert!(region_blocks > 0, "region must be non-empty");
        assert!(
            run_len_min > 0 && run_len_min <= run_len_max,
            "need 0 < run_len_min <= run_len_max"
        );
        SequentialRuns {
            region_start,
            region_blocks,
            run_len_min,
            run_len_max,
            current: 0,
            remaining: 0,
        }
    }
}

impl Workload for SequentialRuns {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        if self.remaining == 0 {
            self.current = self.region_start + rng.gen_range(0..self.region_blocks);
            self.remaining = rng.gen_range(self.run_len_min..=self.run_len_max);
        }
        let block = BlockId(self.current);
        self.current = self.current.wrapping_add(1);
        self.remaining -= 1;
        TraceRecord::read(block)
    }
}

/// Uniform random references over a block region. Models cache-hostile
/// scattered traffic (e.g. paging, database index probes).
#[derive(Clone, Debug)]
pub struct UniformRandom {
    region_start: u64,
    region_blocks: u64,
}

impl UniformRandom {
    /// Uniform references over `region_start .. region_start + region_blocks`.
    ///
    /// # Panics
    /// Panics if the region is empty.
    pub fn new(region_start: u64, region_blocks: u64) -> Self {
        assert!(region_blocks > 0, "region must be non-empty");
        UniformRandom { region_start, region_blocks }
    }
}

impl Workload for UniformRandom {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        TraceRecord::read(BlockId(self.region_start + rng.gen_range(0..self.region_blocks)))
    }
}

/// Zipf-skewed references over a set of hot blocks, with the mapping from
/// rank to block id scattered (shuffled) so popularity does not imply
/// adjacency. Models metadata and hot-file traffic.
#[derive(Clone, Debug)]
pub struct ZipfRandom {
    blocks: Vec<u64>,
    sampler: ZipfSampler,
}

impl ZipfRandom {
    /// Zipf references over `n` blocks starting at `region_start` with
    /// exponent `theta`; rank→block mapping is shuffled with `shuffle_rng`.
    pub fn new(region_start: u64, n: usize, theta: f64, shuffle_rng: &mut SmallRng) -> Self {
        let mut blocks: Vec<u64> = (region_start..region_start + n as u64).collect();
        // Fisher-Yates so the hottest ranks land on scattered block ids.
        for i in (1..blocks.len()).rev() {
            let j = shuffle_rng.gen_range(0..=i);
            blocks.swap(i, j);
        }
        ZipfRandom { blocks, sampler: ZipfSampler::new(n, theta) }
    }
}

impl Workload for ZipfRandom {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        let rank = self.sampler.sample(rng);
        TraceRecord::read(BlockId(self.blocks[rank]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;
    use crate::TraceMeta;
    use rand::SeedableRng;

    #[test]
    fn sequential_runs_are_sequential() {
        let w = SequentialRuns::new(1000, 10_000, 8, 8);
        let t = generate(w, 800, 3, TraceMeta::default());
        // Count adjacent successor pairs: 7 out of every 8 transitions
        // within a run are sequential.
        let blocks: Vec<_> = t.blocks().collect();
        let seq = blocks.windows(2).filter(|w| w[0].is_successor(w[1])).count();
        assert!(seq as f64 / (blocks.len() - 1) as f64 > 0.8, "seq fraction too low: {seq}");
        // All blocks inside the region (runs may run past the end by run_len).
        assert!(t.blocks().all(|b| b.0 >= 1000 && b.0 < 1000 + 10_000 + 8));
    }

    #[test]
    fn sequential_run_lengths_in_bounds() {
        let w = SequentialRuns::new(0, 1_000_000, 4, 16);
        let t = generate(w, 5000, 11, TraceMeta::default());
        let blocks: Vec<_> = t.blocks().collect();
        let mut run = 1;
        let mut max_run = 1;
        for w in blocks.windows(2) {
            if w[0].is_successor(w[1]) {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        // A run can be at most 16 (two runs colliding end-to-start is
        // astronomically unlikely over a 1M-block region).
        assert!(max_run <= 16, "run of length {max_run}");
    }

    #[test]
    fn uniform_random_stays_in_region() {
        let w = UniformRandom::new(500, 100);
        let t = generate(w, 1000, 4, TraceMeta::default());
        assert!(t.blocks().all(|b| b.0 >= 500 && b.0 < 600));
        // Should touch a good fraction of the region.
        let unique: std::collections::HashSet<_> = t.blocks().collect();
        assert!(unique.len() > 80);
    }

    #[test]
    fn zipf_random_is_skewed_and_scattered() {
        let mut srng = SmallRng::seed_from_u64(2);
        let w = ZipfRandom::new(0, 1000, 1.0, &mut srng);
        let t = generate(w, 20_000, 5, TraceMeta::default());
        let mut counts = std::collections::HashMap::new();
        for b in t.blocks() {
            *counts.entry(b).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        // Top block should dominate the mean strongly under Zipf(1.0).
        assert!(max as f64 > 20.0 * (20_000.0 / 1000.0));
        // Scattered: almost no sequential adjacency.
        let blocks: Vec<_> = t.blocks().collect();
        let seq = blocks.windows(2).filter(|w| w[0].is_successor(w[1])).count();
        assert!((seq as f64) < 0.02 * blocks.len() as f64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_panics() {
        UniformRandom::new(0, 0);
    }
}
