//! Multi-process interleaving of workload streams.

use crate::synth::{Workload, ZipfSampler};
use crate::TraceRecord;
use rand::rngs::SmallRng;

/// Interleaves several workload streams, picking the next stream with a
/// weighted random choice and stamping each record with the stream's pid.
/// Models concurrent processes sharing the disk on a timesharing system or
/// clients sharing a file server.
///
/// Real multiprogrammed I/O is *bursty*: a scheduled process issues a run
/// of requests before the next process gets the disk. [`Interleave`] models
/// this with a mean burst length (default 1 = fully fine-grained): after
/// choosing a stream it stays with it for a geometrically-distributed
/// number of records.
pub struct Interleave {
    streams: Vec<(Box<dyn Workload + Send>, u32)>,
    chooser: ZipfSampler,
    /// probability of switching streams after each record (1/mean_burst)
    switch_prob: f64,
    current: usize,
    started: bool,
}

impl Interleave {
    /// Build from `(workload, weight, pid)` triples with fine-grained
    /// (burst length 1) interleaving.
    ///
    /// # Panics
    /// Panics if `streams` is empty or all weights are zero.
    pub fn new(streams: Vec<(Box<dyn Workload + Send>, f64, u32)>) -> Self {
        assert!(!streams.is_empty(), "need at least one stream");
        let weights: Vec<f64> = streams.iter().map(|(_, w, _)| *w).collect();
        let chooser = ZipfSampler::from_weights(&weights);
        Interleave {
            streams: streams.into_iter().map(|(w, _, pid)| (w, pid)).collect(),
            chooser,
            switch_prob: 1.0,
            current: 0,
            started: false,
        }
    }

    /// Use geometric bursts with the given mean length (≥ 1).
    ///
    /// # Panics
    /// Panics if `mean_burst < 1`.
    pub fn with_burst(mut self, mean_burst: f64) -> Self {
        assert!(mean_burst >= 1.0, "mean burst length must be >= 1");
        self.switch_prob = 1.0 / mean_burst;
        self
    }
}

impl Workload for Interleave {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        use rand::Rng;
        if !self.started || rng.gen::<f64>() < self.switch_prob {
            self.current = self.chooser.sample(rng);
            self.started = true;
        }
        let (stream, pid) = &mut self.streams[self.current];
        stream.next_record(rng).with_pid(*pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SequentialRuns, UniformRandom};
    use crate::TraceMeta;

    #[test]
    fn interleave_stamps_pids_with_given_weights() {
        let streams: Vec<(Box<dyn Workload + Send>, f64, u32)> = vec![
            (Box::new(SequentialRuns::new(0, 1000, 4, 8)), 3.0, 1),
            (Box::new(UniformRandom::new(100_000, 1000)), 1.0, 2),
        ];
        let t = generate(Interleave::new(streams), 40_000, 6, TraceMeta::default());
        let p1 = t.records().iter().filter(|r| r.pid == 1).count();
        let p2 = t.records().iter().filter(|r| r.pid == 2).count();
        assert_eq!(p1 + p2, 40_000);
        let ratio = p1 as f64 / p2 as f64;
        assert!((2.5..3.5).contains(&ratio), "weight ratio off: {ratio}");
    }

    #[test]
    fn single_stream_passthrough() {
        let streams: Vec<(Box<dyn Workload + Send>, f64, u32)> =
            vec![(Box::new(UniformRandom::new(0, 10)), 1.0, 9)];
        let t = generate(Interleave::new(streams), 100, 1, TraceMeta::default());
        assert!(t.records().iter().all(|r| r.pid == 9));
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streams_panics() {
        Interleave::new(Vec::new());
    }

    #[test]
    fn bursty_interleave_keeps_runs_together() {
        let streams: Vec<(Box<dyn Workload + Send>, f64, u32)> = vec![
            (Box::new(SequentialRuns::new(0, 100_000, 1000, 1000)), 1.0, 1),
            (Box::new(SequentialRuns::new(1_000_000, 100_000, 1000, 1000)), 1.0, 2),
        ];
        let t =
            generate(Interleave::new(streams).with_burst(32.0), 20_000, 8, TraceMeta::default());
        // Mean pid-run length should be near the burst mean.
        let recs = t.records();
        let mut runs = 0usize;
        for w in recs.windows(2) {
            if w[0].pid != w[1].pid {
                runs += 1;
            }
        }
        // A "switch" re-picks uniformly between the two equal-weight
        // streams, so half the switches stay put: expected observed run
        // length is burst_mean / 0.5 = 64.
        let mean_run = recs.len() as f64 / (runs + 1) as f64;
        assert!((40.0..100.0).contains(&mean_run), "mean run {mean_run}");
        // Bursts preserve trace-level sequentiality.
        let blocks: Vec<_> = t.blocks().collect();
        let seq = blocks.windows(2).filter(|w| w[0].is_successor(w[1])).count();
        assert!(seq as f64 / blocks.len() as f64 > 0.8);
    }

    #[test]
    #[should_panic(expected = "mean burst")]
    fn burst_below_one_panics() {
        let streams: Vec<(Box<dyn Workload + Send>, f64, u32)> =
            vec![(Box::new(UniformRandom::new(0, 10)), 1.0, 1)];
        Interleave::new(streams).with_burst(0.5);
    }
}
