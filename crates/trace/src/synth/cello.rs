//! Synthetic **cello**: disk-block trace from a timesharing system,
//! captured below a 30 MB file buffer cache (Ruemmler & Wilkes).
//!
//! Construction: eight interleaved processes — sequential file scans over a
//! large block space, Zipf-skewed metadata traffic, and uniform scattered
//! traffic — filtered through a 30 MB (7680-block) L1 LRU cache so only the
//! misses appear in the trace, exactly how the original was captured.
//!
//! Defining properties this reproduces (paper Sections 9.1, 9.4):
//! * the big L1 strips most temporal locality → *low* prediction accuracy
//!   (paper: 35.78%, the lowest of the four traces);
//! * long sequential scans survive the L1 in order → one-block-lookahead
//!   (`next-limit`) still helps;
//! * tree-based prefetching helps only modestly.

use crate::synth::{
    Interleave, L1Filter, LoopReplay, SequentialRuns, SynthSource, UniformRandom, Workload,
    ZipfRandom, BLOCK_BYTES,
};
use crate::{Trace, TraceMeta};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for the synthetic cello trace.
#[derive(Clone, Debug)]
pub struct CelloConfig {
    /// Number of (post-L1) references to emit.
    pub refs: usize,
    /// First-level cache size in bytes (paper: 30 MB).
    pub l1_bytes: u64,
    /// Total block space of the simulated disks.
    pub disk_blocks: u64,
    /// Number of interleaved processes doing sequential scans.
    pub scan_processes: u32,
    /// Hot (Zipf) region size in blocks — metadata and hot files.
    pub hot_blocks: usize,
}

impl Default for CelloConfig {
    fn default() -> Self {
        CelloConfig {
            refs: 400_000,
            l1_bytes: 30 << 20,
            disk_blocks: 2_000_000,
            scan_processes: 5,
            hot_blocks: 40_000,
        }
    }
}

/// Generate the synthetic cello trace (materialized; see [`stream_cello`]
/// for the constant-memory streaming path — both are bit-identical).
pub fn generate_cello(cfg: &CelloConfig, seed: u64) -> Trace {
    stream_cello(cfg, seed).into_trace()
}

/// Stream the synthetic cello trace without materializing it.
pub fn stream_cello(cfg: &CelloConfig, seed: u64) -> SynthSource {
    let meta = TraceMeta {
        name: "cello".into(),
        description: "Synthetic: disk block traces from a timesharing system (post-30MB L1)".into(),
        l1_cache_bytes: Some(cfg.l1_bytes),
        seed: None,
    };
    let cfg = cfg.clone();
    SynthSource::new(cfg.refs, seed, meta, Box::new(move || build_workload(&cfg, seed)))
}

/// Build the cello workload pipeline; deterministic in `(cfg, seed)` so
/// the streaming source can rebuild it on rewind.
fn build_workload(cfg: &CelloConfig, seed: u64) -> Box<dyn Workload + Send> {
    let mut setup_rng = SmallRng::seed_from_u64(seed ^ 0xCE110);
    let mut streams: Vec<(Box<dyn Workload + Send>, f64, u32)> = Vec::new();

    // Sequential scanners: user programs reading files; region per process
    // so scans do not collide, run lengths well above the L1 so misses
    // stream through sequentially.
    let region = cfg.disk_blocks / (cfg.scan_processes as u64 + 3);
    for p in 0..cfg.scan_processes {
        streams.push((
            Box::new(SequentialRuns::new(p as u64 * region, region, 16, 512)),
            1.0,
            p + 1,
        ));
    }
    // Repeated batch jobs (nightly builds, cron): long loops over scattered
    // blocks, re-executed in the same order. Loops are big enough that the
    // L1 evicts them between replays, so the repeated order reaches the
    // disk-level trace — the (weak) structure the prefetch tree can learn.
    let loops_start = cfg.scan_processes as u64 * region;
    let library = LoopReplay::random_library(&mut setup_rng, 8, 800, 1800, loops_start, region);
    streams.push((Box::new(LoopReplay::new(library, 0.7, 0.02, loops_start, region)), 7.0, 99));
    // Zipf metadata / hot-file traffic: mostly absorbed by the L1; what
    // leaks is the long tail, which looks nearly random below the cache.
    streams.push((
        Box::new(ZipfRandom::new(
            (cfg.scan_processes as u64 + 1) * region,
            cfg.hot_blocks,
            0.85,
            &mut setup_rng,
        )),
        1.6,
        100,
    ));
    // Scattered background traffic (paging, random database probes).
    streams.push((
        Box::new(UniformRandom::new((cfg.scan_processes as u64 + 2) * region, region)),
        1.2,
        101,
    ));

    let l1_blocks = (cfg.l1_bytes / BLOCK_BYTES).max(1) as usize;
    // Timesharing I/O is bursty: a scheduled process issues a run of
    // requests before yielding the disk. The L1 filter is part of the
    // streaming pipeline: only misses are emitted, as captured.
    Box::new(L1Filter::new(Interleave::new(streams).with_burst(24.0), l1_blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn cello_has_surviving_sequentiality_but_weak_locality() {
        let t = generate_cello(&CelloConfig { refs: 60_000, ..Default::default() }, 1);
        let s = TraceStats::compute(&t);
        // Sequential scans survive the L1.
        assert!(
            s.sequential_fraction > 0.2,
            "sequential fraction too low: {}",
            s.sequential_fraction
        );
        // Locality is weak: most references are to blocks never seen before
        // or long evicted (high unique fraction).
        assert!(
            s.unique_blocks as f64 / s.refs as f64 > 0.4,
            "too much reuse: {} unique of {}",
            s.unique_blocks,
            s.refs
        );
        assert_eq!(t.meta().l1_cache_bytes, Some(30 << 20));
    }

    #[test]
    fn cello_mixes_processes() {
        let t = generate_cello(&CelloConfig { refs: 20_000, ..Default::default() }, 2);
        let pids: std::collections::HashSet<u32> = t.records().iter().map(|r| r.pid).collect();
        assert!(pids.len() >= 4, "expected multiple processes, got {pids:?}");
    }
}
