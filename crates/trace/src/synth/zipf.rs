//! Zipf-distributed sampling via Walker's alias method.
//!
//! Sampling is O(1) per draw after an O(n) setup, which matters because the
//! trace generators draw hundreds of thousands of file/object ranks. Rank 0
//! is the most popular item; rank `n-1` the least, with
//! `P(rank = k) ∝ 1/(k+1)^theta`.

use rand::rngs::SmallRng;
use rand::Rng;

/// O(1) sampler for a Zipf distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `theta > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `n > u32::MAX as usize`, or `theta` is not finite
    /// and positive.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(n <= u32::MAX as usize, "ZipfSampler supports at most 2^32 ranks");
        assert!(theta.is_finite() && theta > 0.0, "theta must be finite and positive");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(theta)).collect();
        Self::from_weights(&weights)
    }

    /// Build an alias table for arbitrary non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or all weights are zero/non-finite.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights.iter().copied().filter(|w| w.is_finite() && *w > 0.0).sum();
        assert!(total > 0.0, "weights must have positive finite mass");
        let n = weights.len();
        // Scaled probabilities; the alias construction partitions them into
        // "small" (< 1) and "large" (>= 1) work lists.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|w| if w.is_finite() && *w > 0.0 { w * n as f64 / total } else { 0.0 })
            .collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        // Note: pop both lists only when both are non-empty; evaluating the
        // pops inside a `while let` tuple would discard an element when one
        // list runs dry.
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are all probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        ZipfSampler { prob, alias }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the sampler has zero ranks (never true; kept for API hygiene).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one rank in `0..len()`.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn single_rank_always_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_are_in_range() {
        let z = ZipfSampler::new(17, 0.9);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn empirical_frequencies_match_zipf() {
        let n = 10;
        let theta = 1.0;
        let z = ZipfSampler::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0usize; n];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        let norm: f64 = (0..n).map(|k| 1.0 / (k + 1) as f64).sum();
        for (k, &c) in counts.iter().enumerate() {
            let expected = (1.0 / (k + 1) as f64) / norm;
            let observed = c as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed:.4} expected {expected:.4}"
            );
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfSampler::new(100, 0.8);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut zero = 0;
        let mut ninetynine = 0;
        for _ in 0..50_000 {
            match z.sample(&mut rng) {
                0 => zero += 1,
                99 => ninetynine += 1,
                _ => {}
            }
        }
        assert!(zero > ninetynine * 5, "zipf skew missing: {zero} vs {ninetynine}");
    }

    #[test]
    fn from_weights_respects_zero_weights() {
        let z = ZipfSampler::from_weights(&[0.0, 1.0, 0.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[3] > counts[1] * 2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite mass")]
    fn all_zero_weights_panics() {
        ZipfSampler::from_weights(&[0.0, 0.0]);
    }
}
