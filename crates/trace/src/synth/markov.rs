//! First-order Markov pattern workload.
//!
//! A random walk over a sparse transition graph whose states map to
//! scattered block ids. Each state has a small out-degree with skewed
//! transition weights, so the walk exhibits repeated-but-branching request
//! patterns — the character of file-server traffic (snake) where clients
//! re-issue similar request chains with variation.

use crate::synth::{Workload, ZipfSampler};
use crate::{BlockId, TraceRecord};
use rand::rngs::SmallRng;
use rand::Rng;

/// A first-order Markov chain over scattered blocks.
#[derive(Clone, Debug)]
pub struct MarkovPatterns {
    /// block id per state
    blocks: Vec<u64>,
    /// per state: (successor states, transition sampler)
    transitions: Vec<(Vec<u32>, ZipfSampler)>,
    /// probability of teleporting to a uniform random state, keeping the
    /// chain irreducible and injecting novelty
    restart_rate: f64,
    state: usize,
}

impl MarkovPatterns {
    /// Build a random chain.
    ///
    /// * `states` — number of states;
    /// * `out_degree` — successors per state;
    /// * `skew` — Zipf exponent over a state's successors (higher = more
    ///   deterministic walk, i.e. higher predictability);
    /// * `restart_rate` — teleport probability per step;
    /// * block ids are drawn scattered from
    ///   `region_start..region_start+region_blocks`.
    ///
    /// # Panics
    /// Panics on empty dimensions or `restart_rate` outside `[0,1)`.
    pub fn random(
        rng: &mut SmallRng,
        states: usize,
        out_degree: usize,
        skew: f64,
        restart_rate: f64,
        region_start: u64,
        region_blocks: u64,
    ) -> Self {
        assert!(states > 0 && out_degree > 0, "need positive states and out_degree");
        assert!((0.0..1.0).contains(&restart_rate), "restart_rate must be in [0,1)");
        assert!(region_blocks >= states as u64, "region must fit all states");
        // Scattered distinct block ids: sample without replacement via a
        // partial Fisher-Yates over the region offsets.
        let mut offsets: Vec<u64> = Vec::with_capacity(states);
        let mut seen = std::collections::HashSet::with_capacity(states);
        while offsets.len() < states {
            let o = rng.gen_range(0..region_blocks);
            if seen.insert(o) {
                offsets.push(o);
            }
        }
        let blocks: Vec<u64> = offsets.iter().map(|o| region_start + o).collect();
        let sampler = ZipfSampler::new(out_degree, skew);
        let transitions = (0..states)
            .map(|_| {
                let succs: Vec<u32> =
                    (0..out_degree).map(|_| rng.gen_range(0..states as u32)).collect();
                (succs, sampler.clone())
            })
            .collect();
        MarkovPatterns { blocks, transitions, restart_rate, state: 0 }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.blocks.len()
    }
}

impl Workload for MarkovPatterns {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        let block = BlockId(self.blocks[self.state]);
        self.state = if rng.gen::<f64>() < self.restart_rate {
            rng.gen_range(0..self.blocks.len())
        } else {
            let (succs, sampler) = &self.transitions[self.state];
            succs[sampler.sample(rng)] as usize
        };
        TraceRecord::read(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;
    use crate::TraceMeta;
    use rand::SeedableRng;

    #[test]
    fn walk_visits_only_state_blocks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = MarkovPatterns::random(&mut rng, 50, 3, 1.0, 0.05, 10_000, 100_000);
        let all: std::collections::HashSet<u64> = m.blocks.iter().copied().collect();
        assert_eq!(all.len(), 50, "states must map to distinct blocks");
        let t = generate(m, 5000, 2, TraceMeta::default());
        assert!(t.blocks().all(|b| all.contains(&b.0)));
    }

    #[test]
    fn high_skew_walks_are_repetitive() {
        // With strong skew each state almost always picks its top
        // successor, so bigram repetition is high.
        let mut rng = SmallRng::seed_from_u64(3);
        let m = MarkovPatterns::random(&mut rng, 200, 4, 3.0, 0.01, 0, 1_000_000);
        let t = generate(m, 30_000, 4, TraceMeta::default());
        let blocks: Vec<u64> = t.blocks().map(|b| b.0).collect();
        let mut follows: std::collections::HashMap<u64, std::collections::HashMap<u64, usize>> =
            Default::default();
        for w in blocks.windows(2) {
            *follows.entry(w[0]).or_default().entry(w[1]).or_insert(0) += 1;
        }
        // For each predecessor, the most common successor should dominate.
        let mut dominated = 0usize;
        let mut total = 0usize;
        for (_, succ) in follows {
            let sum: usize = succ.values().sum();
            let max = succ.values().copied().max().unwrap_or(0);
            if sum >= 20 {
                total += 1;
                if max as f64 / sum as f64 > 0.6 {
                    dominated += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            dominated as f64 / total as f64 > 0.7,
            "skewed walk not repetitive: {dominated}/{total}"
        );
    }

    #[test]
    fn restart_rate_injects_novel_transitions() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = MarkovPatterns::random(&mut rng, 100, 2, 2.0, 0.5, 0, 10_000);
        let t = generate(m, 20_000, 6, TraceMeta::default());
        // With 50% teleport the number of distinct bigrams should be much
        // larger than states*out_degree.
        let blocks: Vec<u64> = t.blocks().map(|b| b.0).collect();
        let bigrams: std::collections::HashSet<(u64, u64)> =
            blocks.windows(2).map(|w| (w[0], w[1])).collect();
        assert!(bigrams.len() > 100 * 2 * 2, "only {} bigrams", bigrams.len());
    }

    #[test]
    #[should_panic(expected = "restart_rate")]
    fn bad_restart_rate_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        MarkovPatterns::random(&mut rng, 10, 2, 1.0, 1.0, 0, 100);
    }
}
