//! First-level-cache filtering.
//!
//! The cello and snake traces were captured at the *disk* level of systems
//! with 30 MB and 5 MB file buffer caches: every reference that hit in that
//! first-level cache is invisible in the trace (the paper calls this out as
//! a limitation of Table 1). [`L1Filter`] reproduces the capture setup: it
//! pulls references from an inner workload, simulates an LRU cache of the
//! configured size, and emits only the *misses*.

use crate::synth::Workload;
use crate::{BlockId, TraceRecord};
use prefetch_hash::{FxBuildHasher, FxHashMap};
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// A minimal O(1) LRU membership set used for first-level-cache filtering.
///
/// This is intentionally independent of the `prefetch-cache` crate (which
/// depends on this crate); it tracks only membership and recency, not
/// buffer contents.
#[derive(Debug)]
pub struct LruSet {
    capacity: usize,
    // index into `nodes` per resident block
    map: FxHashMap<u64, usize>,
    // doubly-linked list over a slab: (block, prev, next)
    nodes: Vec<(u64, usize, usize)>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

const NIL: usize = usize::MAX;

impl LruSet {
    /// An empty LRU set holding at most `capacity` blocks.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet {
            capacity,
            map: HashMap::with_capacity_and_hasher(capacity + 1, FxBuildHasher::default()),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `block` is resident (does not touch recency).
    pub fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(&block.0)
    }

    /// Reference `block`: returns `true` on a hit (moves it to the front),
    /// `false` on a miss (inserts it, evicting the LRU block if full).
    pub fn access(&mut self, block: BlockId) -> bool {
        if let Some(&idx) = self.map.get(&block.0) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let evicted = self.nodes[lru].0;
            self.unlink(lru);
            self.map.remove(&evicted);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = (block.0, NIL, NIL);
                i
            }
            None => {
                self.nodes.push((block.0, NIL, NIL));
                self.nodes.len() - 1
            }
        };
        self.map.insert(block.0, idx);
        self.push_front(idx);
        false
    }

    fn unlink(&mut self, idx: usize) {
        let (_, prev, next) = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].1 = NIL;
        self.nodes[idx].2 = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].1 = NIL;
        self.nodes[idx].2 = self.head;
        if self.head != NIL {
            self.nodes[self.head].1 = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Emits only the inner workload's L1-cache misses.
pub struct L1Filter<W> {
    inner: W,
    cache: LruSet,
}

impl<W: Workload> L1Filter<W> {
    /// Filter `inner` through an LRU cache of `capacity_blocks` blocks.
    pub fn new(inner: W, capacity_blocks: usize) -> Self {
        L1Filter { inner, cache: LruSet::new(capacity_blocks) }
    }
}

impl<W: Workload> Workload for L1Filter<W> {
    fn next_record(&mut self, rng: &mut SmallRng) -> TraceRecord {
        loop {
            let r = self.inner.next_record(rng);
            if !self.cache.access(r.block) {
                return r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SequentialRuns, UniformRandom};
    use crate::TraceMeta;

    #[test]
    fn lru_set_hits_and_misses() {
        let mut l = LruSet::new(2);
        assert!(!l.access(BlockId(1))); // miss, insert
        assert!(!l.access(BlockId(2))); // miss, insert
        assert!(l.access(BlockId(1))); // hit, order now [1,2]
        assert!(!l.access(BlockId(3))); // miss, evicts 2
        assert!(!l.access(BlockId(2))); // 2 was evicted
        assert!(l.access(BlockId(3))); // 3 resident
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_set_capacity_one() {
        let mut l = LruSet::new(1);
        assert!(!l.access(BlockId(5)));
        assert!(l.access(BlockId(5)));
        assert!(!l.access(BlockId(6)));
        assert!(!l.access(BlockId(5)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn lru_set_matches_reference_model() {
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        let mut lru = LruSet::new(8);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        for _ in 0..20_000 {
            let b = rng.gen_range(0..32u64);
            let expect_hit = model.contains(&b);
            let hit = lru.access(BlockId(b));
            assert_eq!(hit, expect_hit);
            model.retain(|&x| x != b);
            model.insert(0, b);
            model.truncate(8);
            assert_eq!(lru.len(), model.len());
        }
    }

    #[test]
    fn filter_emits_only_misses() {
        // A tiny looping workload over 4 blocks entirely fits an L1 of 8:
        // after the first pass everything hits, so pulling more records
        // from the filter would loop forever. Use a workload bigger than
        // the cache instead and verify no immediate re-reference slips
        // through.
        let w = UniformRandom::new(0, 1000);
        let filtered = L1Filter::new(w, 100);
        let t = generate(filtered, 5000, 3, TraceMeta::default());
        assert_eq!(t.len(), 5000);
        // No emitted block may be among the 100 most recently emitted
        // *distinct* blocks... approximately: directly repeated blocks are
        // impossible.
        let blocks: Vec<_> = t.blocks().collect();
        assert!(blocks.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn filter_preserves_long_sequential_runs() {
        // Sequential runs longer than the L1 pass through as misses in
        // order — the reason cello still benefits from next-limit.
        let w = SequentialRuns::new(0, 1_000_000, 64, 64);
        let filtered = L1Filter::new(w, 16);
        let t = generate(filtered, 10_000, 9, TraceMeta::default());
        let blocks: Vec<_> = t.blocks().collect();
        let seq = blocks.windows(2).filter(|w| w[0].is_successor(w[1])).count();
        assert!(seq as f64 / blocks.len() as f64 > 0.9);
    }
}
