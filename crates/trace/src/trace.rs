//! The [`Trace`] container: an in-memory sequence of [`TraceRecord`]s plus
//! descriptive metadata, mirroring Table 1 of the paper.

use crate::record::{BlockId, TraceRecord};
use serde::{Deserialize, Serialize};

/// Descriptive metadata attached to a trace (the columns of the paper's
/// Table 1).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Short name, e.g. `"cello"`.
    pub name: String,
    /// Human-readable description, e.g. `"Disk block traces from a
    /// timesharing system"`.
    pub description: String,
    /// Size in bytes of the first-level cache the trace was filtered
    /// through, if any (cello: 30 MB, snake: 5 MB, others: none).
    pub l1_cache_bytes: Option<u64>,
    /// Seed the synthetic generator used, for provenance.
    pub seed: Option<u64>,
}

/// An in-memory I/O trace.
///
/// Traces are append-only during generation and immutable during simulation;
/// the simulator iterates over [`Trace::records`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> Self {
        Trace { meta, records: Vec::new() }
    }

    /// An empty, anonymous trace.
    pub fn empty() -> Self {
        Trace::default()
    }

    /// An anonymous trace over the given block ids (convenient in tests).
    pub fn from_blocks<I>(blocks: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<BlockId>,
    {
        Trace {
            meta: TraceMeta::default(),
            records: blocks.into_iter().map(|b| TraceRecord::read(b.into())).collect(),
        }
    }

    /// Build from explicit records.
    pub fn from_records(meta: TraceMeta, records: Vec<TraceRecord>) -> Self {
        Trace { meta, records }
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Mutable access to the metadata (generators stamp seeds etc.).
    pub fn meta_mut(&mut self) -> &mut TraceMeta {
        &mut self.meta
    }

    /// The record sequence.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no references.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Append many records.
    pub fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, records: I) {
        self.records.extend(records);
    }

    /// Reserve capacity for `additional` more records.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Iterator over the referenced block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.records.iter().map(|r| r.block)
    }

    /// A copy truncated to the first `n` references (used to scale
    /// experiments down for tests).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            meta: self.meta.clone(),
            records: self.records[..self.records.len().min(n)].to_vec(),
        }
    }

    /// Consume the trace, returning its records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// A streaming [`crate::source::TraceSource`] view over this trace.
    pub fn source(&self) -> crate::source::TraceCursor<'_> {
        crate::source::TraceCursor::new(self)
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Trace { meta: TraceMeta::default(), records: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_blocks_builds_reads() {
        let t = Trace::from_blocks([1u64, 2, 3]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.records()[0], TraceRecord::read(1u64));
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.blocks().count(), 0);
    }

    #[test]
    fn truncated_keeps_prefix_and_meta() {
        let mut t = Trace::from_blocks(0u64..100);
        t.meta_mut().name = "x".into();
        let s = t.truncated(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.meta().name, "x");
        assert_eq!(s.records()[9].block, BlockId(9));
        // Truncating beyond the length is a no-op copy.
        assert_eq!(t.truncated(1000).len(), 100);
    }

    #[test]
    fn push_and_extend() {
        let mut t = Trace::empty();
        t.push(TraceRecord::read(1u64));
        t.extend([TraceRecord::read(2u64), TraceRecord::read(3u64)]);
        assert_eq!(t.blocks().map(|b| b.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn iterate_by_ref() {
        let t = Trace::from_blocks([5u64, 6]);
        let v: Vec<u64> = (&t).into_iter().map(|r| r.block.0).collect();
        assert_eq!(v, vec![5, 6]);
    }
}
