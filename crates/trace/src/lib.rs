//! # prefetch-trace
//!
//! I/O trace substrate for the predictive-prefetching study of
//! Vellanki & Chervenak, *A Cost-Benefit Scheme for High Performance
//! Predictive Prefetching* (SC 1999).
//!
//! The paper evaluates its prefetching schemes with trace-driven simulation
//! over four workloads (cello, snake, CAD, sitar). Those original traces are
//! not publicly distributable, so this crate provides:
//!
//! * a compact trace model ([`TraceRecord`], [`Trace`]),
//! * text and binary on-disk formats ([`io`]),
//! * **synthetic generators** that reproduce the statistical character of
//!   each of the paper's four traces ([`synth`]), plus reusable workload
//!   primitives (sequential runs, Zipf sampling, Markov patterns, repeated
//!   loops, multi-process interleaving, and first-level-cache filtering),
//! * trace statistics used to validate the generators ([`stats`]).
//!
//! All generators are deterministic given a seed, so every experiment in the
//! companion crates is exactly reproducible.
//!
//! ## Quick example
//!
//! ```
//! use prefetch_trace::synth::{CadConfig, generate_cad};
//! use prefetch_trace::stats::TraceStats;
//!
//! let trace = generate_cad(&CadConfig { refs: 10_000, ..CadConfig::default() }, 42);
//! assert_eq!(trace.len(), 10_000);
//! let stats = TraceStats::compute(&trace);
//! // CAD object references have almost no block-sequential adjacency.
//! assert!(stats.sequential_fraction < 0.1);
//! ```

pub mod io;
pub mod record;
pub mod source;
pub mod stats;
pub mod synth;
pub mod trace;

pub use io::{open_source, FileSource};
pub use record::{AccessKind, BlockId, TraceRecord};
pub use source::{L1FilterSource, TraceCursor, TraceSource};
pub use trace::{Trace, TraceMeta};
