//! Trace record types.
//!
//! The simulator follows the paper's system model: an application issues I/O
//! requests as *single block* requests, each serviceable by one disk access
//! (Section 3). A trace is therefore a sequence of block identifiers,
//! optionally annotated with the issuing process and the access kind.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a disk block (or object, for object-reference traces such
/// as CAD). Block ids are opaque: sequentiality is defined as
/// `next.0 == prev.0 + 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The block immediately following this one on disk, used by
    /// one-block-lookahead prefetching (`next-limit` in the paper).
    #[inline]
    pub fn next(self) -> BlockId {
        BlockId(self.0.wrapping_add(1))
    }

    /// Whether `other` is the block immediately following `self`.
    #[inline]
    pub fn is_successor(self, other: BlockId) -> bool {
        other.0 == self.0.wrapping_add(1)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for BlockId {
    fn from(v: u64) -> Self {
        BlockId(v)
    }
}

/// Read or write. The paper's model treats every reference as a fetch into
/// the buffer cache; we keep the distinction in the trace format so that
/// workload generators can record it and future policies can use it.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    #[default]
    Read,
    Write,
}

/// One I/O reference in a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The referenced block.
    pub block: BlockId,
    /// Issuing process (0 when unknown / single-process).
    pub pid: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl TraceRecord {
    /// A read of `block` by process 0.
    pub fn read(block: impl Into<BlockId>) -> Self {
        TraceRecord { block: block.into(), pid: 0, kind: AccessKind::Read }
    }

    /// A write of `block` by process 0.
    pub fn write(block: impl Into<BlockId>) -> Self {
        TraceRecord { block: block.into(), pid: 0, kind: AccessKind::Write }
    }

    /// Same record attributed to process `pid`.
    pub fn with_pid(mut self, pid: u32) -> Self {
        self.pid = pid;
        self
    }
}

impl From<u64> for TraceRecord {
    fn from(v: u64) -> Self {
        TraceRecord::read(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_next_is_successor() {
        let a = BlockId(41);
        assert_eq!(a.next(), BlockId(42));
        assert!(a.is_successor(BlockId(42)));
        assert!(!a.is_successor(BlockId(43)));
        assert!(!a.is_successor(BlockId(41)));
    }

    #[test]
    fn block_next_wraps_instead_of_panicking() {
        let max = BlockId(u64::MAX);
        assert_eq!(max.next(), BlockId(0));
        assert!(max.is_successor(BlockId(0)));
    }

    #[test]
    fn record_constructors() {
        let r = TraceRecord::read(7u64).with_pid(3);
        assert_eq!(r.block, BlockId(7));
        assert_eq!(r.pid, 3);
        assert_eq!(r.kind, AccessKind::Read);
        let w = TraceRecord::write(9u64);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.pid, 0);
    }

    #[test]
    fn block_display_and_debug() {
        assert_eq!(format!("{}", BlockId(5)), "5");
        assert_eq!(format!("{:?}", BlockId(5)), "b5");
    }

    #[test]
    fn record_from_u64_is_read() {
        let r: TraceRecord = 11u64.into();
        assert_eq!(r, TraceRecord::read(11u64));
    }
}
