//! Trace statistics used to validate the synthetic generators and populate
//! Table 1 of the paper.

use crate::{BlockId, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Summary statistics of a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of references.
    pub refs: usize,
    /// Number of distinct blocks referenced.
    pub unique_blocks: usize,
    /// Fraction of transitions where the next block is `prev + 1`.
    pub sequential_fraction: f64,
    /// Fraction of transitions `(a, b)` that occurred earlier in the trace
    /// — a cheap proxy for how learnable the access pattern is.
    pub bigram_repetition: f64,
    /// Fraction of references to blocks seen before (1 − compulsory rate).
    pub reuse_fraction: f64,
    /// Number of distinct processes.
    pub processes: usize,
    /// Mean references per distinct block.
    pub mean_refs_per_block: f64,
}

impl TraceStats {
    /// Compute statistics over `trace` in one pass.
    pub fn compute(trace: &Trace) -> TraceStats {
        let refs = trace.len();
        if refs == 0 {
            return TraceStats {
                refs: 0,
                unique_blocks: 0,
                sequential_fraction: 0.0,
                bigram_repetition: 0.0,
                reuse_fraction: 0.0,
                processes: 0,
                mean_refs_per_block: 0.0,
            };
        }
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut bigrams: HashSet<(u64, u64)> = HashSet::new();
        let mut pids: HashSet<u32> = HashSet::new();
        let mut sequential = 0usize;
        let mut repeated_bigrams = 0usize;
        let mut reused = 0usize;
        let mut prev: Option<BlockId> = None;
        for r in trace.records() {
            pids.insert(r.pid);
            if !seen.insert(r.block) {
                reused += 1;
            }
            if let Some(p) = prev {
                if p.is_successor(r.block) {
                    sequential += 1;
                }
                if !bigrams.insert((p.0, r.block.0)) {
                    repeated_bigrams += 1;
                }
            }
            prev = Some(r.block);
        }
        let transitions = (refs - 1).max(1);
        TraceStats {
            refs,
            unique_blocks: seen.len(),
            sequential_fraction: sequential as f64 / transitions as f64,
            bigram_repetition: repeated_bigrams as f64 / transitions as f64,
            reuse_fraction: reused as f64 / refs as f64,
            processes: pids.len(),
            mean_refs_per_block: refs as f64 / seen.len() as f64,
        }
    }
}

/// Histogram of LRU reuse distances: `histogram[d]` holds references whose
/// reuse distance (number of *distinct* blocks referenced since the previous
/// access to the same block) is `d`; `cold` counts first references.
///
/// This is the classic Mattson single-pass characterization: an LRU cache of
/// `n` blocks hits exactly the references with distance `< n`, so
/// [`ReuseDistances::hit_rate`] yields H(n) for every `n` from one pass.
///
/// The implementation here is the simple O(refs × distinct) list-based one —
/// adequate for offline trace characterization. The simulator's *online*
/// estimator lives in `prefetch-cache` and uses a Fenwick tree.
#[derive(Clone, Debug, Default)]
pub struct ReuseDistances {
    /// `histogram[d]` = number of references at stack distance `d`
    pub histogram: Vec<u64>,
    /// references to never-before-seen blocks
    pub cold: u64,
    /// total references
    pub total: u64,
}

impl ReuseDistances {
    /// Compute reuse distances for the whole trace.
    pub fn compute(trace: &Trace) -> ReuseDistances {
        let mut stack: Vec<BlockId> = Vec::new(); // front = MRU
        let mut out = ReuseDistances::default();
        for r in trace.records() {
            out.total += 1;
            match stack.iter().position(|&b| b == r.block) {
                Some(d) => {
                    if out.histogram.len() <= d {
                        out.histogram.resize(d + 1, 0);
                    }
                    out.histogram[d] += 1;
                    stack.remove(d);
                    stack.insert(0, r.block);
                }
                None => {
                    out.cold += 1;
                    stack.insert(0, r.block);
                }
            }
        }
        out
    }

    /// Hit rate H(n) of an LRU cache with `n` blocks over this trace.
    pub fn hit_rate(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(n).sum();
        hits as f64 / self.total as f64
    }

    /// Marginal hit rate H(n) − H(n−1): the fraction of references that hit
    /// exactly at stack position n−1 (the LRU slot of a size-n cache).
    pub fn marginal_hit_rate(&self, n: usize) -> f64 {
        if self.total == 0 || n == 0 {
            return 0.0;
        }
        *self.histogram.get(n - 1).unwrap_or(&0) as f64 / self.total as f64
    }
}

/// Per-process reference counts, for workload characterization reports.
pub fn refs_per_process(trace: &Trace) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    for r in trace.records() {
        *m.entry(r.pid).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_empty_trace() {
        let s = TraceStats::compute(&Trace::empty());
        assert_eq!(s.refs, 0);
        assert_eq!(s.unique_blocks, 0);
        assert_eq!(s.sequential_fraction, 0.0);
    }

    #[test]
    fn stats_on_pure_sequential() {
        let t = Trace::from_blocks(0u64..100);
        let s = TraceStats::compute(&t);
        assert_eq!(s.refs, 100);
        assert_eq!(s.unique_blocks, 100);
        assert!((s.sequential_fraction - 1.0).abs() < 1e-12);
        assert_eq!(s.reuse_fraction, 0.0);
        assert_eq!(s.bigram_repetition, 0.0);
    }

    #[test]
    fn stats_on_repeated_loop() {
        // (1,2,3) × 10: after the first lap, all bigrams repeat and all
        // references reuse.
        let blocks: Vec<u64> = (0..10).flat_map(|_| [1u64, 2, 3]).collect();
        let t = Trace::from_blocks(blocks);
        let s = TraceStats::compute(&t);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.refs, 30);
        assert!((s.reuse_fraction - 27.0 / 30.0).abs() < 1e-12);
        assert!(s.bigram_repetition > 0.85);
        // 1→2 and 2→3 are sequential (2 per lap × 10 laps); 3→1 is not.
        assert!((s.sequential_fraction - 20.0 / 29.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_distances_match_hand_computation() {
        // Accesses: a b a c b a
        // a: cold; b: cold; a: dist 1; c: cold; b: dist 2; a: dist 2
        let t = Trace::from_blocks([1u64, 2, 1, 3, 2, 1]);
        let rd = ReuseDistances::compute(&t);
        assert_eq!(rd.cold, 3);
        assert_eq!(rd.total, 6);
        assert_eq!(rd.histogram, vec![0, 1, 2]);
        // LRU(1) hits nothing; LRU(2) hits the distance-1 access;
        // LRU(3) hits all three reuses.
        assert_eq!(rd.hit_rate(1), 0.0);
        assert!((rd.hit_rate(2) - 1.0 / 6.0).abs() < 1e-12);
        assert!((rd.hit_rate(3) - 3.0 / 6.0).abs() < 1e-12);
        assert!((rd.marginal_hit_rate(3) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(rd.marginal_hit_rate(0), 0.0);
    }

    #[test]
    fn hit_rate_is_monotone_in_n() {
        let t = crate::synth::TraceKind::Cad.generate(5000, 7);
        let rd = ReuseDistances::compute(&t);
        let mut prev = 0.0;
        for n in 0..200 {
            let h = rd.hit_rate(n);
            assert!(h >= prev - 1e-12, "H({n}) decreased");
            prev = h;
        }
        assert!(rd.hit_rate(usize::MAX) <= 1.0);
    }

    #[test]
    fn refs_per_process_counts() {
        let mut t = Trace::empty();
        t.push(crate::TraceRecord::read(1u64).with_pid(1));
        t.push(crate::TraceRecord::read(2u64).with_pid(1));
        t.push(crate::TraceRecord::read(3u64).with_pid(2));
        let m = refs_per_process(&t);
        assert_eq!(m[&1], 2);
        assert_eq!(m[&2], 1);
    }
}
