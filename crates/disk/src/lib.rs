//! # prefetch-disk
//!
//! A finite disk-array substrate for the SC'99 predictive-prefetching
//! study.
//!
//! The paper's timing model assumes "an infinite number of available disks
//! and no wait time for disk accesses" (Section 6.3) — prefetch traffic is
//! free except for `T_driver`. That assumption is flagged in the paper
//! itself: Figure 8's discussion notes prefetching "contributes to an
//! increase in the amount of disk traffic" (up to 180% for snake). This
//! crate supplies what the paper leaves out: a disk array with
//!
//! * **striped block placement** ([`Striping`]): block → disk by
//!   stripe-unit round robin, the classic RAID-0 layout;
//! * **per-disk FIFO queues** ([`DiskArray`]): each access occupies its
//!   disk for a constant service time `T_disk`; a busy disk delays the
//!   request — prefetches and demand fetches compete;
//! * **utilization and queueing statistics** ([`DiskStats`]);
//! * **deterministic fault injection** ([`FaultPlan`], [`FaultInjector`]):
//!   seeded per-disk streams of transient read errors, slow-disk episodes,
//!   and bounded unavailability windows, surfaced from
//!   [`DiskArray::submit`] as typed [`DiskFault`]s.
//!
//! `prefetch-sim` uses it (optionally) to price stalls under congestion,
//! the `disks` extension experiment sweeps the number of disks to show
//! where aggressive prefetching turns counter-productive, and the
//! `resilience` experiment sweeps fault rates to show how gracefully each
//! policy degrades.

pub mod array;
pub mod fault;
pub mod stats;

pub use array::{Completion, DiskArray, DiskArrayConfig, Striping};
pub use fault::{
    ConfigError, DiskFault, DurabilityFaultPlan, DurabilityInjector, FaultDecision, FaultInjector,
    FaultPlan,
};
pub use stats::DiskStats;
