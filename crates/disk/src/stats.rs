//! Disk-array statistics: utilization and queueing delay.

use serde::{Deserialize, Serialize};

/// Counters accumulated by [`crate::DiskArray::submit`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Requests served per disk.
    pub requests: Vec<u64>,
    /// Busy time per disk (ms).
    pub busy_ms: Vec<f64>,
    /// Total time requests spent queued before service (ms).
    pub queue_ms: f64,
    /// Requests that had to queue.
    pub queued_requests: u64,
    /// Latest completion time seen (proxy for makespan).
    pub horizon_ms: f64,
    /// Reads that occupied a disk but failed (fault injection).
    pub transient_errors: u64,
    /// Reads rejected instantly by an unavailable disk (fault injection).
    pub unavailable_rejections: u64,
    /// Reads served at a slow-episode-multiplied service time.
    pub slowed_requests: u64,
}

impl DiskStats {
    pub(crate) fn new(num_disks: usize) -> Self {
        DiskStats {
            requests: vec![0; num_disks],
            busy_ms: vec![0.0; num_disks],
            queue_ms: 0.0,
            queued_requests: 0,
            horizon_ms: 0.0,
            transient_errors: 0,
            unavailable_rejections: 0,
            slowed_requests: 0,
        }
    }

    pub(crate) fn record(&mut self, disk: usize, arrival: f64, start: f64, completion: f64) {
        self.requests[disk] += 1;
        self.busy_ms[disk] += completion - start;
        let wait = start - arrival;
        if wait > 0.0 {
            self.queue_ms += wait;
            self.queued_requests += 1;
        }
        self.horizon_ms = self.horizon_ms.max(completion);
    }

    /// Total requests across all disks.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().sum()
    }

    /// Total injected faults surfaced to callers (transient errors plus
    /// unavailability rejections).
    pub fn total_faults(&self) -> u64 {
        self.transient_errors + self.unavailable_rejections
    }

    /// Mean queueing delay per request (ms).
    pub fn mean_queue_delay(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            0.0
        } else {
            self.queue_ms / total as f64
        }
    }

    /// Fraction of requests that found their disk busy.
    pub fn queue_fraction(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            0.0
        } else {
            self.queued_requests as f64 / total as f64
        }
    }

    /// Utilization of disk `d` over the horizon (0 when idle forever).
    pub fn utilization(&self, d: usize) -> f64 {
        if self.horizon_ms <= 0.0 {
            0.0
        } else {
            self.busy_ms[d] / self.horizon_ms
        }
    }

    /// Mean utilization across disks.
    pub fn mean_utilization(&self) -> f64 {
        if self.busy_ms.is_empty() {
            return 0.0;
        }
        (0..self.busy_ms.len()).map(|d| self.utilization(d)).sum::<f64>()
            / self.busy_ms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskArray, DiskArrayConfig, Striping};
    use prefetch_trace::BlockId;

    #[test]
    fn stats_track_queueing() {
        let mut a = DiskArray::new(DiskArrayConfig {
            num_disks: 1,
            service_ms: 10.0,
            striping: Striping::Hashed,
        })
        .unwrap();
        a.submit(BlockId(1), 0.0).unwrap(); // no wait
        a.submit(BlockId(2), 0.0).unwrap(); // waits 10
        a.submit(BlockId(3), 30.0).unwrap(); // no wait (disk idle at 20)
        let s = a.stats();
        assert_eq!(s.total_requests(), 3);
        assert_eq!(s.total_faults(), 0);
        assert_eq!(s.queued_requests, 1);
        assert!((s.mean_queue_delay() - 10.0 / 3.0).abs() < 1e-12);
        assert!((s.queue_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.horizon_ms, 40.0);
        // Busy 30 ms over a 40 ms horizon.
        assert!((s.utilization(0) - 0.75).abs() < 1e-12);
        assert!((s.mean_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DiskStats::new(4);
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.mean_queue_delay(), 0.0);
        assert_eq!(s.queue_fraction(), 0.0);
        assert_eq!(s.mean_utilization(), 0.0);
    }
}
